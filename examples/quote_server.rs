//! `quote_server` — run the batch-coalescing quote service over TCP, or
//! smoke-test it end to end.
//!
//! ```sh
//! # Serve the line-JSON protocol (see amopt_service::wire) until killed.
//! # The epoll reactor front end is the default; pass `threaded` to serve
//! # with the legacy thread-per-connection baseline instead:
//! cargo run --release --example quote_server -- serve 127.0.0.1:7878
//! cargo run --release --example quote_server -- serve 127.0.0.1:7878 threaded
//!
//! # CI smoke: spin up a loopback server, drive N requests through
//! # concurrent pipelined TCP connections — while CONNS total connections
//! # (default 4, CI uses ≥1000) stay open against the reactor — and verify
//! # zero errors and bitwise equality against direct BatchPricer pricing
//! # (exit 1 on any failure):
//! cargo run --release --example quote_server -- smoke 512 1200
//!
//! # Chaos soak: run the seeded fault-injection soak (amopt_service::soak)
//! # against a sabotaged loopback server and print the invariant report
//! # (exit 1 if any chaos invariant is violated).  Appending `unhandled`
//! # arms the deliberately-unhandled LostReply class, so the run is
//! # *expected* to fail — CI uses it to prove the gate detects real loss:
//! cargo run --release --example quote_server -- chaos 42
//! cargo run --release --example quote_server -- chaos 42 200 unhandled
//!
//! # Observability: scrape a running server's metrics exposition, tail its
//! # most recent request trace cards, or run the self-contained obs smoke
//! # (loopback server + scrape + invariant checks; exit 1 on violation):
//! cargo run --release --example quote_server -- metrics 127.0.0.1:7878
//! cargo run --release --example quote_server -- tail 127.0.0.1:7878 32
//! cargo run --release --example quote_server -- obs-smoke 256
//! ```

use american_option_pricing::prelude::*;
use american_option_pricing::service::wire;
use std::time::Duration;

/// Deterministic mixed smoke book: strike ladder × {BOPM, TOPM} ×
/// {call, put}, with duplicates every fourth request (the dedup path).
fn smoke_book(n: usize, steps: usize) -> Vec<PricingRequest> {
    let base = OptionParams::paper_defaults();
    (0..n)
        .map(|i| {
            let k = if i % 4 == 3 { i - 1 } else { i };
            let params = OptionParams {
                strike: 90.0 + 2.0 * (k % 40) as f64,
                expiry: 0.5 + 0.125 * ((k / 40) % 8) as f64,
                ..base
            };
            let model = if k % 2 == 0 { ModelKind::Bopm } else { ModelKind::Topm };
            let ty = if (k / 2) % 2 == 0 { OptionType::Call } else { OptionType::Put };
            PricingRequest::american(model, ty, params, steps)
        })
        .collect()
}

fn serve(addr: &str, front_end: FrontEnd) {
    let server = QuoteServer::bind(addr, ServiceConfig { front_end, ..ServiceConfig::default() })
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    println!("quote_server listening on {} ({front_end:?} front end)", server.local_addr());
    println!("protocol: one JSON request per line; try:");
    println!(
        "  {{\"id\":1,\"op\":\"price\",\"spot\":127.62,\"strike\":130,\"rate\":0.00163,\
         \"vol\":0.2,\"div\":0.0163,\"steps\":252}}"
    );
    loop {
        std::thread::sleep(Duration::from_secs(30));
        print_stats(&server);
    }
}

/// One stats line for the scheduler, one for the reactor (when serving
/// through it) — the same counters the wire `stats` op reports.
fn print_stats(server: &QuoteServer) {
    let s = server.stats();
    println!(
        "[stats] queue={} submitted={} completed={} rejected={} batches={} mean_batch={:.1} \
         memo_hit_rate={:.3} deadline_misses={} heap_pops={}",
        s.queue_depth,
        s.submitted,
        s.completed,
        s.rejected_queue_full + s.rejected_inflight,
        s.batches,
        s.mean_batch_size(),
        s.memo_hit_rate(),
        s.deadline_misses,
        s.heap_pops
    );
    let r = &s.reactor;
    if r.loop_iterations > 0 {
        println!(
            "[reactor] accepted={} open={} refused={} loop_iters={} events_per_wake={:?}",
            r.connections_accepted,
            r.connections_open,
            r.connections_refused,
            r.loop_iterations,
            r.events_per_wake.non_empty()
        );
    }
}

fn smoke(n: usize, conns: usize) {
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let book = smoke_book(n, 96);

    // Park every connection beyond the 4 pipelined drivers as idle load on
    // the reactor: the drivers below must stay unaffected, and the parked
    // sockets must still answer when probed afterwards.
    let idle: Vec<std::net::TcpStream> = (4..conns)
        .map(|i| {
            std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("idle connection {i}: {e}"))
        })
        .collect();

    // Reference: the whole book through one direct BatchPricer call.
    let want: Vec<f64> = BatchPricer::new(EngineConfig::default())
        .price_batch(&book)
        .into_iter()
        .map(|r| r.expect("smoke book is valid"))
        .collect();

    // Drive it over 4 concurrent pipelined TCP connections.
    let drivers = 4;
    let chunk = book.len().div_ceil(drivers);
    let results: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        book.chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move || {
                    // Bounded pipeline window: keeps the connection well
                    // under its in-flight cap and off TCP-buffer deadlocks
                    // however large `smoke N` is.
                    const WINDOW: usize = 64;
                    let mut client = TcpQuoteClient::connect(addr).expect("connect");
                    let mut out: Vec<(usize, f64)> = Vec::with_capacity(slice.len());
                    let mut next = 0usize;
                    let mut in_flight = 0usize;
                    while out.len() < slice.len() {
                        while next < slice.len() && in_flight < WINDOW {
                            let id = (w * chunk + next) as u64;
                            client
                                .send(&wire::encode_pricing_request(id, "price", &slice[next]))
                                .expect("send");
                            next += 1;
                            in_flight += 1;
                        }
                        let reply = client.recv().expect("response line");
                        in_flight -= 1;
                        let doc = wire::parse(&reply).expect("valid response JSON");
                        let ok = matches!(doc.get("ok"), Some(wire::JsonValue::Bool(true)));
                        assert!(ok, "error response: {reply}");
                        let id = doc.get("id").unwrap().as_f64().unwrap() as usize;
                        let price = doc.get("price").unwrap().as_f64().unwrap();
                        out.push((id, price));
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("connection thread must not panic"))
            .collect()
    });

    let mut seen = vec![false; book.len()];
    let mut mismatches = 0usize;
    for (id, price) in results.into_iter().flatten() {
        assert!(!seen[id], "response {id} delivered twice");
        seen[id] = true;
        if price.to_bits() != want[id].to_bits() {
            eprintln!("MISMATCH request {id}: wire {price} vs direct {}", want[id]);
            mismatches += 1;
        }
    }
    let unanswered = seen.iter().filter(|&&s| !s).count();

    // Parked connections must have stayed alive under the load: probe a
    // spread of them with a real quote each.
    let mut parked_failures = 0usize;
    for probe in [0usize, idle.len() / 2, idle.len().saturating_sub(1)] {
        let Some(stream) = idle.get(probe) else { continue };
        let mut stream = stream.try_clone().expect("clone parked conn");
        let line = wire::encode_pricing_request(probe as u64, "price", &book[probe % book.len()]);
        use std::io::{BufRead, Write};
        if stream.write_all(format!("{line}\n").as_bytes()).is_err() {
            parked_failures += 1;
            continue;
        }
        let mut reply = String::new();
        let ok = std::io::BufReader::new(stream).read_line(&mut reply).is_ok()
            && reply.contains("\"ok\":true");
        if !ok {
            eprintln!("PARKED conn {probe} failed: {reply}");
            parked_failures += 1;
        }
    }

    let stats = server.stats();
    println!(
        "smoke: {} requests over {} connections, {} batches (mean size {:.1}), \
         memo hit rate {:.3}, {mismatches} mismatches, {unanswered} unanswered, \
         {parked_failures} parked-connection failures",
        book.len(),
        conns.max(drivers),
        stats.batches,
        stats.mean_batch_size(),
        stats.memo_hit_rate()
    );
    print_stats(&server);
    let accepted_ok = stats.reactor.loop_iterations == 0
        || stats.reactor.connections_accepted >= conns.saturating_sub(4) as u64;
    if !accepted_ok {
        eprintln!(
            "reactor accepted only {} of {} connections",
            stats.reactor.connections_accepted, conns
        );
    }
    drop(idle);
    server.shutdown();
    if mismatches > 0 || unanswered > 0 || parked_failures > 0 || !accepted_ok {
        std::process::exit(1);
    }
    println!("smoke OK: every wire response bitwise-equal to direct BatchPricer pricing");
}

/// Sends one wire request line to a running server and returns the parsed
/// reply document (panics on transport errors or an `ok:false` reply).
fn wire_call(addr: &str, line: &str) -> wire::JsonValue {
    let mut client =
        TcpQuoteClient::connect(addr).unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"));
    client.send(line).expect("send request line");
    let reply = client.recv().expect("read reply line");
    let doc = wire::parse(&reply).unwrap_or_else(|e| panic!("bad reply JSON ({e}): {reply}"));
    assert!(
        matches!(doc.get("ok"), Some(wire::JsonValue::Bool(true))),
        "server returned an error: {reply}"
    );
    doc
}

/// `metrics <addr>` — scrape a running server's Prometheus-text exposition.
fn metrics_cmd(addr: &str) {
    let doc = wire_call(addr, "{\"id\":0,\"op\":\"metrics\"}");
    print!("{}", doc.get("text").and_then(|t| t.as_str()).expect("metrics reply carries text"));
}

/// `tail <addr> [n]` — print the most recent trace cards, one line each.
fn tail_cmd(addr: &str, n: usize) {
    let doc = wire_call(addr, &format!("{{\"id\":0,\"op\":\"trace\",\"n\":{n}}}"));
    let Some(wire::JsonValue::Arr(cards)) = doc.get("traces") else {
        panic!("trace reply carries no traces array");
    };
    if cards.is_empty() {
        println!("no completed traces yet (is tracing enabled and has traffic flowed?)");
        return;
    }
    println!("{:>8}  {:<11} {:>10}  flags  stage breakdown (µs)", "id", "kind", "e2e µs");
    for card in cards {
        let id = card.get("id").and_then(|v| v.as_f64()).unwrap_or(-1.0);
        let kind = card.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        let e2e = card.get("end_to_end_nanos").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let flag = |k: &str, c: char| {
            if matches!(card.get(k), Some(wire::JsonValue::Bool(true))) {
                c
            } else {
                '-'
            }
        };
        let flags: String = [flag("memo_hit", 'm'), flag("deadline_miss", 'd'), flag("error", 'e')]
            .into_iter()
            .collect();
        let mut stages = String::new();
        if let Some(wire::JsonValue::Obj(fields)) = card.get("stages") {
            for (name, nanos) in fields {
                let us = nanos.as_f64().unwrap_or(0.0) / 1_000.0;
                if !stages.is_empty() {
                    stages.push(' ');
                }
                stages.push_str(&format!("{name}={us:.1}"));
            }
        }
        println!("{:>8}  {:<11} {:>10.1}  {flags}    {stages}", id as i64, kind, e2e / 1_000.0);
    }
}

/// `obs-smoke [n]` — spin up a loopback server, drive `n` quotes, then
/// scrape the `metrics` and `trace` ops over the wire and verify the
/// acceptance invariants: ≥ 25 named instruments, the fault/retry/brownout
/// families present, and every trace card's stage breakdown summing to its
/// end-to-end latency.  Exits 1 on any violation.
fn obs_smoke(n: usize) {
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let book = smoke_book(n, 64);
    let mut client = TcpQuoteClient::connect(&addr).expect("connect driver");
    for (i, req) in book.iter().enumerate() {
        client.send(&wire::encode_pricing_request(i as u64, "price", req)).expect("send");
    }
    for _ in 0..book.len() {
        let reply = client.recv().expect("reply");
        assert!(reply.contains("\"ok\":true"), "quote failed: {reply}");
    }

    let mut failures = 0usize;

    // Exposition: ≥ 25 named instruments and the acceptance families.
    let doc = wire_call(&addr, "{\"id\":0,\"op\":\"metrics\"}");
    let text = doc.get("text").and_then(|t| t.as_str()).expect("metrics text").to_string();
    let instruments = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    println!("obs-smoke: scraped {instruments} instruments from {addr}");
    if instruments < 25 {
        eprintln!("FAIL: only {instruments} instruments exposed (acceptance floor is 25)");
        failures += 1;
    }
    for needle in [
        "amopt_queue_submitted_total",
        "amopt_queue_batch_size_bucket",
        "amopt_stage_queue_wait_nanos_count",
        "amopt_fault_worker_panic_fired_total",
        "amopt_retries_total",
        "amopt_shed_price_total",
        "amopt_memo_hits",
        "amopt_reactor_loop_iterations_total",
        "amopt_kernel_fft_pass_calls_total",
    ] {
        if !text.contains(needle) {
            eprintln!("FAIL: exposition is missing {needle}");
            failures += 1;
        }
    }

    // Trace cards: present, and each stage breakdown sums to end-to-end.
    let doc = wire_call(&addr, "{\"id\":0,\"op\":\"trace\",\"n\":32}");
    let Some(wire::JsonValue::Arr(cards)) = doc.get("traces") else {
        panic!("trace reply carries no traces array");
    };
    if cards.is_empty() {
        eprintln!("FAIL: no trace cards after {} quotes", book.len());
        failures += 1;
    }
    for card in cards {
        let e2e = card.get("end_to_end_nanos").and_then(|v| v.as_f64()).unwrap_or(-1.0);
        let mut sum = 0.0;
        if let Some(wire::JsonValue::Obj(fields)) = card.get("stages") {
            sum = fields.iter().filter_map(|(_, v)| v.as_f64()).sum();
        }
        // The stamps are monotonic deltas of one clock, so the sum must
        // reproduce the end-to-end figure exactly; allow 1µs of slack for
        // future rounding in the exposition layer.
        if e2e < 0.0 || (sum - e2e).abs() > 1_000.0 {
            eprintln!("FAIL: stage sum {sum} ns vs end-to-end {e2e} ns: {card:?}");
            failures += 1;
        }
    }

    server.shutdown();
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "obs-smoke OK: {} instruments, {} trace cards, every stage breakdown sums to its \
         end-to-end latency",
        instruments,
        cards.len()
    );
}

/// Runs the seeded chaos soak and exits non-zero if any invariant broke.
fn chaos(seed: u64, requests: Option<usize>, unhandled: bool) {
    use american_option_pricing::service::{soak, ChaosConfig};
    let mut cfg = ChaosConfig::new(seed);
    if let Some(n) = requests {
        cfg = cfg.with_requests(n);
    }
    if unhandled {
        cfg = cfg.unhandled();
    }
    let report = soak(&cfg).unwrap_or_else(|e| panic!("chaos soak could not run: {e}"));
    println!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7878");
            let front_end = if args.iter().any(|a| a == "threaded") {
                FrontEnd::Threaded
            } else {
                FrontEnd::Reactor
            };
            serve(addr, front_end);
        }
        Some("smoke") => {
            let n = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(512);
            let conns = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
            smoke(n, conns);
        }
        Some("chaos") => {
            let seed = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(42);
            let requests = args.get(2).and_then(|v| v.parse().ok());
            let unhandled = args.iter().any(|a| a == "unhandled");
            chaos(seed, requests, unhandled);
        }
        Some("metrics") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7878");
            metrics_cmd(addr);
        }
        Some("tail") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7878");
            let n = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(16);
            tail_cmd(addr, n);
        }
        Some("obs-smoke") => {
            let n = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(128);
            obs_smoke(n);
        }
        _ => {
            eprintln!(
                "usage: quote_server serve [addr] [threaded] | quote_server smoke [n] [conns] \
                 | quote_server chaos [seed] [requests] [unhandled] \
                 | quote_server metrics [addr] | quote_server tail [addr] [n] \
                 | quote_server obs-smoke [n]"
            );
            std::process::exit(2);
        }
    }
}
