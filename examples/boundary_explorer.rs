//! Early-exercise boundary explorer: extract and print the critical-price
//! frontier of a small contract set — BSM put, binomial call/put, and
//! trinomial call/put — in one batch-native call (the red–green divider of
//! the paper, §2.2/§4.2).  Every frontier comes from a fast-engine pricing
//! pass, including the trinomial ones (previously dense-only, `Θ(T²)`).
//!
//! ```sh
//! cargo run --release --example boundary_explorer
//! ```

use american_option_pricing::prelude::*;

fn main() {
    let pricer = BatchPricer::new(EngineConfig::default());
    let base = OptionParams::paper_defaults();
    let zero_div = OptionParams { dividend_yield: 0.0, ..base };

    // One batch extracts every frontier in parallel; each slot keeps its
    // own Result.
    let book = vec![
        BoundaryRequest::new(ModelKind::Bsm, OptionType::Put, zero_div, 8192, 16),
        BoundaryRequest::new(ModelKind::Bopm, OptionType::Call, base, 8192, 16),
        BoundaryRequest::new(ModelKind::Bopm, OptionType::Put, base, 8192, 16),
        BoundaryRequest::new(ModelKind::Topm, OptionType::Call, base, 8192, 16),
        BoundaryRequest::new(ModelKind::Topm, OptionType::Put, base, 8192, 16),
    ];
    let frontiers = exercise_boundaries(&pricer, &book);

    let titles = [
        "American put, BSM grid (exercise when the asset falls below)",
        "American call, binomial lattice (exercise when the asset rises above)",
        "American put, binomial lattice (left-cone engine)",
        "American call, trinomial lattice",
        "American put, trinomial lattice (left-cone engine)",
    ];
    for (title, frontier) in titles.iter().zip(frontiers) {
        let frontier = frontier.expect("valid contract");
        println!("{title} — K = {}:", base.strike);
        println!("  t [yr]   critical price");
        for p in frontier.iter().rev() {
            if let Some(x) = p.critical_price {
                println!("  {:6.3}   {:10.4}", p.time_years, x);
            }
        }
        println!();
    }
}
