//! Early-exercise boundary explorer: extract and print the critical-price
//! frontier for an American put (BSM finite differences) and an American
//! call (binomial lattice) — the red–green divider of the paper, §2.2/§4.2.
//!
//! ```sh
//! cargo run --release --example boundary_explorer
//! ```

use american_option_pricing::prelude::*;

fn main() {
    let cfg = EngineConfig::default();

    // American put: exercise when the asset falls below the frontier.
    let put_params = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
    let bsm = BsmModel::new(put_params, 8192).expect("stable grid");
    let frontier = exercise_boundary::bsm_put_boundary(&bsm, &cfg, 16);
    println!("American put early-exercise frontier (K = {}):", put_params.strike);
    println!("  t [yr]   critical price");
    for p in frontier.iter().rev() {
        if let Some(x) = p.critical_price {
            println!("  {:6.3}   {:10.4}", p.time_years, x);
        }
    }

    // American call: with dividends, exercise when the asset rises above it.
    let call_params = OptionParams::paper_defaults();
    let bopm = BopmModel::new(call_params, 8192).expect("valid lattice");
    let frontier = exercise_boundary::bopm_call_boundary(&bopm, &cfg, 16);
    println!("\nAmerican call early-exercise frontier (K = {}):", call_params.strike);
    println!("  t [yr]   critical price");
    for p in frontier.iter().rev() {
        if let Some(x) = p.critical_price {
            println!("  {:6.3}   {:10.4}", p.time_years, x);
        }
    }
}
