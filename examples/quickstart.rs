//! Quickstart: price one American call three ways and confirm they agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use american_option_pricing::prelude::*;
use std::time::Instant;

fn main() {
    // The paper's §5 parameter set: S=127.62, K=130, R=0.163%, V=20%,
    // Y=1.63%, one year to expiry.
    let params = OptionParams::paper_defaults();
    let steps = 16_384;
    let model = BopmModel::new(params, steps).expect("valid lattice");
    let cfg = EngineConfig::default();

    let t0 = Instant::now();
    let fast = bopm_fast::price_american_call(&model, &cfg);
    let t_fast = t0.elapsed();

    let t0 = Instant::now();
    let naive = bopm_naive::price(
        &model,
        OptionType::Call,
        ExerciseStyle::American,
        bopm_naive::ExecMode::Parallel,
    );
    let t_naive = t0.elapsed();

    let european = analytic::black_scholes_price(&params, OptionType::Call).unwrap();

    println!("American call, T = {steps} lattice steps");
    println!("  fft trapezoid  : {fast:.6}   ({t_fast:.2?})");
    println!("  naive loop     : {naive:.6}   ({t_naive:.2?})");
    println!("  European (BS)  : {european:.6}   (closed form, lower bound)");
    println!(
        "  agreement      : {:.2e} relative   speedup: {:.0}x",
        (fast - naive).abs() / naive,
        t_naive.as_secs_f64() / t_fast.as_secs_f64()
    );
    assert!((fast - naive).abs() < 1e-8 * naive);
}
