//! `quote_load` — load generator for a running `quote_server`.
//!
//! Opens `conns` TCP connections, keeps a `window`-deep pipeline of price
//! requests on each (a deterministic dedup-heavy book), and reports
//! throughput, latency percentiles, and error counts.  Overloaded
//! responses are counted separately — under deliberate over-capacity they
//! are the service working as designed, not a failure.
//!
//! ```sh
//! cargo run --release --example quote_server -- serve 127.0.0.1:7878 &
//! cargo run --release --example quote_load -- 127.0.0.1:7878 2048 4 16
//! #                                            addr          n    conns window
//! ```
//!
//! Exits non-zero on protocol-level failures (parse errors, disconnects,
//! pricing errors on the valid book) — overload shedding alone never fails
//! the run.

use american_option_pricing::prelude::*;
use american_option_pricing::service::wire;
use std::collections::VecDeque;
use std::time::Instant;

fn book(n: usize, steps: usize) -> Vec<PricingRequest> {
    let base = OptionParams::paper_defaults();
    (0..n)
        .map(|i| {
            let params = OptionParams { strike: 90.0 + (i % 64) as f64, ..base };
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, steps)
        })
        .collect()
}

struct ConnReport {
    latencies_us: Vec<f64>,
    priced: usize,
    overloaded: usize,
    failures: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().cloned() else {
        eprintln!("usage: quote_load <addr> [n] [conns] [window]");
        std::process::exit(2);
    };
    let n: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(2048);
    let conns: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4).max(1);
    let window: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(16).max(1);
    let requests = book(n, 252);

    let chunk = requests.len().div_ceil(conns);
    let t0 = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        requests
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client =
                        TcpQuoteClient::connect(&*addr).expect("connect to quote_server");
                    let mut report = ConnReport {
                        latencies_us: Vec::with_capacity(slice.len()),
                        priced: 0,
                        overloaded: 0,
                        failures: 0,
                    };
                    let mut sent_at: VecDeque<Instant> = VecDeque::new();
                    let mut next = 0usize;
                    let mut done = 0usize;
                    while done < slice.len() {
                        while next < slice.len() && sent_at.len() < window {
                            let id = (w * chunk + next) as u64;
                            let line = wire::encode_pricing_request(id, "price", &slice[next]);
                            client.send(&line).expect("send");
                            sent_at.push_back(Instant::now());
                            next += 1;
                        }
                        let Ok(reply) = client.recv() else {
                            report.failures += slice.len() - done;
                            break;
                        };
                        let us = sent_at.pop_front().unwrap().elapsed().as_secs_f64() * 1e6;
                        done += 1;
                        match wire::parse(&reply) {
                            Ok(doc) => match doc.get("ok") {
                                Some(wire::JsonValue::Bool(true)) => {
                                    report.priced += 1;
                                    report.latencies_us.push(us);
                                }
                                _ if doc.get("kind").and_then(wire::JsonValue::as_str)
                                    == Some("overloaded") =>
                                {
                                    report.overloaded += 1;
                                }
                                _ => {
                                    eprintln!("failure response: {reply}");
                                    report.failures += 1;
                                }
                            },
                            Err(e) => {
                                eprintln!("unparseable response ({e}): {reply}");
                                report.failures += 1;
                            }
                        }
                    }
                    report
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load thread must not panic"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = reports.iter().flat_map(|r| r.latencies_us.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let priced: usize = reports.iter().map(|r| r.priced).sum();
    let overloaded: usize = reports.iter().map(|r| r.overloaded).sum();
    let failures: usize = reports.iter().map(|r| r.failures).sum();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            f64::NAN
        } else {
            latencies[((latencies.len() - 1) as f64 * q) as usize]
        }
    };
    println!("quote_load: {n} requests over {conns} connections (window {window})");
    println!("  priced: {priced}  overloaded: {overloaded}  failures: {failures}");
    println!("  wall: {secs:.3}s  throughput: {:.0} options/s", priced as f64 / secs);
    println!(
        "  latency us: p50 {:.0}  p90 {:.0}  p99 {:.0}  max {:.0}",
        pct(0.5),
        pct(0.9),
        pct(0.99),
        pct(1.0)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
