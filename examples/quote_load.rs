//! `quote_load` — load generator for a running `quote_server`.
//!
//! Opens `conns` TCP connections, keeps a `window`-deep pipeline of price
//! requests on each (a deterministic dedup-heavy book), and reports
//! throughput, latency percentiles, and error counts.  Overloaded
//! responses are counted separately — under deliberate over-capacity they
//! are the service working as designed, not a failure.
//!
//! ```sh
//! cargo run --release --example quote_server -- serve 127.0.0.1:7878 &
//! cargo run --release --example quote_load -- 127.0.0.1:7878 2048 4 16
//! #                                            addr          n    conns window
//!
//! # Reactor-scale run: window 0 is open-loop (each connection writes its
//! # whole share, then reads every reply), idle parks 1000 extra silent
//! # connections on the server, and every 4th *connection* becomes a
//! # sparse deadline class with a 1 ms budget per request — the EDF
//! # scheduler should give that class a visibly better p50/p99 than the
//! # bulk connections:
//! cargo run --release --example quote_load -- 127.0.0.1:7878 2048 64 0 1000 4 1
//! #                                            addr          n  conns w idle every ms
//! ```
//!
//! Deadlines are per *connection*, not per request: replies on one
//! connection resolve in request order (wire compatibility), so an urgent
//! request sharing a connection with bulk traffic would wait behind the
//! bulk replies regardless of how the EDF queue ordered the work.
//! Latency-sensitive traffic gets its own connections here, as it should
//! in production.  Deadline connections also carry 1/16th of a bulk
//! connection's volume: the fair-share drain gives every queued client an
//! equal per-batch allocation, so a class only jumps the backlog while
//! its volume sits below that allocation — a flooding "urgent" client
//! degrades to fair sharing by design.  For the budget to mean anything
//! it must also be tighter than the server's `max_wait` (default 2 ms),
//! which is the implicit deadline of every untagged request.
//!
//! Open-loop mode leans on the reactor front end's non-blocking write
//! buffering; against the thread-per-connection baseline keep a bounded
//! window instead.  Exits non-zero on protocol-level failures (parse
//! errors, disconnects, pricing errors on the valid book) — overload
//! shedding alone never fails the run.
//!
//! ```sh
//! # Chaos mode: skip the external server, bind an embedded loopback
//! # server sabotaged by the seeded hostile fault plan, and report
//! # per-class availability (answered / shed / retried / lost) alongside
//! # the latency percentiles.  Connections run sequentially (window 1) so
//! # a torn reply is attributable to exactly one request and is never
//! # resubmitted; exits non-zero only on total outage (nothing answered):
//! cargo run --release --example quote_load -- --chaos 42 512 8
//! #                                                    seed n  conns
//! ```

use american_option_pricing::prelude::*;
use american_option_pricing::service::{wire, FaultPlan};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn book(n: usize, steps: usize) -> Vec<PricingRequest> {
    let base = OptionParams::paper_defaults();
    (0..n)
        .map(|i| {
            let params = OptionParams { strike: 90.0 + (i % 64) as f64, ..base };
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, steps)
        })
        .collect()
}

#[derive(Default)]
struct ConnReport {
    /// `(latency_us, had_deadline_budget)` per priced reply.
    latencies_us: Vec<(f64, bool)>,
    priced: usize,
    overloaded: usize,
    failures: usize,
}

struct LoadConfig {
    n: usize,
    conns: usize,
    /// Pipeline depth; 0 = open-loop (write everything, then read).
    window: usize,
    /// Extra connections parked idle for the whole run.
    idle: usize,
    /// Every `deadline_every`-th connection sends all its requests with a
    /// deadline budget (0 = never).
    deadline_every: usize,
    deadline_ms: f64,
}

fn drive_conn(
    addr: &str,
    cfg: &LoadConfig,
    base_id: usize,
    slice: &[PricingRequest],
    tagged: bool,
) -> ConnReport {
    let mut client = TcpQuoteClient::connect(addr).expect("connect to quote_server");
    let mut report = ConnReport::default();
    // Replies on one connection may be reordered across batches, so
    // latency attribution keys on the wire id, not FIFO order.
    let mut sent_at: HashMap<u64, (Instant, bool)> = HashMap::new();
    let window = if cfg.window == 0 { usize::MAX } else { cfg.window };
    let mut next = 0usize;
    let mut done = 0usize;
    while done < slice.len() {
        while next < slice.len() && sent_at.len() < window {
            let id = (base_id + next) as u64;
            let line = if tagged {
                wire::encode_pricing_request_with_deadline(
                    id,
                    "price",
                    &slice[next],
                    cfg.deadline_ms,
                )
            } else {
                wire::encode_pricing_request(id, "price", &slice[next])
            };
            client.send(&line).expect("send");
            sent_at.insert(id, (Instant::now(), tagged));
            next += 1;
        }
        let Ok(reply) = client.recv() else {
            report.failures += slice.len() - done;
            break;
        };
        done += 1;
        match wire::parse(&reply) {
            Ok(doc) => {
                let id = doc.get("id").and_then(wire::JsonValue::as_f64).unwrap_or(-1.0) as u64;
                let sent = sent_at.remove(&id);
                match doc.get("ok") {
                    Some(wire::JsonValue::Bool(true)) => {
                        report.priced += 1;
                        if let Some((t, tagged)) = sent {
                            report.latencies_us.push((t.elapsed().as_secs_f64() * 1e6, tagged));
                        }
                    }
                    _ if doc.get("kind").and_then(wire::JsonValue::as_str)
                        == Some("overloaded") =>
                    {
                        report.overloaded += 1;
                    }
                    _ => {
                        eprintln!("failure response: {reply}");
                        report.failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("unparseable response ({e}): {reply}");
                report.failures += 1;
            }
        }
    }
    report
}

/// Availability tallies for one chaos-mode connection.
#[derive(Default)]
struct ChaosConnReport {
    /// `(latency_us, had_deadline_budget)` per answered request, measured
    /// from the *first* send — retries are inside the number, as a caller
    /// would experience them.
    latencies_us: Vec<(f64, bool)>,
    answered: usize,
    errors: usize,
    shed: usize,
    retried: usize,
    lost: usize,
}

impl ChaosConnReport {
    fn add(&mut self, other: &ChaosConnReport) {
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.answered += other.answered;
        self.errors += other.errors;
        self.shed += other.shed;
        self.retried += other.retried;
        self.lost += other.lost;
    }
}

/// Sequential (one in flight) driver for chaos mode: overloaded replies
/// and zero-reply-byte transport failures are retried on a fresh
/// connection; a torn reply is counted lost and never resubmitted.
fn drive_conn_chaos(
    addr: &str,
    cfg: &LoadConfig,
    base_id: usize,
    slice: &[PricingRequest],
    tagged: bool,
) -> ChaosConnReport {
    const MAX_ATTEMPTS: u32 = 8;
    let mut report = ChaosConnReport::default();
    let mut client: Option<TcpQuoteClient> = None;
    for (i, req) in slice.iter().enumerate() {
        let id = (base_id + i) as u64;
        let line = if tagged {
            wire::encode_pricing_request_with_deadline(id, "price", req, cfg.deadline_ms)
        } else {
            wire::encode_pricing_request(id, "price", req)
        };
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > MAX_ATTEMPTS {
                report.lost += 1;
                break;
            }
            let conn = match client.as_mut() {
                Some(conn) => conn,
                None => match TcpQuoteClient::connect(addr) {
                    Ok(fresh) => {
                        fresh.set_read_timeout(Some(Duration::from_secs(2))).ok();
                        client.insert(fresh)
                    }
                    Err(_) => {
                        report.retried += 1;
                        std::thread::sleep(Duration::from_millis(u64::from(attempt)));
                        continue;
                    }
                },
            };
            if conn.send(&line).is_err() {
                client = None; // nothing of this request was answered: retry-safe
                report.retried += 1;
                continue;
            }
            match conn.recv() {
                Ok(reply) => {
                    let doc = wire::parse(&reply).ok();
                    let ok = doc
                        .as_ref()
                        .is_some_and(|d| matches!(d.get("ok"), Some(wire::JsonValue::Bool(true))));
                    let overloaded =
                        doc.as_ref().and_then(|d| d.get("kind")).and_then(wire::JsonValue::as_str)
                            == Some("overloaded");
                    if ok {
                        report.answered += 1;
                        report.latencies_us.push((t0.elapsed().as_secs_f64() * 1e6, tagged));
                        break;
                    } else if overloaded {
                        report.shed += 1;
                        if attempt < MAX_ATTEMPTS {
                            report.retried += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(attempt)));
                            continue;
                        }
                        report.lost += 1;
                        break;
                    }
                    report.errors += 1; // parse/pricing/internal: final answer
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Torn reply: the server may have processed the request,
                    // so resubmitting could double-price it.  Count it lost.
                    report.lost += 1;
                    client = None;
                    break;
                }
                Err(_) => {
                    // Zero reply bytes: retry-safe.  Reconnect so a late
                    // reply on the abandoned socket can never be misread.
                    client = None;
                    report.retried += 1;
                    continue;
                }
            }
        }
    }
    report
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        f64::NAN
    } else {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }
}

fn print_class(label: &str, mut us: Vec<f64>) {
    us.sort_by(f64::total_cmp);
    println!(
        "  {label} latency us: n {}  p50 {:.0}  p90 {:.0}  p99 {:.0}  max {:.0}",
        us.len(),
        percentile(&us, 0.5),
        percentile(&us, 0.9),
        percentile(&us, 0.99),
        percentile(&us, 1.0)
    );
}

/// Scrapes the server's `metrics` exposition and prints the per-stage
/// latency table the trace subsystem aggregates — where traced requests
/// actually spent their time, as the *server* measured it (complementing
/// the client-side round-trip percentiles above).  Quantiles come from the
/// log2 histogram buckets, so they are upper-bound estimates.  Quietly does
/// nothing if the server has already gone away.
fn print_stage_breakdown(addr: &str) {
    const STAGES: [&str; 7] =
        ["parse", "admit", "queue_wait", "batch_form", "memo_probe", "execute", "reply_write"];
    let Ok(mut client) = TcpQuoteClient::connect(addr) else { return };
    if client.send("{\"id\":0,\"op\":\"metrics\"}").is_err() {
        return;
    }
    let Ok(reply) = client.recv() else { return };
    let Some(text) = wire::parse(&reply)
        .ok()
        .and_then(|d| d.get("text").and_then(wire::JsonValue::as_str).map(str::to_string))
    else {
        return;
    };
    println!("  per-stage breakdown (server-side, from traced requests):");
    println!(
        "    {:<12} {:>9} {:>10} {:>10} {:>10}",
        "stage", "count", "mean us", "~p50 us", "~p99 us"
    );
    for stage in STAGES {
        let base = format!("amopt_stage_{stage}_nanos");
        let scalar = |suffix: &str| -> f64 {
            let prefix = format!("{base}{suffix} ");
            text.lines()
                .find(|l| l.starts_with(&prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0)
        };
        let count = scalar("_count");
        let sum = scalar("_sum");
        let bucket_prefix = format!("{base}_bucket{{le=\"");
        let buckets: Vec<(f64, f64)> = text
            .lines()
            .filter(|l| l.starts_with(&bucket_prefix))
            .filter_map(|l| {
                let le = l.split("le=\"").nth(1)?.split('"').next()?;
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
                Some((le, l.rsplit(' ').next()?.parse().ok()?))
            })
            .collect();
        let quantile = |q: f64| -> f64 {
            let target = (q * count).ceil().max(1.0);
            buckets.iter().find(|&&(_, cum)| cum >= target).map(|&(le, _)| le).unwrap_or(f64::NAN)
        };
        if count == 0.0 {
            println!("    {:<12} {:>9} {:>10} {:>10} {:>10}", stage, 0, "-", "-", "-");
        } else {
            println!(
                "    {:<12} {:>9} {:>10.1} {:>10.1} {:>10.1}",
                stage,
                count,
                sum / count / 1e3,
                quantile(0.5) / 1e3,
                quantile(0.99) / 1e3
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--chaos <seed>` replaces the external server with an embedded
    // loopback one sabotaged by the seeded hostile fault plan.
    let chaos_seed: Option<u64> = args.iter().position(|a| a == "--chaos").map(|at| {
        let seed = args.get(at + 1).and_then(|v| v.parse().ok()).unwrap_or(42);
        args.drain(at..(at + 2).min(args.len()));
        seed
    });
    let chaos_plan = chaos_seed.map(FaultPlan::hostile);
    let embedded = chaos_plan.clone().map(|plan| {
        let server = QuoteServer::bind(
            "127.0.0.1:0",
            ServiceConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(1),
                fault: Some(plan),
                ..ServiceConfig::default()
            },
        )
        .expect("bind embedded chaos server");
        // Keep the positional layout below unchanged: the embedded
        // server's address becomes the addr argument.
        args.insert(0, server.local_addr().to_string());
        server
    });
    let Some(addr) = args.first().cloned() else {
        eprintln!(
            "usage: quote_load <addr> [n] [conns] [window] [idle] [deadline_every] [deadline_ms]\n\
                    quote_load --chaos <seed> [n] [conns] [window] [idle] [deadline_every] [deadline_ms]"
        );
        std::process::exit(2);
    };
    let arg = |i: usize, default: f64| args.get(i).and_then(|v| v.parse().ok()).unwrap_or(default);
    let cfg = LoadConfig {
        n: arg(1, 2048.0) as usize,
        conns: (arg(2, 4.0) as usize).max(1),
        window: arg(3, 16.0) as usize,
        idle: arg(4, 0.0) as usize,
        deadline_every: arg(5, 0.0) as usize,
        deadline_ms: arg(6, 1.0),
    };
    let requests = book(cfg.n, 252);

    // Park the idle herd first: it must not disturb the measured drivers.
    let parked: Vec<std::net::TcpStream> = (0..cfg.idle)
        .map(|i| {
            std::net::TcpStream::connect(&*addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}"))
        })
        .collect();

    // Weighted partition: a deadline connection carries 1/16th of a bulk
    // connection's volume, keeping the urgent class below its fair-share
    // allocation (see the module docs for why that is the point).
    let tagged_of = |w: usize| cfg.deadline_every > 0 && w.is_multiple_of(cfg.deadline_every);
    let weights: Vec<usize> = (0..cfg.conns).map(|w| if tagged_of(w) { 1 } else { 16 }).collect();
    let total_weight: usize = weights.iter().sum();
    let mut slices: Vec<(usize, &[PricingRequest])> = Vec::new();
    let mut at = 0usize;
    for (w, &wt) in weights.iter().enumerate() {
        let take = if w + 1 == cfg.conns {
            requests.len() - at
        } else {
            (requests.len() * wt / total_weight).min(requests.len() - at)
        };
        slices.push((at, &requests[at..at + take]));
        at += take;
    }

    if let Some(seed) = chaos_seed {
        let t0 = Instant::now();
        let reports: Vec<ChaosConnReport> = std::thread::scope(|scope| {
            slices
                .iter()
                .enumerate()
                .map(|(w, &(base_id, slice))| {
                    let (addr, cfg) = (&addr, &cfg);
                    scope.spawn(move || drive_conn_chaos(addr, cfg, base_id, slice, tagged_of(w)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("chaos load thread must not panic"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        drop(parked);
        let mut total = ChaosConnReport::default();
        for report in &reports {
            total.add(report);
        }
        println!(
            "quote_load --chaos {seed}: {} requests over {} sequential connections \
             (embedded faulty loopback server)",
            cfg.n, cfg.conns
        );
        let pct = |part: usize| 100.0 * part as f64 / cfg.n.max(1) as f64;
        println!(
            "  availability: answered {} ({:.1}%)  errors {} ({:.1}%)  lost {} ({:.1}%)",
            total.answered,
            pct(total.answered),
            total.errors,
            pct(total.errors),
            total.lost,
            pct(total.lost),
        );
        println!("  healing: {} shed replies, {} retries performed", total.shed, total.retried);
        if let Some(plan) = &chaos_plan {
            let faults = plan.stats();
            print!("  faults fired: {} total", faults.total());
            for (name, count) in faults.non_zero() {
                print!("  {name}:{count}");
            }
            println!();
        }
        println!("  wall: {secs:.3}s  throughput: {:.0} answered/s", total.answered as f64 / secs);
        print_class("all     ", total.latencies_us.iter().map(|&(us, _)| us).collect());
        if cfg.deadline_every > 0 {
            print_class(
                "deadline",
                total.latencies_us.iter().filter(|&&(_, t)| t).map(|&(us, _)| us).collect(),
            );
            print_class(
                "bulk    ",
                total.latencies_us.iter().filter(|&&(_, t)| !t).map(|&(us, _)| us).collect(),
            );
        }
        print_stage_breakdown(&addr);
        if let Some(server) = embedded {
            server.shutdown();
        }
        if total.answered == 0 {
            std::process::exit(1); // total outage: nothing survived the faults
        }
        return;
    }

    let t0 = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        slices
            .iter()
            .enumerate()
            .map(|(w, &(base_id, slice))| {
                let (addr, cfg) = (&addr, &cfg);
                scope.spawn(move || drive_conn(addr, cfg, base_id, slice, tagged_of(w)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load thread must not panic"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    drop(parked);

    let all: Vec<(f64, bool)> = reports.iter().flat_map(|r| r.latencies_us.clone()).collect();
    let priced: usize = reports.iter().map(|r| r.priced).sum();
    let overloaded: usize = reports.iter().map(|r| r.overloaded).sum();
    let failures: usize = reports.iter().map(|r| r.failures).sum();
    println!(
        "quote_load: {} requests over {} connections (window {}, {} idle, \
         deadline on every {} conns at {} ms)",
        cfg.n,
        cfg.conns,
        if cfg.window == 0 { "open-loop".to_string() } else { cfg.window.to_string() },
        cfg.idle,
        cfg.deadline_every,
        cfg.deadline_ms
    );
    println!("  priced: {priced}  overloaded: {overloaded}  failures: {failures}");
    println!("  wall: {secs:.3}s  throughput: {:.0} options/s", priced as f64 / secs);
    print_class("all     ", all.iter().map(|&(us, _)| us).collect());
    if cfg.deadline_every > 0 {
        print_class("deadline", all.iter().filter(|&&(_, t)| t).map(|&(us, _)| us).collect());
        print_class("bulk    ", all.iter().filter(|&&(_, t)| !t).map(|&(us, _)| us).collect());
    }
    print_stage_breakdown(&addr);
    if failures > 0 {
        std::process::exit(1);
    }
}
