//! Bermudan exercise-rights ladder: how the put value interpolates between
//! European (one exercise date) and American (every date) as rights are
//! added — priced with the O(D·T log T) FFT Bermudan pricer (§6 future-work
//! item of the paper, implemented here).
//!
//! ```sh
//! cargo run --release --example bermudan_ladder
//! ```

use american_option_pricing::core::bermudan;
use american_option_pricing::prelude::*;
use american_option_pricing::stencil::Backend;

fn main() {
    // A visible early-exercise premium needs a real interest rate (the
    // paper's 0.163% makes American ~ European for puts).
    let params = OptionParams { rate: 0.06, ..OptionParams::paper_defaults() };
    let steps = 8192usize;
    let model = BopmModel::new(params, steps).unwrap();

    let european = bermudan::price_bermudan_put_fft(&model, &[steps], Backend::Fft).unwrap();
    let american = bopm_naive::price(
        &model,
        OptionType::Put,
        ExerciseStyle::American,
        bopm_naive::ExecMode::Parallel,
    );
    println!("European put  : {european:.6}");
    println!("American put  : {american:.6}\n  dates  value");
    for n_dates in [1usize, 2, 4, 12, 52, 252, 1024] {
        let stride = (steps / n_dates).max(1);
        let dates: Vec<usize> = (1..=n_dates).map(|k| (k * stride).min(steps)).collect();
        let v = bermudan::price_bermudan_put_fft(&model, &dates, Backend::Fft).unwrap();
        println!("  {n_dates:5}  {v:.6}");
        assert!(v >= european - 1e-9 && v <= american + 1e-6);
    }
}
