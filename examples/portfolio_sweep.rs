//! Portfolio repricing: the paper's motivating scenario — markets move,
//! thousands of contracts must reprice *now*.  Prices a synthetic book of
//! American options across strikes and maturities through the batch pricing
//! subsystem (`amopt_core::batch`): one call fans the book out over the
//! fork-join pool, deduplicates repeats, and memoizes results so the second
//! tick only pays for what actually changed.  Then exercises the derived
//! layers on the same warm pricer: batch-native greeks (every contract's
//! bump ladder in one batch) and implied-vol surface inversion (all quotes'
//! root-finding rounds in lockstep).
//!
//! ```sh
//! cargo run --release --example portfolio_sweep
//! ```

use american_option_pricing::prelude::*;
use std::time::Instant;

fn main() {
    let base = OptionParams::paper_defaults();
    let steps = 4096;
    let pricer = BatchPricer::new(EngineConfig::default());

    // A strike ladder x maturity grid: 120 contracts.
    let strikes: Vec<f64> = (0..12).map(|i| 90.0 + 10.0 * i as f64).collect();
    let expiries: Vec<f64> = (1..=10).map(|i| i as f64 / 4.0).collect();
    let book: Vec<PricingRequest> = strikes
        .iter()
        .flat_map(|&k| {
            expiries.iter().map(move |&e| {
                let params = OptionParams { strike: k, expiry: e, ..base };
                PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, steps)
            })
        })
        .collect();

    let t0 = Instant::now();
    let results = pricer.price_batch(&book);
    let elapsed = t0.elapsed();
    let prices: Vec<f64> =
        results.into_iter().collect::<Result<_, _>>().expect("every contract in the book prices");

    println!(
        "re-priced {} American calls at T={steps} in {elapsed:.2?} ({:.1} contracts/s)",
        book.len(),
        book.len() as f64 / elapsed.as_secs_f64()
    );
    // Sanity: prices decrease in strike for fixed expiry.
    for e_idx in 0..expiries.len() {
        for k_idx in 1..strikes.len() {
            let hi = prices[(k_idx - 1) * expiries.len() + e_idx];
            let lo = prices[k_idx * expiries.len() + e_idx];
            assert!(lo <= hi + 1e-9, "prices must fall as strike rises");
        }
    }
    println!("monotonicity checks passed; sample row (K={}):", strikes[0]);
    for (e, p) in expiries.iter().zip(&prices[..expiries.len()]) {
        println!("  expiry {e:4.2}y -> {p:8.4}");
    }

    // The next market tick: the book is unchanged, so the memo answers it.
    let t1 = Instant::now();
    let again = pricer.price_batch(&book);
    let memo_elapsed = t1.elapsed();
    assert!(again.iter().zip(&prices).all(|(a, b)| a.as_ref().unwrap() == b));
    let stats = pricer.memo_stats();
    println!(
        "unchanged tick served from memo in {memo_elapsed:.2?} \
         ({} hits / {} misses, {} entries across {} shards)",
        stats.hits, stats.misses, stats.entries, stats.shards
    );

    // Risk on the same book: every contract's 9-bump finite-difference
    // ladder, fanned through the warm pricer as one batch.  The ladders'
    // base requests are the book itself — already memoized.
    let risk_book: Vec<PricingRequest> = book.iter().take(24).cloned().collect();
    let t2 = Instant::now();
    let ladder = batch_greeks(&pricer, &risk_book);
    let greeks_elapsed = t2.elapsed();
    let net_delta: f64 = ladder.iter().map(|g| g.as_ref().unwrap().delta).sum();
    println!(
        "batch greeks for {} contracts in {greeks_elapsed:.2?} (net delta {net_delta:.3})",
        risk_book.len()
    );

    // Implied-vol surface: quote a near-the-money strike x expiry grid off
    // a synthetic 22%-vol market, then invert every quote in lockstep.
    // (Near the money the vega is healthy, so the recovered vols are sharp;
    // deep-ITM quotes would still invert, but in price space only.)
    let quote_strikes: Vec<f64> = (0..12).map(|i| 112.0 + 3.0 * i as f64).collect();
    let quotes: Vec<VolQuote> = quote_strikes
        .iter()
        .flat_map(|&k| {
            expiries.iter().take(4).map(move |&e| {
                let params = OptionParams { strike: k, expiry: e, volatility: 0.22, ..base };
                let market = bopm_fast::price_american_call(
                    &BopmModel::new(params, 512).expect("grid params are valid"),
                    &EngineConfig::default(),
                );
                VolQuote::new(OptionParams { volatility: 0.2, ..params }, 512, market)
            })
        })
        .collect();
    let t3 = Instant::now();
    let vols = implied_vol_surface(&pricer, &quotes);
    let surface_elapsed = t3.elapsed();
    let recovered: Vec<f64> = vols.into_iter().map(|v| v.expect("grid quote inverts")).collect();
    // Every recovered vol must reproduce its quote (price space: deep-ITM
    // quotes have near-zero vega, so vol space is the wrong place to test).
    for (q, v) in quotes.iter().zip(&recovered) {
        let reprice = bopm_fast::price_american_call(
            &BopmModel::new(OptionParams { volatility: *v, ..q.params }, q.steps).unwrap(),
            &EngineConfig::default(),
        );
        assert!((reprice - q.market_price).abs() < 1e-9, "vol {v} misses quote");
    }
    let max_dev = recovered.iter().map(|v| (v - 0.22).abs()).fold(0.0f64, f64::max);
    println!(
        "inverted a {}x4 implied-vol surface ({} quotes) in {surface_elapsed:.2?} \
         (max |vol - 0.22| = {max_dev:.2e})",
        quote_strikes.len(),
        quotes.len()
    );
}
