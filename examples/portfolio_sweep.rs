//! Portfolio repricing: the paper's motivating scenario — markets move,
//! thousands of contracts must reprice *now*.  Prices a synthetic book of
//! American options across strikes and maturities, in parallel across
//! contracts, each contract using the fast pricer.
//!
//! ```sh
//! cargo run --release --example portfolio_sweep
//! ```

use american_option_pricing::prelude::*;
use std::time::Instant;

fn main() {
    let base = OptionParams::paper_defaults();
    let steps = 4096;
    let cfg = EngineConfig::default();

    // A strike ladder x maturity grid: 120 contracts.
    let strikes: Vec<f64> = (0..12).map(|i| 90.0 + 10.0 * i as f64).collect();
    let expiries: Vec<f64> = (1..=10).map(|i| i as f64 / 4.0).collect();
    let book: Vec<OptionParams> = strikes
        .iter()
        .flat_map(|&k| expiries.iter().map(move |&e| OptionParams { strike: k, expiry: e, ..base }))
        .collect();

    let t0 = Instant::now();
    let prices = amopt_parallel::parallel_map(book.len(), 1, |i| {
        let m = BopmModel::new(book[i], steps).expect("valid lattice");
        bopm_fast::price_american_call(&m, &cfg)
    });
    let elapsed = t0.elapsed();

    println!(
        "re-priced {} American calls at T={steps} in {elapsed:.2?} ({:.1} contracts/s)",
        book.len(),
        book.len() as f64 / elapsed.as_secs_f64()
    );
    // Sanity: prices decrease in strike for fixed expiry.
    for e_idx in 0..expiries.len() {
        for k_idx in 1..strikes.len() {
            let hi = prices[(k_idx - 1) * expiries.len() + e_idx];
            let lo = prices[k_idx * expiries.len() + e_idx];
            assert!(lo <= hi + 1e-9, "prices must fall as strike rises");
        }
    }
    println!("monotonicity checks passed; sample row (K={}):", strikes[0]);
    for (e, p) in expiries.iter().zip(&prices[..expiries.len()]) {
        println!("  expiry {e:4.2}y -> {p:8.4}");
    }
}
