//! Portfolio repricing: the paper's motivating scenario — markets move,
//! thousands of contracts must reprice *now*.  Prices a synthetic book of
//! American options across strikes and maturities through the batch pricing
//! subsystem (`amopt_core::batch`): one call fans the book out over the
//! fork-join pool, deduplicates repeats, and memoizes results so the second
//! tick only pays for what actually changed.
//!
//! ```sh
//! cargo run --release --example portfolio_sweep
//! ```

use american_option_pricing::prelude::*;
use std::time::Instant;

fn main() {
    let base = OptionParams::paper_defaults();
    let steps = 4096;
    let pricer = BatchPricer::new(EngineConfig::default());

    // A strike ladder x maturity grid: 120 contracts.
    let strikes: Vec<f64> = (0..12).map(|i| 90.0 + 10.0 * i as f64).collect();
    let expiries: Vec<f64> = (1..=10).map(|i| i as f64 / 4.0).collect();
    let book: Vec<PricingRequest> = strikes
        .iter()
        .flat_map(|&k| {
            expiries.iter().map(move |&e| {
                let params = OptionParams { strike: k, expiry: e, ..base };
                PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, steps)
            })
        })
        .collect();

    let t0 = Instant::now();
    let results = pricer.price_batch(&book);
    let elapsed = t0.elapsed();
    let prices: Vec<f64> =
        results.into_iter().collect::<Result<_, _>>().expect("every contract in the book prices");

    println!(
        "re-priced {} American calls at T={steps} in {elapsed:.2?} ({:.1} contracts/s)",
        book.len(),
        book.len() as f64 / elapsed.as_secs_f64()
    );
    // Sanity: prices decrease in strike for fixed expiry.
    for e_idx in 0..expiries.len() {
        for k_idx in 1..strikes.len() {
            let hi = prices[(k_idx - 1) * expiries.len() + e_idx];
            let lo = prices[k_idx * expiries.len() + e_idx];
            assert!(lo <= hi + 1e-9, "prices must fall as strike rises");
        }
    }
    println!("monotonicity checks passed; sample row (K={}):", strikes[0]);
    for (e, p) in expiries.iter().zip(&prices[..expiries.len()]) {
        println!("  expiry {e:4.2}y -> {p:8.4}");
    }

    // The next market tick: the book is unchanged, so the memo answers it.
    let t1 = Instant::now();
    let again = pricer.price_batch(&book);
    let memo_elapsed = t1.elapsed();
    assert!(again.iter().zip(&prices).all(|(a, b)| a.as_ref().unwrap() == b));
    let stats = pricer.memo_stats();
    println!(
        "unchanged tick served from memo in {memo_elapsed:.2?} \
         ({} hits / {} misses, {} entries)",
        stats.hits, stats.misses, stats.entries
    );
}
