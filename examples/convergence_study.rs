//! Convergence study: binomial and trinomial European prices vs the
//! Black–Scholes closed form as T grows — including the §3 claim (Langat et
//! al.) that the trinomial lattice needs roughly half the steps of the
//! binomial for matched accuracy.
//!
//! ```sh
//! cargo run --release --example convergence_study
//! ```

use american_option_pricing::prelude::*;

fn main() {
    let params = OptionParams::paper_defaults();
    let target = analytic::black_scholes_price(&params, OptionType::Call).unwrap();
    println!("Black–Scholes European call: {target:.8}\n");
    println!("     T    binomial error   trinomial error");
    for pow in 7..=14 {
        let t = 1usize << pow;
        let bin = BopmModel::new(params, t).unwrap();
        let tri = TopmModel::new(params, t).unwrap();
        let e_bin = (american_option_pricing::core::bopm::european::price_european_fft(
            &bin,
            OptionType::Call,
        ) - target)
            .abs();
        let e_tri = (american_option_pricing::core::topm::european::price_european_fft(
            &tri,
            OptionType::Call,
        ) - target)
            .abs();
        println!("{t:7}   {e_bin:13.3e}   {e_tri:14.3e}");
    }
    println!("\nAmerican put: FD (BSM) vs binomial lattice cross-check");
    let p = OptionParams { dividend_yield: 0.0, ..params };
    for pow in [10usize, 12, 14] {
        let t = 1usize << pow;
        let fd = BsmModel::new(p, t).unwrap();
        let v_fd = bsm_fast::price_american_put(&fd, &EngineConfig::default());
        let lat = BopmModel::new(p, t).unwrap();
        let v_lat = bopm_naive::price(
            &lat,
            OptionType::Put,
            ExerciseStyle::American,
            bopm_naive::ExecMode::Parallel,
        );
        println!(
            "  T={t:6}: FD {v_fd:.6} vs lattice {v_lat:.6} (diff {:.2e})",
            (v_fd - v_lat).abs()
        );
    }
}
