//! The `Strategy` trait and the value sources used in this workspace:
//! numeric ranges, tuples, `Just`, and the `prop_map`/`prop_flat_map`
//! combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking; `generate`
/// draws one concrete value from the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.end > self.start);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        *self.start() + rng.next_f64() * (*self.end() - *self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.end > self.start);
                rng.i128_in_inclusive(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i128_in_inclusive(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = TestRng::for_case("ranges", 1);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 9;
            let f = (-2.0..2.0f64).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&i));
        }
        assert!(saw_lo && saw_hi, "endpoint bias never hit the bounds");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0.0..1.0f64, 1u64..100).prop_map(|(f, n)| (f, n));
        let a = strat.generate(&mut TestRng::for_case("det", 7));
        let b = strat.generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let strat = (1u32..=4).prop_flat_map(|p| {
            crate::collection::vec(0.0..1.0f64, 1usize << p).prop_map(|v| v.len())
        });
        let mut rng = TestRng::for_case("vec", 3);
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!([2, 4, 8, 16].contains(&len));
        }
    }
}
