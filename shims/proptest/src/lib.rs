//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the property-testing surface this workspace uses with the
//! upstream module paths and macro grammar: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, numeric range and tuple
//! strategies, and `prop::collection::vec`.
//!
//! Generation is **deterministic**: each case's RNG is seeded from the test
//! name and the attempt index, so failures reproduce exactly across runs.
//! There is no shrinking — a failing case reports its attempt number.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec` compatible collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification: either an exact size (`usize`) or a
    /// half-open range (`Range<usize>`), mirroring proptest's `SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests.  Supports the subset of upstream grammar used in
/// this workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases: u32 = __config.cases;
                // Rejections (prop_assume!) don't count toward `cases`, but a
                // runaway assumption must not loop forever.
                let __max_attempts: u64 = u64::from(__cases) * 32 + 256;
                let mut __successes: u32 = 0;
                let mut __attempt: u64 = 0;
                while __successes < __cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= __max_attempts,
                        "proptest '{}' gave up: too many prop_assume! rejections \
                         ({} accepted of {} attempts)",
                        stringify!($name),
                        __successes,
                        __attempt - 1,
                    );
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __attempt);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __successes += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest '{}' failed at deterministic attempt {}: {}",
                            stringify!($name),
                            __attempt,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r,
        );
    }};
}
