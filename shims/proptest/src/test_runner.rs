//! Config, RNG, and case-outcome types backing the `proptest!` macro.

/// Subset of upstream `proptest::test_runner::Config` used here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case's body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` did not hold; the case is skipped, not failed.
    Reject,
    /// `prop_assert!`-family assertion failed.
    Fail(String),
}

/// Deterministic splitmix64/xorshift-style RNG.  Seeded from the test name
/// and attempt index so every run generates the identical case sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, attempt: u64) -> Self {
        // FNV-1a over the name, mixed with the attempt index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15) };
        // Warm the state so nearby seeds decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi]` over `i128` (covers every integer type used),
    /// with a small bias toward the endpoints to surface off-by-one bugs.
    pub fn i128_in_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(hi >= lo);
        let roll = self.next_u64() % 32;
        if roll == 0 {
            return lo;
        }
        if roll == 1 {
            return hi;
        }
        let span = (hi - lo + 1) as u128;
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        lo + (wide % span) as i128
    }
}
