//! Offline shim for the `rayon` crate (see `shims/README.md`).
//!
//! Implements the fork-join surface `amopt-parallel` uses — [`join`],
//! [`current_num_threads`], and [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! — with real parallelism: `join` runs its second closure on a scoped OS
//! thread while the enclosing pool has spare width, and falls back to
//! sequential execution once the budget is exhausted.  There is no work
//! stealing; the budget is a simple atomic counter per pool, which is enough
//! to bound concurrency to the requested thread count and to make
//! `current_num_threads` report the installed pool's width.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared state of one logical thread pool: its width and how many extra
/// (spawned) workers are currently live.
struct PoolCtx {
    width: usize,
    extra: AtomicUsize,
}

impl PoolCtx {
    fn new(width: usize) -> Arc<Self> {
        Arc::new(PoolCtx { width: width.max(1), extra: AtomicUsize::new(0) })
    }

    /// Tries to reserve one spawn slot; the calling thread itself always
    /// counts as one worker, so at most `width - 1` extras may be live.
    fn try_reserve(&self) -> bool {
        self.extra
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                (v + 1 < self.width).then_some(v + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.extra.fetch_sub(1, Ordering::AcqRel);
    }
}

fn global_pool() -> &'static Arc<PoolCtx> {
    static GLOBAL: OnceLock<Arc<PoolCtx>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let width = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        PoolCtx::new(width)
    })
}

thread_local! {
    /// Pool the current thread works for; `None` means the implicit global pool.
    static CURRENT: RefCell<Option<Arc<PoolCtx>>> = const { RefCell::new(None) };
}

fn current_ctx() -> Arc<PoolCtx> {
    CURRENT.with(|c| c.borrow().as_ref().cloned().unwrap_or_else(|| global_pool().clone()))
}

/// Runs `f` with `ctx` installed as the current thread's pool.
fn with_ctx<R>(ctx: Arc<PoolCtx>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolCtx>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    let _restore = Restore(prev);
    f()
}

/// Number of worker threads in the pool the current thread runs under.
pub fn current_num_threads() -> usize {
    current_ctx().width
}

/// Runs both closures, in parallel when the current pool has spare width,
/// returning both results.  Panics from either closure propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx = current_ctx();
    if ctx.try_reserve() {
        struct Release<'a>(&'a PoolCtx);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.release();
            }
        }
        let _slot = Release(&ctx);
        let ctx_b = ctx.clone();
        std::thread::scope(|s| {
            let hb = s.spawn(move || with_ctx(ctx_b, b));
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the surface used here.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means one worker per available hardware thread.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 { global_pool().width } else { self.num_threads };
        Ok(ThreadPool { ctx: PoolCtx::new(width) })
    }
}

/// A pool of bounded width; work only runs on it via [`ThreadPool::install`].
pub struct ThreadPool {
    ctx: Arc<PoolCtx>,
}

impl ThreadPool {
    /// Runs `f` with this pool as the ambient pool: `join` calls inside `f`
    /// draw on this pool's width and `current_num_threads` reports it.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        with_ctx(self.ctx.clone(), f)
    }

    pub fn current_num_threads(&self) -> usize {
        self.ctx.width
    }
}

/// Pool construction in this shim is infallible; the type exists so call
/// sites written against real rayon (`.build().expect(…)`) compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_results_and_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(15), 610);
    }

    #[test]
    fn install_scopes_pool_width() {
        assert!(current_num_threads() >= 1);
        for p in [1usize, 2, 5] {
            let pool = ThreadPoolBuilder::new().num_threads(p).build().unwrap();
            assert_eq!(pool.install(current_num_threads), p);
        }
        // Restored after install returns.
        assert_eq!(current_num_threads(), global_pool().width);
    }

    #[test]
    fn width_one_pool_never_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            let (a, b) = join(|| std::thread::current().id(), || std::thread::current().id());
            assert_eq!(a, caller);
            assert_eq!(b, caller);
        });
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            join(|| (), || panic!("boom"));
        });
        assert!(caught.is_err());
    }
}
