//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the harness surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! the group's `warm_up_time` / `measurement_time` / `sample_size` knobs,
//! `bench_with_input` / `bench_function`, and [`Bencher::iter`] — reporting
//! the median / min / max wall-clock time per iteration on stdout.  There is
//! no statistical analysis, HTML report, or CLI filtering; every registered
//! bench runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_one(&group_name, name, Duration::from_millis(500), Duration::from_secs(2), 10, f);
        self
    }
}

/// Identifier `function_name/parameter` mirroring criterion's display form.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.id,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&self.name, &id.id, self.warm_up_time, self.measurement_time, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Anything usable as a bench name in `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

fn run_one<F>(
    group: &str,
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { mode: Mode::WarmUp { budget: warm_up }, samples: Vec::new() };
    f(&mut bencher);
    bencher.mode = Mode::Measure { budget: measurement, sample_size };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    bencher.report(&label);
}

enum Mode {
    WarmUp { budget: Duration },
    Measure { budget: Duration, sample_size: usize },
}

/// Timing loop driver passed to the bench closure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call in the measurement phase.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    black_box(routine());
                }
            }
            Mode::Measure { budget, sample_size } => {
                self.samples.clear();
                let start = Instant::now();
                for done in 0..sample_size {
                    // Always record at least two samples so min/median/max
                    // are meaningful, then respect the time budget.
                    if done >= 2 && start.elapsed() > budget {
                        break;
                    }
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                }
            }
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let med = self.samples[self.samples.len() / 2];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{label:<40} time: [{} {} {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Groups bench target functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring
/// `criterion::criterion_main!`.  CLI arguments (e.g. cargo's `--bench`) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.sample_size(4);
        let mut runs = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 3), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.finish();
        assert!(runs >= 4, "routine ran {runs} times");
    }
}
