//! Narrow Linux `epoll`/`eventfd` wrapper for the service's reactor front
//! end (see `shims/README.md`).
//!
//! ## Unsafe-confinement policy
//!
//! Every other crate in this workspace carries `#![forbid(unsafe_code)]`,
//! and the `unsafe-confined` pass of `amopt-lint` machine-checks that no
//! `unsafe` token appears outside this directory.  This crate is the single
//! sanctioned exception, and it keeps the exception narrow:
//!
//! * raw FFI is limited to the six syscalls the reactor needs —
//!   `epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`, `fcntl`
//!   (`O_NONBLOCK` only), and the `read`/`write`/`close` calls that service
//!   an eventfd and release descriptors;
//! * no `libc` dependency: the container builds offline, so the
//!   declarations and constants are written out here against the stable
//!   Linux 64-bit ABI;
//! * every `unsafe` block is a single syscall with a `SAFETY:` comment, and
//!   the types exposed ([`Epoll`], [`Events`], [`Waker`]) own their file
//!   descriptors and close them on drop, so callers never touch a raw
//!   pointer or an unowned fd lifetime.
//!
//! The wrapper is Linux-only by construction (epoll *is* Linux-only); the
//! workspace's CI and deployment targets are Linux.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::io;
use std::os::unix::io::RawFd;

// ---------------------------------------------------------------------------
// Raw ABI: declarations and constants (Linux 64-bit)
// ---------------------------------------------------------------------------

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0x800;

/// One kernel-side event record.  On x86-64 the kernel ABI packs this to 12
/// bytes; other 64-bit Linux targets use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `-1` from a syscall → the thread-local `errno` as an [`io::Error`].
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Safe surface
// ---------------------------------------------------------------------------

/// Readiness interests to register a descriptor with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-readiness only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both read- and write-readiness.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither direction — the registration stays parked (full-close hangup
    /// and error conditions still surface; `EPOLLHUP`/`EPOLLERR` cannot be
    /// masked off).  Used to mute a backpressured connection without
    /// churning add/delete.
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn mask(self) -> u32 {
        // EPOLLRDHUP rides along with read interest so a peer's half-close
        // surfaces as an explicit event.  It is deliberately *not* part of
        // write-only or parked registrations: a level-triggered RDHUP on a
        // connection that has nothing to read would re-fire every wait and
        // spin the loop.
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness event: the registration token plus what fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` the descriptor was registered with.
    pub token: u64,
    bits: u32,
}

impl Event {
    /// Data can (probably) be read without blocking.
    pub fn readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    /// Data can (probably) be written without blocking.
    pub fn writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its end (full close or write-half shutdown).
    pub fn hangup(&self) -> bool {
        self.bits & (EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// An error condition is pending on the descriptor.
    pub fn error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }
}

/// Reusable buffer [`Epoll::wait`] fills with delivered [`Event`]s.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait (min 1).
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)], len: 0 }
    }

    /// Events delivered by the most recent [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) record before field access.
            let EpollEvent { events, data } = *e;
            Event { token: data, bits: events }
        })
    }

    /// Number of events delivered by the most recent [`Epoll::wait`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent [`Epoll::wait`] delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("capacity", &self.buf.len()).field("len", &self.len).finish()
    }
}

/// Fault-injection hook consulted once per [`Epoll::wait`] call.
///
/// When [`spurious_wakeup`](WaitFault::spurious_wakeup) returns `true` the
/// wait returns `Ok(0)` without touching the kernel — exactly what a
/// spurious wakeup or an early-timeout looks like to the caller.  Because
/// this instance is level-triggered, real readiness is re-delivered by the
/// next wait, so the hook can only delay progress, never lose events.
/// Implementations must be deterministic if reproducible schedules are
/// wanted; the shim imposes no policy.
pub trait WaitFault: Send {
    /// Whether this wait call should wake spuriously with zero events.
    fn spurious_wakeup(&self) -> bool;
}

/// An owned epoll instance (level-triggered).
///
/// Registered descriptors are identified by a caller-chosen `u64` token;
/// the instance does not take ownership of them — callers keep their
/// `TcpStream`s/`TcpListener`s and must [`delete`](Epoll::delete) (or drop
/// the whole `Epoll`) before closing a registered fd.
pub struct Epoll {
    fd: RawFd,
    fault: Option<Box<dyn WaitFault>>,
}

impl std::fmt::Debug for Epoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoll")
            .field("fd", &self.fd)
            .field("fault", &self.fault.as_ref().map(|_| "WaitFault"))
            .finish()
    }
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers; epoll_create1 allocates a new fd or fails.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd, fault: None })
    }

    /// Installs a [`WaitFault`] hook, consulted once per [`wait`](Epoll::wait).
    /// Intended for deterministic fault injection in tests and chaos runs.
    pub fn set_wait_fault(&mut self, fault: Box<dyn WaitFault>) {
        self.fault = Some(fault);
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: mask, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies the record
        // before returning (EPOLL_CTL_DEL ignores it entirely).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for `interest`, delivering `token` with its events.
    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Changes the interest/token of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready (or the
    /// timeout elapses), filling `events`.  `timeout` of `None` waits
    /// indefinitely.  Returns the number of delivered events; `0` means the
    /// timeout elapsed.  Interrupted waits (`EINTR`) are retried.
    pub fn wait(
        &self,
        events: &mut Events,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1i32,
            // Round up so a 0 < t < 1ms timeout still sleeps instead of
            // spinning, and clamp to the i32 the ABI carries.
            Some(t) => {
                i32::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
            }
        };
        events.len = 0;
        if let Some(fault) = &self.fault {
            if fault.spurious_wakeup() {
                return Ok(0);
            }
        }
        loop {
            let cap = events.buf.len() as i32;
            // SAFETY: the buffer holds `cap` initialised EpollEvent records
            // and outlives the call; the kernel writes at most `cap`.
            let n = unsafe { epoll_wait(self.fd, events.buf.as_mut_ptr(), cap, timeout_ms) };
            match cvt(n) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this struct owns and closes exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wakeup handle: any thread can [`wake`](Waker::wake)
/// a reactor blocked in [`Epoll::wait`].
///
/// Register [`as_raw_fd`](Waker::as_raw_fd) with read interest; when the
/// token fires, call [`drain`](Waker::drain) to re-arm.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (non-blocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers; eventfd allocates a new fd or fails.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The descriptor to register with the reactor's [`Epoll`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable, waking a blocked [`Epoll::wait`].
    /// Idempotent until drained; never blocks.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly the 8 bytes of `one`, which outlives the
        // call; eventfd writes are atomic at this size.
        let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        // EAGAIN means the counter is already at its max — the reactor is
        // provably wake-pending, which is all a waker promises.
        if n == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Consumes pending wakeups so the next [`wake`](Waker::wake) fires the
    /// epoll again.  Returns whether any wakeup was pending.
    pub fn drain(&self) -> bool {
        let mut count = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a buffer of 8 that outlives
        // the call; the fd is non-blocking so this never parks the reactor.
        let n = unsafe { read(self.fd, count.as_mut_ptr(), 8) };
        n == 8
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this struct owns and closes exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// Switches `fd` into non-blocking mode (`O_NONBLOCK` via `fcntl`).
///
/// Used instead of `TcpStream::set_nonblocking` only where no std wrapper
/// owns the descriptor; std types should use their own setters.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL takes no third argument and returns flags or -1.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    // SAFETY: F_SETFL takes the new flag word as its variadic int argument.
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn wait_fault_hook_injects_spurious_wakeups_without_losing_readiness() {
        struct EveryOther(std::sync::atomic::AtomicU64);
        impl WaitFault for EveryOther {
            fn spurious_wakeup(&self) -> bool {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed).is_multiple_of(2)
            }
        }
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut ep = Epoll::new().unwrap();
        ep.add(a.as_raw_fd(), Interest::READ, 9).unwrap();
        ep.set_wait_fault(Box::new(EveryOther(std::sync::atomic::AtomicU64::new(0))));
        b.write_all(b"ping").unwrap();
        let mut events = Events::with_capacity(8);
        // First wait fires the hook: zero events even though data is pending.
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(100))).unwrap(), 0);
        // Level-triggered re-delivery: the next wait sees the readiness.
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(1000))).unwrap(), 1);
        assert!(events.iter().any(|e| e.token == 9 && e.readable()));
    }

    #[test]
    fn wait_times_out_with_nothing_registered() {
        let ep = Epoll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let n = ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_round_trip() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(a.as_raw_fd(), Interest::BOTH, 7).unwrap();
        let mut events = Events::with_capacity(8);

        // Fresh socket: writable, not readable.
        ep.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event for token 7");
        assert!(ev.writable() && !ev.hangup());

        // Peer writes → readable.
        b.write_all(b"ping").unwrap();
        ep.modify(a.as_raw_fd(), Interest::READ, 7).unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("readable event");
        assert!(ev.readable());
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 4);

        // Peer closes → hangup.
        drop(b);
        ep.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("hangup event");
        assert!(ev.hangup());

        ep.delete(a.as_raw_fd()).unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "deregistered fd must stop reporting");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let ep = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        ep.add(waker.as_raw_fd(), Interest::READ, 1).unwrap();
        let mut events = Events::with_capacity(4);

        // Unwoken: times out.
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        // Wake from another thread while blocked.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake().unwrap();
            });
            let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events.iter().next().unwrap().token, 1);
        });

        // Drain re-arms; double-wake coalesces into one readable state.
        waker.wake().unwrap();
        waker.wake().unwrap();
        assert!(waker.drain());
        assert!(!waker.drain(), "drained waker has nothing pending");
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn set_nonblocking_is_idempotent_and_effective() {
        let (a, _b) = UnixStream::pair().unwrap();
        set_nonblocking(a.as_raw_fd()).unwrap();
        set_nonblocking(a.as_raw_fd()).unwrap();
        let mut a = a;
        let mut buf = [0u8; 4];
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn interest_masks_request_rdhup() {
        assert_eq!(Interest::READ.mask(), EPOLLIN | EPOLLRDHUP);
        assert_eq!(Interest::WRITE.mask(), EPOLLOUT);
        assert_eq!(Interest::BOTH.mask(), EPOLLIN | EPOLLOUT | EPOLLRDHUP);
        assert_eq!(Interest::NONE.mask(), 0);
    }
}
