//! `service_throughput` — options/sec and latency percentiles of the
//! batch-coalescing quote service vs the per-request serial baseline.
//!
//! The workload is a **dedup-heavy book** ([`duplicated_book`]: 4096
//! requests cycling 64 distinct contracts at `T = 252`) — the traffic shape
//! the service exists for: many clients quoting the same underlyings, where
//! coalescing turns per-request lattice work into in-batch dedup and memo
//! hits.  Scenarios:
//!
//! * `serial_per_request` — one model build + one fast pricing per request,
//!   sequentially: the pre-service caller with no batching anywhere;
//! * `service_inproc` — the same book through [`QuoteService`] in-process
//!   clients, eight closed-loop submitter threads (each submits and waits
//!   one request at a time), so batches form *only* from concurrency and
//!   the deadline — nobody hands the service a pre-made batch;
//! * `service_tcp` — the book over loopback TCP connections with a
//!   16-request pipeline window per connection, timing each request from
//!   send to response line.
//!
//! Per-request latency percentiles (p50/p90/p99/max, in microseconds) are
//! recorded for the two service scenarios.  The machine-readable summary
//! goes to `BENCH_service.json` (override with `BENCH_SERVICE_OUT`); schema
//! in `crates/bench/README.md`.
//!
//! ```sh
//! cargo bench -p amopt-bench --bench service_throughput
//! ```

use amopt_bench::duplicated_book;
use amopt_core::batch::{ModelKind, PricingRequest, Style};
use amopt_core::bopm::{self, BopmModel};
use amopt_core::{EngineConfig, OptionType};
use amopt_service::{wire, QuoteServer, ServiceConfig, TcpQuoteClient};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const STEPS: usize = 252;
const BOOK: usize = 4096;
const UNIQUE: usize = 64;
const INPROC_THREADS: usize = 8;
const TCP_CONNS: usize = 4;
const TCP_WINDOW: usize = 16;

struct Record {
    name: &'static str,
    batch: usize,
    threads: usize,
    secs: f64,
    latencies_us: Option<Latency>,
}

#[derive(Clone, Copy)]
struct Latency {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

fn percentiles(mut lat_us: Vec<f64>) -> Latency {
    lat_us.sort_by(f64::total_cmp);
    let at = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    Latency { p50: at(0.5), p90: at(0.9), p99: at(0.99), max: *lat_us.last().unwrap() }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        max_batch: 256,
        max_wait: Duration::from_micros(500),
        queue_depth: 2 * BOOK,
        per_conn_inflight: 2 * BOOK,
        memo_capacity: 8192,
        ..ServiceConfig::default()
    }
}

/// The pre-service baseline: price each request as it "arrives", one model
/// construction + one fast pricing per request, no dedup, no memo.
fn serial_per_request(book: &[PricingRequest]) -> Vec<f64> {
    let cfg = EngineConfig::default();
    book.iter()
        .map(|req| {
            assert!(
                req.model == ModelKind::Bopm
                    && req.option_type == OptionType::Call
                    && req.style == Style::American,
                "baseline supports the duplicated_book shape only"
            );
            let m = BopmModel::new(req.params, req.steps).expect("valid book");
            bopm::fast::price_american_call(&m, &cfg)
        })
        .collect()
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let book = duplicated_book(UNIQUE, BOOK, STEPS);
    let mut records: Vec<Record> = Vec::new();

    // Reference prices once; every scenario must reproduce them bitwise.
    let want = serial_per_request(&book);

    // --- Baseline ---
    let t0 = Instant::now();
    let got = serial_per_request(&book);
    let serial_secs = t0.elapsed().as_secs_f64();
    assert_eq!(got.len(), want.len());
    records.push(Record {
        name: "serial_per_request",
        batch: BOOK,
        threads: 1,
        secs: serial_secs,
        latencies_us: None,
    });

    // --- In-process service, closed-loop submitters ---
    let (inproc_secs, inproc_lat) = {
        let service = amopt_service::QuoteService::start(service_config()).expect("start service");
        let chunk = book.len().div_ceil(INPROC_THREADS);
        let t0 = Instant::now();
        let lat: Vec<Vec<(usize, f64, f64)>> = std::thread::scope(|scope| {
            book.chunks(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    let client = service.client();
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(slice.len());
                        for (i, req) in slice.iter().enumerate() {
                            let sent = Instant::now();
                            let price = client.price(req.clone()).expect("service accepts book");
                            let us = sent.elapsed().as_secs_f64() * 1e6;
                            out.push((w * chunk + i, price, us));
                        }
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        let mut lat_us = Vec::with_capacity(book.len());
        for (id, price, us) in lat.into_iter().flatten() {
            assert_eq!(price.to_bits(), want[id].to_bits(), "request {id}");
            lat_us.push(us);
        }
        let stats = service.stats();
        assert_eq!(stats.completed as usize, book.len());
        if stats.batches >= book.len() as u64 {
            eprintln!(
                "WARNING: closed-loop traffic did not coalesce at all ({} batches for {} \
                 requests) — every batch was a singleton",
                stats.batches,
                book.len()
            );
        }
        eprintln!(
            "in-process: {} batches (mean size {:.1}), memo hit rate {:.3}",
            stats.batches,
            stats.mean_batch_size(),
            stats.memo_hit_rate()
        );
        service.shutdown();
        (secs, percentiles(lat_us))
    };
    records.push(Record {
        name: "service_inproc",
        batch: BOOK,
        threads: INPROC_THREADS,
        secs: inproc_secs,
        latencies_us: Some(inproc_lat),
    });

    // --- TCP loopback, pipelined windows ---
    let (tcp_secs, tcp_lat) = {
        let server = QuoteServer::bind("127.0.0.1:0", service_config()).expect("bind loopback");
        let addr = server.local_addr();
        let chunk = book.len().div_ceil(TCP_CONNS);
        let t0 = Instant::now();
        let lat: Vec<Vec<(usize, f64, f64)>> = std::thread::scope(|scope| {
            book.chunks(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    scope.spawn(move || {
                        let mut client = TcpQuoteClient::connect(addr).expect("connect");
                        let mut out = Vec::with_capacity(slice.len());
                        let mut sent_at = std::collections::VecDeque::new();
                        let mut next = 0usize;
                        let mut done = 0usize;
                        while done < slice.len() {
                            while next < slice.len() && sent_at.len() < TCP_WINDOW {
                                let id = (w * chunk + next) as u64;
                                let line = wire::encode_pricing_request(id, "price", &slice[next]);
                                client.send(&line).expect("send");
                                sent_at.push_back(Instant::now());
                                next += 1;
                            }
                            let reply = client.recv().expect("response");
                            let us = sent_at.pop_front().unwrap().elapsed().as_secs_f64() * 1e6;
                            let doc = wire::parse(&reply).expect("valid json");
                            let id = doc.get("id").unwrap().as_f64().unwrap() as usize;
                            let price = doc
                                .get("price")
                                .and_then(wire::JsonValue::as_f64)
                                .unwrap_or_else(|| panic!("error response: {reply}"));
                            out.push((id, price, us));
                            done += 1;
                        }
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        let mut lat_us = Vec::with_capacity(book.len());
        for (id, price, us) in lat.into_iter().flatten() {
            assert_eq!(price.to_bits(), want[id].to_bits(), "request {id}");
            lat_us.push(us);
        }
        server.shutdown();
        (secs, percentiles(lat_us))
    };
    records.push(Record {
        name: "service_tcp",
        batch: BOOK,
        threads: TCP_CONNS,
        secs: tcp_secs,
        latencies_us: Some(tcp_lat),
    });

    // --- Report ---
    println!(
        "\nbenchmark group: service_throughput (dedup-heavy book: {BOOK} requests, {UNIQUE} \
         distinct, T = {STEPS})"
    );
    println!("| scenario | requests | threads | secs | options/s | p50 us | p99 us |");
    println!("|---|---|---|---|---|---|---|");
    for r in &records {
        let (p50, p99) = r
            .latencies_us
            .map(|l| (format!("{:.0}", l.p50), format!("{:.0}", l.p99)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "| {} | {} | {} | {:.4} | {:.0} | {} | {} |",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.batch as f64 / r.secs,
            p50,
            p99
        );
    }
    let inproc_speedup = serial_secs / inproc_secs;
    let tcp_speedup = serial_secs / tcp_secs;
    println!("\ncoalesced in-process vs per-request serial baseline: {inproc_speedup:.2}x");
    println!("coalesced over TCP vs per-request serial baseline: {tcp_speedup:.2}x");
    if inproc_speedup < 1.0 {
        eprintln!(
            "WARNING: in-process service below the serial per-request baseline \
             ({inproc_speedup:.2}x) — noisy run or a real regression?"
        );
    }

    write_summary(&records, max_threads, inproc_speedup, tcp_speedup);
}

fn write_summary(records: &[Record], max_threads: usize, inproc: f64, tcp: f64) {
    let path =
        std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_throughput\",");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"book\": {BOOK},");
    let _ = writeln!(json, "  \"unique_contracts\": {UNIQUE},");
    let _ = writeln!(json, "  \"max_threads\": {max_threads},");
    let _ = writeln!(json, "  \"speedup_inproc_vs_serial\": {inproc:.4},");
    let _ = writeln!(json, "  \"speedup_tcp_vs_serial\": {tcp:.4},");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"batch\": {}, \"threads\": {}, \"secs\": {:.6}, \
             \"options_per_sec\": {:.1}",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.batch as f64 / r.secs,
        );
        if let Some(l) = r.latencies_us {
            let _ = write!(
                json,
                ", \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}",
                l.p50, l.p90, l.p99, l.max
            );
        }
        json.push('}');
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
