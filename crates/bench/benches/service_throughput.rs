//! `service_throughput` — options/sec and latency percentiles of the
//! batch-coalescing quote service vs the per-request serial baseline, plus
//! the reactor front end's connection-scaling and EDF deadline-mix
//! headline numbers.
//!
//! The base workload is a **dedup-heavy book** ([`duplicated_book`]: 4096
//! requests cycling 64 distinct contracts at `T = 252`) — the traffic shape
//! the service exists for: many clients quoting the same underlyings, where
//! coalescing turns per-request lattice work into in-batch dedup and memo
//! hits.  Scenarios:
//!
//! * `serial_per_request` — one model build + one fast pricing per request,
//!   sequentially: the pre-service caller with no batching anywhere;
//! * `service_inproc` — the same book through [`QuoteService`] in-process
//!   clients, eight closed-loop submitter threads (each submits and waits
//!   one request at a time), so batches form *only* from concurrency and
//!   the deadline — nobody hands the service a pre-made batch;
//! * `service_tcp` — the book over loopback TCP through the **epoll
//!   reactor** front end, four connections with a 16-request pipeline
//!   window each, timing each request from send to response line;
//! * `service_tcp_threaded` — identical shape through the legacy
//!   thread-per-connection front end: the reactor must hold a p99 no worse
//!   than this on the same book;
//! * `reactor_conns` / `threaded_conns` — connection scaling: one phased
//!   single-threaded driver fanning the book over **1024** reactor
//!   connections vs **64** threaded ones (the threaded baseline pays one
//!   OS thread per connection; 16× fewer is already generous to it);
//! * `deadline_mix_tagged` / `deadline_mix_bulk` — a duplicate-free book
//!   ([`paper_book`]) flooded open-loop: one latency-sensitive connection
//!   sends 16 quotes with a 1 ms deadline budget while seven bulk
//!   connections flood the rest untagged against a 100 ms coalescing
//!   default.  The EDF queue must pull the tagged class ahead of the
//!   backlog (its fair share exceeds its arrival rate), giving it a
//!   markedly better p99 than the bulk class it overtakes;
//! * `service_tcp_obs_off` / `service_tcp_obs_on` — the pipelined TCP shape
//!   with request tracing (trace cards + event journal) disabled vs
//!   enabled: the obs-on run must stay within 3% of obs-off on options/s
//!   and p99 (CI gates the pair via `bench_diff --pair`).
//!
//! Per-request latency percentiles (p50/p90/p99/max, in microseconds) are
//! recorded for every service scenario.  The machine-readable summary
//! goes to `BENCH_service.json` (override with `BENCH_SERVICE_OUT`); schema
//! in `crates/bench/README.md`.
//!
//! ```sh
//! cargo bench -p amopt-bench --bench service_throughput
//! ```

use amopt_bench::{duplicated_book, paper_book};
use amopt_core::batch::{ModelKind, PricingRequest, Style};
use amopt_core::bopm::{self, BopmModel};
use amopt_core::{EngineConfig, OptionType};
use amopt_service::{wire, FrontEnd, QuoteServer, ServiceConfig, TcpQuoteClient};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const STEPS: usize = 252;
const BOOK: usize = 4096;
const UNIQUE: usize = 64;
const INPROC_THREADS: usize = 8;
const TCP_CONNS: usize = 4;
const TCP_WINDOW: usize = 16;
/// Connection-scaling scenario sizes: the reactor must sustain at least an
/// order of magnitude more connections than the thread-per-connection
/// baseline.
const REACTOR_CONNS: usize = 1024;
const THREADED_CONNS: usize = 64;
const CONN_SCALING_REQS_PER_CONN: usize = 2;
/// Deadline-mix scenario: one latency-sensitive connection floods
/// `MIX_URGENT` deadline-tagged quotes while `MIX_BULK_CONNS` bulk
/// connections flood the rest of a duplicate-free book, all open-loop.
/// The urgent class rides its own connection because the wire protocol
/// answers each connection in request order — a tagged reply queued behind
/// a bulk reply on the same socket would hide any scheduling win.
const MIX_BOOK: usize = 1024;
const MIX_URGENT: usize = 16;
const MIX_BULK_CONNS: usize = 7;
const MIX_BUDGET: Duration = Duration::from_millis(1);
/// Bulk requests in the mix carry no budget, so their implicit deadline is
/// this coalescing default.  It must dwarf the book's arrival spread
/// (tens of ms at this size): EDF separates *deadlines*, and a bulk class
/// that implicitly demands near-tagged latency has asked for the tie it
/// gets.
const MIX_MAX_WAIT: Duration = Duration::from_millis(100);

struct Record {
    name: &'static str,
    batch: usize,
    threads: usize,
    secs: f64,
    latencies_us: Option<Latency>,
}

#[derive(Clone, Copy)]
struct Latency {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

fn percentiles(mut lat_us: Vec<f64>) -> Latency {
    lat_us.sort_by(f64::total_cmp);
    let at = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    Latency { p50: at(0.5), p90: at(0.9), p99: at(0.99), max: *lat_us.last().unwrap() }
}

fn service_config(front_end: FrontEnd) -> ServiceConfig {
    ServiceConfig {
        max_batch: 256,
        max_wait: Duration::from_micros(500),
        queue_depth: 2 * BOOK,
        per_conn_inflight: 2 * BOOK,
        memo_capacity: 8192,
        front_end,
        ..ServiceConfig::default()
    }
}

/// The pre-service baseline: price each request as it "arrives", one model
/// construction + one fast pricing per request, no dedup, no memo.
fn serial_per_request(book: &[PricingRequest]) -> Vec<f64> {
    let cfg = EngineConfig::default();
    book.iter()
        .map(|req| {
            assert!(
                req.model == ModelKind::Bopm
                    && req.option_type == OptionType::Call
                    && req.style == Style::American,
                "baseline supports the duplicated_book shape only"
            );
            let m = BopmModel::new(req.params, req.steps).expect("valid book");
            bopm::fast::price_american_call(&m, &cfg)
        })
        .collect()
}

/// Drives `slice` over one loopback connection with a `window`-deep
/// pipeline (`usize::MAX` = open-loop), tagging *every* request with
/// `budget` when given.  Returns `(id, price, latency_us)` per request.
fn drive_conn(
    addr: std::net::SocketAddr,
    slice: &[PricingRequest],
    base_id: usize,
    window: usize,
    budget: Option<Duration>,
) -> Vec<(usize, f64, f64)> {
    let mut client = TcpQuoteClient::connect(addr).expect("connect");
    let mut out = Vec::with_capacity(slice.len());
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut next = 0usize;
    while out.len() < slice.len() {
        while next < slice.len() && sent_at.len() < window {
            let id = (base_id + next) as u64;
            let line = match budget {
                Some(b) => wire::encode_pricing_request_with_deadline(
                    id,
                    "price",
                    &slice[next],
                    b.as_secs_f64() * 1e3,
                ),
                None => wire::encode_pricing_request(id, "price", &slice[next]),
            };
            client.send(&line).expect("send");
            sent_at.insert(id, Instant::now());
            next += 1;
        }
        let reply = client.recv().expect("response");
        let doc = wire::parse(&reply).expect("valid json");
        let id = doc.get("id").unwrap().as_f64().unwrap() as usize;
        let price = doc
            .get("price")
            .and_then(wire::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("error response: {reply}"));
        let sent = sent_at.remove(&(id as u64)).expect("known id");
        out.push((id, price, sent.elapsed().as_secs_f64() * 1e6));
    }
    out
}

/// Drives `book` over `conns` pipelined loopback connections (one client
/// thread each).  Returns wall seconds and per-request latencies after
/// asserting every reply bitwise against `want`.
fn tcp_pipelined(
    addr: std::net::SocketAddr,
    book: &[PricingRequest],
    want: &[f64],
    conns: usize,
    window: usize,
) -> (f64, Vec<f64>) {
    let chunk = book.len().div_ceil(conns);
    let t0 = Instant::now();
    let per_conn: Vec<Vec<(usize, f64, f64)>> = std::thread::scope(|scope| {
        book.chunks(chunk)
            .enumerate()
            .map(|(w, slice)| scope.spawn(move || drive_conn(addr, slice, w * chunk, window, None)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let mut lat = Vec::with_capacity(book.len());
    for (id, price, us) in per_conn.into_iter().flatten() {
        assert_eq!(price.to_bits(), want[id].to_bits(), "request {id}");
        lat.push(us);
    }
    (secs, lat)
}

/// Connection-scaling driver: a single client thread fans `per_conn`
/// requests over `conns` simultaneously open connections in two phases
/// (write everything, then read everything), so the client side costs one
/// thread no matter how many sockets the *server* must sustain.
fn fan_out_conns(
    addr: std::net::SocketAddr,
    book: &[PricingRequest],
    want: &[f64],
    conns: usize,
    per_conn: usize,
) -> (f64, Vec<f64>) {
    use std::io::{BufRead, BufReader, Write};
    let t0 = Instant::now();
    let mut streams: Vec<std::net::TcpStream> = (0..conns)
        .map(|i| std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}")))
        .collect();
    let mut sent_at: Vec<Instant> = Vec::with_capacity(conns * per_conn);
    for (c, stream) in streams.iter_mut().enumerate() {
        let mut lines = String::new();
        for j in 0..per_conn {
            let id = c * per_conn + j;
            let req = &book[id % book.len()];
            let _ = writeln!(lines, "{}", wire::encode_pricing_request(id as u64, "price", req));
        }
        stream.write_all(lines.as_bytes()).expect("write");
        sent_at.push(Instant::now());
    }
    let mut lat_us = Vec::with_capacity(conns * per_conn);
    for (c, stream) in streams.iter().enumerate() {
        let mut reader = BufReader::new(stream);
        for _ in 0..per_conn {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0, "conn {c} hung up early");
            let doc = wire::parse(line.trim()).expect("valid json");
            let id = doc.get("id").unwrap().as_f64().unwrap() as usize;
            let price = doc
                .get("price")
                .and_then(wire::JsonValue::as_f64)
                .unwrap_or_else(|| panic!("error response: {line}"));
            assert_eq!(price.to_bits(), want[id % want.len()].to_bits(), "request {id}");
            lat_us.push(sent_at[c].elapsed().as_secs_f64() * 1e6);
        }
    }
    (t0.elapsed().as_secs_f64(), lat_us)
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let book = duplicated_book(UNIQUE, BOOK, STEPS);
    let mut records: Vec<Record> = Vec::new();

    // Reference prices once; every scenario must reproduce them bitwise.
    let want = serial_per_request(&book);

    // --- Baseline ---
    let t0 = Instant::now();
    let got = serial_per_request(&book);
    let serial_secs = t0.elapsed().as_secs_f64();
    assert_eq!(got.len(), want.len());
    records.push(Record {
        name: "serial_per_request",
        batch: BOOK,
        threads: 1,
        secs: serial_secs,
        latencies_us: None,
    });

    // --- In-process service, closed-loop submitters ---
    let (inproc_secs, inproc_lat) = {
        let service = amopt_service::QuoteService::start(service_config(FrontEnd::Reactor))
            .expect("start service");
        let chunk = book.len().div_ceil(INPROC_THREADS);
        let t0 = Instant::now();
        let lat: Vec<Vec<(usize, f64, f64)>> = std::thread::scope(|scope| {
            book.chunks(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    let client = service.client();
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(slice.len());
                        for (i, req) in slice.iter().enumerate() {
                            let sent = Instant::now();
                            let price = client.price(req.clone()).expect("service accepts book");
                            let us = sent.elapsed().as_secs_f64() * 1e6;
                            out.push((w * chunk + i, price, us));
                        }
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        let mut lat_us = Vec::with_capacity(book.len());
        for (id, price, us) in lat.into_iter().flatten() {
            assert_eq!(price.to_bits(), want[id].to_bits(), "request {id}");
            lat_us.push(us);
        }
        let stats = service.stats();
        assert_eq!(stats.completed as usize, book.len());
        if stats.batches >= book.len() as u64 {
            eprintln!(
                "WARNING: closed-loop traffic did not coalesce at all ({} batches for {} \
                 requests) — every batch was a singleton",
                stats.batches,
                book.len()
            );
        }
        eprintln!(
            "in-process: {} batches (mean size {:.1}), memo hit rate {:.3}",
            stats.batches,
            stats.mean_batch_size(),
            stats.memo_hit_rate()
        );
        service.shutdown();
        (secs, percentiles(lat_us))
    };
    records.push(Record {
        name: "service_inproc",
        batch: BOOK,
        threads: INPROC_THREADS,
        secs: inproc_secs,
        latencies_us: Some(inproc_lat),
    });

    // --- TCP loopback, pipelined windows: reactor, then threaded ---
    let mut tcp_lat_by_front = Vec::new();
    for (name, front_end) in
        [("service_tcp", FrontEnd::Reactor), ("service_tcp_threaded", FrontEnd::Threaded)]
    {
        let server =
            QuoteServer::bind("127.0.0.1:0", service_config(front_end)).expect("bind loopback");
        let (secs, lat) = tcp_pipelined(server.local_addr(), &book, &want, TCP_CONNS, TCP_WINDOW);
        server.shutdown();
        let lat = percentiles(lat);
        tcp_lat_by_front.push(lat);
        records.push(Record {
            name,
            batch: BOOK,
            threads: TCP_CONNS,
            secs,
            latencies_us: Some(lat),
        });
    }
    let tcp_secs = records[2].secs;

    // --- Observability overhead: identical pipelined-TCP shape with the
    // flightdeck tracing (trace cards + event journal) disabled vs enabled.
    // Registry counters stay on in both runs — they are the stats surface —
    // so the pair isolates exactly the per-request tracing cost.  CI gates
    // the on/off delta at 3% via `bench_diff --pair`.
    let mut obs_pair = Vec::new();
    for (name, trace) in [("service_tcp_obs_off", false), ("service_tcp_obs_on", true)] {
        let server = QuoteServer::bind(
            "127.0.0.1:0",
            ServiceConfig { trace, ..service_config(FrontEnd::Reactor) },
        )
        .expect("bind loopback");
        let (secs, lat) = tcp_pipelined(server.local_addr(), &book, &want, TCP_CONNS, TCP_WINDOW);
        server.shutdown();
        let lat = percentiles(lat);
        obs_pair.push((secs, lat));
        records.push(Record {
            name,
            batch: BOOK,
            threads: TCP_CONNS,
            secs,
            latencies_us: Some(lat),
        });
    }
    // options/s ratio on/off = off_secs / on_secs (same request count).
    let obs_throughput_ratio = obs_pair[0].0 / obs_pair[1].0;
    let obs_p99_ratio = obs_pair[1].1.p99 / obs_pair[0].1.p99;

    // --- Connection scaling: phased fan-out over many open sockets ---
    let mut conns_held = Vec::new();
    for (name, front_end, conns) in [
        ("reactor_conns", FrontEnd::Reactor, REACTOR_CONNS),
        ("threaded_conns", FrontEnd::Threaded, THREADED_CONNS),
    ] {
        let server =
            QuoteServer::bind("127.0.0.1:0", service_config(front_end)).expect("bind loopback");
        let (secs, lat_us) =
            fan_out_conns(server.local_addr(), &book, &want, conns, CONN_SCALING_REQS_PER_CONN);
        if front_end == FrontEnd::Reactor {
            let stats = server.stats();
            assert!(
                stats.reactor.connections_accepted >= conns as u64,
                "reactor accepted {} of {conns} connections",
                stats.reactor.connections_accepted
            );
        }
        server.shutdown();
        conns_held.push(conns);
        records.push(Record {
            name,
            batch: conns * CONN_SCALING_REQS_PER_CONN,
            threads: conns,
            secs,
            latencies_us: Some(percentiles(lat_us)),
        });
    }

    // --- Deadline mix: duplicate-free flood, EDF class separation ---
    let mix_book = paper_book(MIX_BOOK, STEPS);
    let mix_want = {
        let cfg = EngineConfig::default();
        mix_book
            .iter()
            .map(|req| {
                let m = BopmModel::new(req.params, req.steps).expect("valid book");
                bopm::fast::price_american_call(&m, &cfg)
            })
            .collect::<Vec<f64>>()
    };
    let (tagged_lat, bulk_lat, mix_secs) = {
        let server = QuoteServer::bind(
            "127.0.0.1:0",
            ServiceConfig {
                max_batch: 64,
                max_wait: MIX_MAX_WAIT,
                ..service_config(FrontEnd::Reactor)
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let (urgent_book, bulk_book) = mix_book.split_at(MIX_URGENT);
        let chunk = bulk_book.len().div_ceil(MIX_BULK_CONNS);
        // Open-loop: every connection writes its whole share before
        // reading, so the EDF queue sees the full mixed backlog at once.
        let t0 = Instant::now();
        let (urgent, bulk) = std::thread::scope(|scope| {
            let urgent =
                scope.spawn(move || drive_conn(addr, urgent_book, 0, usize::MAX, Some(MIX_BUDGET)));
            let bulk: Vec<_> = bulk_book
                .chunks(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    scope.spawn(move || {
                        drive_conn(addr, slice, MIX_URGENT + w * chunk, usize::MAX, None)
                    })
                })
                .collect();
            (
                urgent.join().expect("no panics"),
                bulk.into_iter().flat_map(|h| h.join().expect("no panics")).collect::<Vec<_>>(),
            )
        });
        let secs = t0.elapsed().as_secs_f64();
        let stats = server.stats();
        eprintln!(
            "deadline mix: {} of {MIX_URGENT} tagged requests missed their 1 ms budget; \
             {} batches (mean size {:.1}, {} heap pops)",
            stats.deadline_misses,
            stats.batches,
            stats.mean_batch_size(),
            stats.heap_pops
        );
        server.shutdown();
        let collect = |rows: Vec<(usize, f64, f64)>| {
            rows.into_iter()
                .map(|(id, price, us)| {
                    assert_eq!(price.to_bits(), mix_want[id].to_bits(), "request {id}");
                    us
                })
                .collect::<Vec<f64>>()
        };
        (percentiles(collect(urgent)), percentiles(collect(bulk)), secs)
    };
    records.push(Record {
        name: "deadline_mix_tagged",
        batch: MIX_URGENT,
        threads: 1,
        secs: mix_secs,
        latencies_us: Some(tagged_lat),
    });
    records.push(Record {
        name: "deadline_mix_bulk",
        batch: MIX_BOOK - MIX_URGENT,
        threads: MIX_BULK_CONNS,
        secs: mix_secs,
        latencies_us: Some(bulk_lat),
    });

    // --- Report ---
    println!(
        "\nbenchmark group: service_throughput (dedup-heavy book: {BOOK} requests, {UNIQUE} \
         distinct, T = {STEPS})"
    );
    println!("| scenario | requests | threads/conns | secs | options/s | p50 us | p99 us |");
    println!("|---|---|---|---|---|---|---|");
    for r in &records {
        let (p50, p99) = r
            .latencies_us
            .map(|l| (format!("{:.0}", l.p50), format!("{:.0}", l.p99)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "| {} | {} | {} | {:.4} | {:.0} | {} | {} |",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.batch as f64 / r.secs,
            p50,
            p99
        );
    }
    let inproc_speedup = serial_secs / inproc_secs;
    let tcp_speedup = serial_secs / tcp_secs;
    let conn_scaling = conns_held[0] as f64 / conns_held[1] as f64;
    let reactor_p99_vs_threaded = tcp_lat_by_front[1].p99 / tcp_lat_by_front[0].p99;
    let deadline_p99_speedup = bulk_lat.p99 / tagged_lat.p99;
    println!("\ncoalesced in-process vs per-request serial baseline: {inproc_speedup:.2}x");
    println!("coalesced over TCP vs per-request serial baseline: {tcp_speedup:.2}x");
    println!(
        "reactor sustained {} connections vs {} threaded ({conn_scaling:.0}x); \
         threaded-vs-reactor p99 ratio on the pipelined book: {reactor_p99_vs_threaded:.2}",
        conns_held[0], conns_held[1]
    );
    println!(
        "EDF deadline mix: tagged p99 {:.0} us vs bulk p99 {:.0} us \
         ({deadline_p99_speedup:.2}x better)",
        tagged_lat.p99, bulk_lat.p99
    );
    println!(
        "observability overhead (tracing on vs off): throughput {:.3}x, p99 {:.3}x",
        obs_throughput_ratio, obs_p99_ratio
    );
    if obs_throughput_ratio < 0.97 || obs_p99_ratio > 1.03 {
        eprintln!(
            "WARNING: tracing overhead above the 3% budget (throughput {obs_throughput_ratio:.3}x, \
             p99 {obs_p99_ratio:.3}x) — noisy run or a real regression?"
        );
    }
    if inproc_speedup < 1.0 {
        eprintln!(
            "WARNING: in-process service below the serial per-request baseline \
             ({inproc_speedup:.2}x) — noisy run or a real regression?"
        );
    }
    if reactor_p99_vs_threaded < 1.0 / 1.5 {
        eprintln!(
            "WARNING: reactor p99 more than 1.5x the threaded front end's on the same book \
             (ratio {reactor_p99_vs_threaded:.2}) — noisy run or a real regression?"
        );
    }
    if deadline_p99_speedup < 2.0 {
        eprintln!(
            "WARNING: deadline-tagged p99 less than 2x better than bulk \
             ({deadline_p99_speedup:.2}x) — EDF separation regressed?"
        );
    }

    write_summary(
        &records,
        max_threads,
        &[
            ("speedup_inproc_vs_serial", inproc_speedup),
            ("speedup_tcp_vs_serial", tcp_speedup),
            ("reactor_sustained_connections", conns_held[0] as f64),
            ("threaded_sustained_connections", conns_held[1] as f64),
            ("connection_scaling_vs_threaded", conn_scaling),
            ("reactor_p99_vs_threaded", reactor_p99_vs_threaded),
            ("deadline_p99_speedup_vs_bulk", deadline_p99_speedup),
            ("obs_on_vs_off_throughput", obs_throughput_ratio),
            ("obs_on_vs_off_p99", obs_p99_ratio),
        ],
    );
}

fn write_summary(records: &[Record], max_threads: usize, headlines: &[(&str, f64)]) {
    let path =
        std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_throughput\",");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"book\": {BOOK},");
    let _ = writeln!(json, "  \"unique_contracts\": {UNIQUE},");
    let _ = writeln!(json, "  \"max_threads\": {max_threads},");
    for (key, value) in headlines {
        let _ = writeln!(json, "  \"{key}\": {value:.4},");
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"batch\": {}, \"threads\": {}, \"secs\": {:.6}, \
             \"options_per_sec\": {:.1}",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.batch as f64 / r.secs,
        );
        if let Some(l) = r.latencies_us {
            let _ = write!(
                json,
                ", \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}",
                l.p50, l.p90, l.p99, l.max
            );
        }
        json.push('}');
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
