//! Ablation benches for the design choices DESIGN.md calls out:
//! base-case cutoff (the paper found 8 optimal, §5.1) and the linear-advance
//! backend (FFT spectrum powering vs materialised taps).

use amopt_core::bopm::{fast, BopmModel};
use amopt_core::{EngineConfig, OptionParams};
use amopt_stencil::Backend;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let t = 1usize << 13;
    let model = BopmModel::new(OptionParams::paper_defaults(), t).unwrap();
    for cutoff in [2u64, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::new("base_cutoff", cutoff), &cutoff, |b, &cut| {
            let cfg = EngineConfig { base_cutoff: cut, ..EngineConfig::default() };
            b.iter(|| fast::price_american_call(&model, &cfg))
        });
    }
    for (name, backend) in [("fft", Backend::Fft), ("direct_taps", Backend::DirectTaps)] {
        g.bench_with_input(BenchmarkId::new("backend", name), &backend, |b, &bk| {
            let cfg = EngineConfig { backend: bk, ..EngineConfig::default() };
            b.iter(|| fast::price_american_call(&model, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
