//! `batch_throughput` — options/sec of the batch pricing subsystem.
//!
//! Prices deterministic books of paper-default-sized American BOPM calls
//! (`T = 252`, the paper's one-trading-year contract) at batch sizes
//! 1 / 64 / 4096, on one thread and on every available thread, against the
//! equivalent sequential loop over the facade.  A warm-memo scenario
//! (64 distinct contracts cycled to 4096 requests) measures the dedup/memo
//! path.
//!
//! Besides the human-readable table, the run writes a machine-readable
//! summary to `BENCH_batch.json` (path overridable via the
//! `BENCH_BATCH_OUT` environment variable) so CI can archive a throughput
//! datapoint per commit and future PRs can track regressions.
//!
//! ```sh
//! cargo bench -p amopt-bench --bench batch_throughput
//! ```

use amopt_bench::{
    duplicated_book, median_secs, paper_book, put_book, sequential_facade_loop,
    sequential_naive_put_loop,
};
use amopt_core::batch::BatchPricer;
use amopt_core::bopm::{self, BopmModel};
use amopt_core::{EngineConfig, ExerciseStyle, OptionParams, OptionType};
use criterion::black_box;
use std::fmt::Write as _;

const STEPS: usize = 252;
const REPS: usize = 3;
const MAX_BATCH: usize = 4096;
/// Lattice size for the single-contract fast-vs-naive put headline
/// (acceptance: a measured speedup at `T ≥ 2¹⁴` in the archived output).
const PUT_HEADLINE_STEPS: usize = 1 << 14;

struct Record {
    name: &'static str,
    batch: usize,
    threads: usize,
    secs: f64,
}

impl Record {
    fn options_per_sec(&self) -> f64 {
        self.batch as f64 / self.secs
    }
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut records: Vec<Record> = Vec::new();

    // Baseline: the pre-batch caller — a plain loop over the facade under
    // the default thread pool (at T = 252 the inner pricer is effectively
    // serial: every trapezoid sits below `sequential_below`).
    let book = paper_book(MAX_BATCH, STEPS);
    let seq_secs = median_secs(REPS, || {
        black_box(sequential_facade_loop(&book));
    });
    records.push(Record { name: "seq_facade_loop", batch: MAX_BATCH, threads: 1, secs: seq_secs });

    // Cold batched pricing (memo disabled): dispatch + parallel fan-out.
    for &n in &[1usize, 64, MAX_BATCH] {
        let book = paper_book(n, STEPS);
        let mut thread_counts = vec![1usize];
        if max_threads > 1 {
            thread_counts.push(max_threads);
        }
        for threads in thread_counts {
            let secs = amopt_parallel::run_with_threads(threads, || {
                median_secs(REPS, || {
                    let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), 0);
                    black_box(pricer.price_batch(&book));
                })
            });
            records.push(Record { name: "batch_cold", batch: n, threads, secs });
        }
    }

    // Dedup path: a duplicate-heavy book (64 distinct contracts cycled to
    // 4096 requests — think one strike ladder quoted across many accounts).
    // The sequential loop prices all 4096 blindly; the batch layer prices 64
    // and scatters.  First the baseline over the *same* book:
    let dup = duplicated_book(64, MAX_BATCH, STEPS);
    let seq_dup_secs = median_secs(REPS, || {
        black_box(sequential_facade_loop(&dup));
    });
    records.push(Record {
        name: "seq_loop_dup_book",
        batch: MAX_BATCH,
        threads: 1,
        secs: seq_dup_secs,
    });
    let dedup_secs = median_secs(REPS, || {
        // Fresh pricer each rep: dedup only, no memo carry-over between reps.
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), 0);
        black_box(pricer.price_batch(&dup));
    });
    records.push(Record {
        name: "batch_dedup_cold",
        batch: MAX_BATCH,
        threads: max_threads,
        secs: dedup_secs,
    });

    // Put-heavy mix: the workload that was Θ(T²)-bound before the left-cone
    // engine (both American-put routes fell back to the serial loop nest).
    // Baseline: the naive loop per contract, exactly what the old batch
    // route computed.
    let puts = put_book(MAX_BATCH, STEPS);
    let seq_put_secs = median_secs(REPS, || {
        black_box(sequential_naive_put_loop(&puts));
    });
    records.push(Record {
        name: "seq_naive_put_loop",
        batch: MAX_BATCH,
        threads: 1,
        secs: seq_put_secs,
    });
    let put_secs = median_secs(REPS, || {
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), 0);
        black_box(pricer.price_batch(&puts));
    });
    records.push(Record {
        name: "batch_put_cold",
        batch: MAX_BATCH,
        threads: max_threads,
        secs: put_secs,
    });

    // Single-contract headline at T = 2¹⁴: fast left-cone put vs the naive
    // nest, where the complexity-class gap (T log² T vs T²) is decisive.
    let headline = OptionParams::paper_defaults();
    let naive_put_t14_secs = median_secs(REPS, || {
        let m = BopmModel::new(headline, PUT_HEADLINE_STEPS).expect("valid lattice");
        black_box(bopm::naive::price(
            &m,
            OptionType::Put,
            ExerciseStyle::American,
            bopm::naive::ExecMode::Serial,
        ));
    });
    records.push(Record {
        name: "put_naive_t16384",
        batch: 1,
        threads: 1,
        secs: naive_put_t14_secs,
    });
    let fast_put_t14_secs = median_secs(REPS, || {
        let m = BopmModel::new(headline, PUT_HEADLINE_STEPS).expect("valid lattice");
        black_box(bopm::fast::price_american_put(&m, &EngineConfig::default()));
    });
    records.push(Record { name: "put_fast_t16384", batch: 1, threads: 1, secs: fast_put_t14_secs });

    // Warm memo path: the same unchanged book re-quoted — pure cache service.
    let pricer = BatchPricer::new(EngineConfig::default());
    black_box(pricer.price_batch(&dup)); // warm the memo
    let warm_secs = median_secs(REPS, || {
        black_box(pricer.price_batch(&dup));
    });
    records.push(Record {
        name: "batch_memo_warm",
        batch: MAX_BATCH,
        threads: max_threads,
        secs: warm_secs,
    });

    println!("\nbenchmark group: batch_throughput (T = {STEPS}, reps = {REPS})");
    println!("| scenario | batch | threads | secs | options/s |");
    println!("|---|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {} | {:.4} | {:.0} |",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.options_per_sec()
        );
    }
    let batched = records
        .iter()
        .find(|r| r.name == "batch_cold" && r.batch == MAX_BATCH && r.threads == max_threads)
        .expect("cold batch record at max size");
    let speedup = seq_secs / batched.secs;
    let dedup_speedup = seq_dup_secs / dedup_secs;
    let put_speedup = seq_put_secs / put_secs;
    let put_t14_speedup = naive_put_t14_secs / fast_put_t14_secs;
    println!(
        "\nbatched ({} threads) vs sequential facade loop at {} distinct requests: {speedup:.2}x",
        max_threads, MAX_BATCH
    );
    println!(
        "batched vs sequential loop at {} requests (64 distinct, dedup): {dedup_speedup:.2}x",
        MAX_BATCH
    );
    println!(
        "put-heavy batch vs naive Θ(T²) put loop at {} requests: {put_speedup:.2}x",
        MAX_BATCH
    );
    println!("fast left-cone put vs naive put at T = {PUT_HEADLINE_STEPS}: {put_t14_speedup:.2}x");
    // Regressions are tracked from the archived JSON datapoints, not by
    // failing the run: timing on shared CI runners is too noisy for hard
    // assertions.  Warn loudly instead.
    if speedup <= 1.0 && max_threads > 1 {
        eprintln!(
            "WARNING: batched pricing did not beat the sequential loop \
             ({speedup:.2}x on {max_threads} threads) — noisy run or a real regression?"
        );
    }
    if dedup_speedup <= 1.0 {
        eprintln!(
            "WARNING: deduplicated batch did not beat the blind sequential loop \
             ({dedup_speedup:.2}x) — noisy run or a real regression?"
        );
    }
    if put_t14_speedup <= 2.0 {
        eprintln!(
            "WARNING: fast put at T = {PUT_HEADLINE_STEPS} only {put_t14_speedup:.2}x over the \
             Θ(T²) nest — the complexity-class gap should dominate at this size"
        );
    }

    write_summary(&records, max_threads, speedup, dedup_speedup, put_speedup, put_t14_speedup);
}

fn write_summary(
    records: &[Record],
    max_threads: usize,
    speedup: f64,
    dedup_speedup: f64,
    put_speedup: f64,
    put_t14_speedup: f64,
) {
    let path = std::env::var("BENCH_BATCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".to_string());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"batch_throughput\",");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"max_threads\": {max_threads},");
    let _ = writeln!(json, "  \"speedup_batched_vs_sequential\": {speedup:.4},");
    let _ = writeln!(json, "  \"speedup_dedup_vs_sequential\": {dedup_speedup:.4},");
    let _ = writeln!(json, "  \"speedup_put_batch_vs_naive_loop\": {put_speedup:.4},");
    let _ = writeln!(json, "  \"speedup_put_fast_vs_naive_t16384\": {put_t14_speedup:.4},");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"batch\": {}, \"threads\": {}, \"secs\": {:.6}, \
             \"options_per_sec\": {:.1}}}",
            r.name,
            r.batch,
            r.threads,
            r.secs,
            r.options_per_sec()
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
