//! Fast-put vs naive-put scaling — the put-side companion to Figure 5:
//! the left-cone FFT trapezoid engine against the `Θ(T²)` loop nest, for
//! both lattice families.  Criterion sizes are kept moderate so
//! `cargo bench` terminates quickly; `batch_throughput` records the
//! `T = 2¹⁴` headline speedup in its JSON summary.

use amopt_core::bopm::{self, BopmModel};
use amopt_core::topm::{self, TopmModel};
use amopt_core::{EngineConfig, ExerciseStyle, OptionParams, OptionType};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let params = OptionParams::paper_defaults();
    let cfg = EngineConfig::default();
    let mut g = c.benchmark_group("fig5_puts");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for t in [1usize << 10, 1 << 12, 1 << 13] {
        g.bench_with_input(BenchmarkId::new("fft-bopm-put", t), &t, |b, &t| {
            b.iter(|| {
                let m = BopmModel::new(params, t).expect("model");
                bopm::fast::price_american_put(&m, &cfg)
            })
        });
        g.bench_with_input(BenchmarkId::new("ql-bopm-put", t), &t, |b, &t| {
            b.iter(|| {
                let m = BopmModel::new(params, t).expect("model");
                bopm::naive::price(
                    &m,
                    OptionType::Put,
                    ExerciseStyle::American,
                    bopm::naive::ExecMode::Parallel,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("fft-topm-put", t), &t, |b, &t| {
            b.iter(|| {
                let m = TopmModel::new(params, t).expect("model");
                topm::fast::price_american_put(&m, &cfg)
            })
        });
        g.bench_with_input(BenchmarkId::new("vanilla-topm-put", t), &t, |b, &t| {
            b.iter(|| {
                let m = TopmModel::new(params, t).expect("model");
                topm::naive::price(
                    &m,
                    OptionType::Put,
                    ExerciseStyle::American,
                    topm::naive::ExecMode::Parallel,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
