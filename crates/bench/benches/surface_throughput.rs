//! `surface_throughput` — quotes/sec of batch-native implied-vol surface
//! inversion vs the serial per-quote bisection loop.
//!
//! Inverts a duplicate-free K×T grid of American BOPM call quotes
//! (`T = 252` lattice steps) three ways:
//!
//! * `serial_quote_loop` — one `implied_vol::american_call_bopm` bisection
//!   per quote, the pre-surface caller's code;
//! * `surface_cold` — `batch::surface::implied_vol_surface` through a fresh
//!   pricer: lockstep rounds, parallel probes, Illinois root iteration;
//! * `surface_requote` — the same surface re-quoted through the now-warm
//!   pricer: every probe is a memo hit (the paper's "market ticked, nothing
//!   moved" scenario);
//!
//! plus a duplicate-heavy variant (`surface_dup_quotes`: each contract
//! quoted twice, think bid/ask) where cross-quote dedup pays.
//!
//! Besides the human-readable table, the run writes a machine-readable
//! summary to `BENCH_surface.json` (path overridable via the
//! `BENCH_SURFACE_OUT` environment variable) so CI can archive a datapoint
//! per commit; the schema is documented in `crates/bench/README.md`.
//!
//! ```sh
//! cargo bench -p amopt-bench --bench surface_throughput
//! ```

use amopt_bench::{median_secs, serial_surface_loop, surface_grid};
use amopt_core::batch::surface::implied_vol_surface;
use amopt_core::batch::BatchPricer;
use amopt_core::EngineConfig;
use criterion::black_box;
use std::fmt::Write as _;

const STEPS: usize = 252;
const REPS: usize = 3;
const STRIKES: usize = 8;
const EXPIRIES: usize = 4;
/// Roomy memo: a K×T surface's full probe history must stay resident for
/// the re-quote scenario to be pure cache service.
const MEMO_CAPACITY: usize = 8192;

struct Record {
    name: &'static str,
    quotes: usize,
    threads: usize,
    secs: f64,
}

impl Record {
    fn quotes_per_sec(&self) -> f64 {
        self.quotes as f64 / self.secs
    }
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let quotes = surface_grid(STRIKES, EXPIRIES, STEPS);
    let n = quotes.len();
    let mut records: Vec<Record> = Vec::new();

    // Correctness gate before timing anything: both paths must invert every
    // quote and agree — a fast wrong surface would make the speedup numbers
    // meaningless.  The same pass counts lattice pricings (memo misses) per
    // quote, the number the Newton-with-vega driver exists to push down
    // (serial bisection ~50, Illinois ~14).
    let serial_vols = serial_surface_loop(&quotes);
    let probes_per_quote = {
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), MEMO_CAPACITY);
        let batch_vols = implied_vol_surface(&pricer, &quotes);
        for (i, (b, s)) in batch_vols.iter().zip(&serial_vols).enumerate() {
            let (b, s) = (
                b.as_ref().expect("surface inverts every grid quote"),
                s.as_ref().expect("serial inverts every grid quote"),
            );
            assert!((b - s).abs() < 1e-6, "quote {i}: surface {b} vs serial {s}");
        }
        pricer.memo_stats().misses as f64 / n as f64
    };

    // Baseline: the pre-surface caller — a serial per-quote bisection loop.
    let serial_secs = median_secs(REPS, || {
        black_box(serial_surface_loop(&quotes));
    });
    records.push(Record { name: "serial_quote_loop", quotes: n, threads: 1, secs: serial_secs });

    // Batch-native cold inversion: fresh pricer per rep, so the memo never
    // carries over between reps and the number measures inversion itself.
    let cold_secs = median_secs(REPS, || {
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), MEMO_CAPACITY);
        black_box(implied_vol_surface(&pricer, &quotes));
    });
    records.push(Record { name: "surface_cold", quotes: n, threads: max_threads, secs: cold_secs });

    // Warm re-quote: the same surface through the now-warm pricer — every
    // probe of the deterministic driver repeats bitwise, so this is pure
    // memo service.
    let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), MEMO_CAPACITY);
    black_box(implied_vol_surface(&pricer, &quotes));
    let stats_after_cold = pricer.memo_stats();
    let warm_secs = median_secs(REPS, || {
        black_box(implied_vol_surface(&pricer, &quotes));
    });
    records.push(Record {
        name: "surface_requote",
        quotes: n,
        threads: max_threads,
        secs: warm_secs,
    });
    // Every *successful* probe must be served from the memo on re-quote: no
    // new entries appear.  (Raw misses still tick up a little — the
    // bracketing walk's unstable-low-vol probes error out and errors are
    // never cached, so each pass re-discovers them cheaply at
    // model-construction time.)
    assert_eq!(
        pricer.memo_stats().entries,
        stats_after_cold.entries,
        "re-quoting an unchanged surface must not price anything fresh"
    );

    // Duplicate-heavy surface: every contract quoted twice (bid/ask).  The
    // serial loop inverts all 2n blindly; the driver's duplicate quotes
    // share their entire probe sequence.
    let dup: Vec<_> = quotes.iter().flat_map(|q| [q.clone(), q.clone()]).collect();
    let serial_dup_secs = median_secs(REPS, || {
        black_box(serial_surface_loop(&dup));
    });
    records.push(Record {
        name: "serial_loop_dup_quotes",
        quotes: dup.len(),
        threads: 1,
        secs: serial_dup_secs,
    });
    let dup_secs = median_secs(REPS, || {
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), MEMO_CAPACITY);
        black_box(implied_vol_surface(&pricer, &dup));
    });
    records.push(Record {
        name: "surface_dup_quotes",
        quotes: dup.len(),
        threads: max_threads,
        secs: dup_secs,
    });

    println!(
        "\nbenchmark group: surface_throughput ({STRIKES}x{EXPIRIES} grid, T = {STEPS}, \
         reps = {REPS})"
    );
    println!("| scenario | quotes | threads | secs | quotes/s |");
    println!("|---|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {} | {:.4} | {:.1} |",
            r.name,
            r.quotes,
            r.threads,
            r.secs,
            r.quotes_per_sec()
        );
    }
    let speedup = serial_secs / cold_secs;
    let warm_speedup = serial_secs / warm_secs;
    let dup_speedup = serial_dup_secs / dup_secs;
    println!(
        "\nbatch-native surface vs serial per-quote loop ({n} duplicate-free quotes): \
         {speedup:.2}x"
    );
    println!("warm re-quote vs serial loop: {warm_speedup:.2}x");
    println!("duplicate quotes (bid/ask x{}): {dup_speedup:.2}x", dup.len());
    println!("lattice pricings per quote (cold, incl. vega bumps): {probes_per_quote:.1}");
    // Regressions are tracked from the archived JSON datapoints, not by
    // failing the run: timing on shared CI runners is too noisy for hard
    // assertions.  Warn loudly instead.
    if speedup < 1.5 {
        eprintln!(
            "WARNING: batch-native surface inversion below the 1.5x bar against the serial \
             loop ({speedup:.2}x) — noisy run or a real regression?"
        );
    }
    if warm_secs > cold_secs {
        eprintln!(
            "WARNING: warm re-quote slower than cold inversion \
             ({warm_secs:.4}s vs {cold_secs:.4}s) — memo regression?"
        );
    }

    write_summary(&records, max_threads, speedup, warm_speedup, dup_speedup, probes_per_quote);
}

fn write_summary(
    records: &[Record],
    max_threads: usize,
    speedup: f64,
    warm_speedup: f64,
    dup_speedup: f64,
    probes_per_quote: f64,
) {
    let path =
        std::env::var("BENCH_SURFACE_OUT").unwrap_or_else(|_| "BENCH_surface.json".to_string());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"surface_throughput\",");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"grid\": [{STRIKES}, {EXPIRIES}],");
    let _ = writeln!(json, "  \"max_threads\": {max_threads},");
    let _ = writeln!(json, "  \"speedup_surface_vs_serial\": {speedup:.4},");
    let _ = writeln!(json, "  \"speedup_requote_vs_serial\": {warm_speedup:.4},");
    let _ = writeln!(json, "  \"speedup_dup_quotes_vs_serial\": {dup_speedup:.4},");
    let _ = writeln!(json, "  \"probes_per_quote_cold\": {probes_per_quote:.2},");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"quotes\": {}, \"threads\": {}, \"secs\": {:.6}, \
             \"quotes_per_sec\": {:.1}}}",
            r.name,
            r.quotes,
            r.threads,
            r.secs,
            r.quotes_per_sec()
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
