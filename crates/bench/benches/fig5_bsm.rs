//! Criterion bench behind Figure 5(c): BSM American put.

use amopt_bench::{run_pricer, Impl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_bsm");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for t in [1usize << 10, 1 << 12] {
        for which in [Impl::FftBsm, Impl::VanillaBsm] {
            g.bench_with_input(BenchmarkId::new(which.legend(), t), &t, |b, &t| {
                b.iter(|| run_pricer(which, t))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
