//! Criterion bench behind Table 5: thread-count scaling at fixed T.

use amopt_bench::{run_pricer, Impl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let t = 1usize << 13;
    let max_p = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    for p in [1usize, 2, 4].into_iter().filter(|&p| p <= 2 * max_p) {
        for which in [Impl::FftBopm, Impl::QlBopm] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_p{p}", which.legend()), t),
                &t,
                |b, &t| b.iter(|| amopt_parallel::run_with_threads(p, || run_pricer(which, t))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
