//! Shared measurement helpers for the benchmark harness that regenerates
//! the paper's tables and figures (see `src/bin/paper_figures.rs`).

use amopt_core::bopm::{self, BopmModel};
use amopt_core::bsm::{self, BsmModel};
use amopt_core::topm::{self, TopmModel};
use amopt_core::{EngineConfig, ExerciseStyle, OptionParams, OptionType};
use std::time::Instant;

/// Implementations compared in Figure 5 / Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impl {
    /// Our FFT trapezoid pricer.
    FftBopm,
    /// Naive parallel loop nest (Par-bin-ops' QuantLib-equivalent).
    QlBopm,
    /// Cache-aware tiled loops (Zubair-style).
    ZbBopm,
    /// FFT trinomial pricer.
    FftTopm,
    /// Parallel trinomial loop nest.
    VanillaTopm,
    /// FFT BSM pricer.
    FftBsm,
    /// Parallel BSM loop nest.
    VanillaBsm,
}

impl Impl {
    /// Legend string matching the paper's Table 4.
    pub fn legend(self) -> &'static str {
        match self {
            Impl::FftBopm => "fft-bopm",
            Impl::QlBopm => "ql-bopm",
            Impl::ZbBopm => "zb-bopm",
            Impl::FftTopm => "fft-topm",
            Impl::VanillaTopm => "vanilla-topm",
            Impl::FftBsm => "fft-bsm",
            Impl::VanillaBsm => "vanilla-bsm",
        }
    }

    /// Whether the implementation costs `Θ(T²)` work (limits feasible `T`).
    pub fn is_quadratic(self) -> bool {
        matches!(self, Impl::QlBopm | Impl::ZbBopm | Impl::VanillaTopm | Impl::VanillaBsm)
    }
}

/// Prices one instance with `steps` time steps; returns the price.
pub fn run_pricer(which: Impl, steps: usize) -> f64 {
    let params = OptionParams::paper_defaults();
    let cfg = EngineConfig::default();
    match which {
        Impl::FftBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::fast::price_american_call(&m, &cfg)
        }
        Impl::QlBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::naive::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                bopm::naive::ExecMode::Parallel,
            )
        }
        Impl::ZbBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::tiled::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                bopm::tiled::TileConfig::default(),
            )
        }
        Impl::FftTopm => {
            let m = TopmModel::new(params, steps).expect("model");
            topm::fast::price_american_call(&m, &cfg)
        }
        Impl::VanillaTopm => {
            let m = TopmModel::new(params, steps).expect("model");
            topm::naive::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                topm::naive::ExecMode::Parallel,
            )
        }
        Impl::FftBsm => {
            let p = OptionParams { dividend_yield: 0.0, ..params };
            let m = BsmModel::new(p, steps).expect("model");
            bsm::fast::price_american_put(&m, &cfg)
        }
        Impl::VanillaBsm => {
            let p = OptionParams { dividend_yield: 0.0, ..params };
            let m = BsmModel::new(p, steps).expect("model");
            bsm::naive::price_american_put(&m, bsm::naive::ExecMode::Parallel)
        }
    }
}

/// Median-of-`reps` wall-clock time in seconds, plus the computed price.
pub fn time_pricer(which: Impl, steps: usize, reps: usize) -> (f64, f64) {
    let mut times = Vec::with_capacity(reps);
    let mut price = 0.0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        price = run_pricer(which, steps);
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], price)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_impls_price_the_same_contract() {
        // BOPM family must agree with each other; same for TOPM/BSM pairs.
        let t = 256;
        let a = run_pricer(Impl::FftBopm, t);
        let b = run_pricer(Impl::QlBopm, t);
        let c = run_pricer(Impl::ZbBopm, t);
        assert!((a - b).abs() < 1e-9 * b && (c - b).abs() < 1e-9 * b);
        let d = run_pricer(Impl::FftTopm, t);
        let e = run_pricer(Impl::VanillaTopm, t);
        assert!((d - e).abs() < 1e-9 * e);
        let f = run_pricer(Impl::FftBsm, t);
        let g = run_pricer(Impl::VanillaBsm, t);
        assert!((f - g).abs() < 1e-9 * g.max(1.0));
    }

    #[test]
    fn timing_returns_positive_duration() {
        let (secs, price) = time_pricer(Impl::FftBopm, 128, 3);
        assert!(secs > 0.0 && price > 0.0);
    }
}
