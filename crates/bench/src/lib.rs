//! Shared measurement helpers for the benchmark harness that regenerates
//! the paper's tables and figures (see `src/bin/paper_figures.rs`).

#![forbid(unsafe_code)]

use amopt_core::batch::surface::VolQuote;
use amopt_core::batch::{BatchPricer, ModelKind, PricingRequest, Style};
use amopt_core::bopm::{self, BopmModel};
use amopt_core::bsm::{self, BsmModel};
use amopt_core::topm::{self, TopmModel};
use amopt_core::{implied_vol, EngineConfig, ExerciseStyle, OptionParams, OptionType, Result};
use std::time::Instant;

/// Implementations compared in Figure 5 / Table 5 (put-cone engines
/// included, so the Fig. 5-style sweeps cover both cones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impl {
    /// Our FFT trapezoid pricer.
    FftBopm,
    /// The left-cone FFT pricer on the American **put** (same contract,
    /// mirrored geometry).
    FftBopmPut,
    /// Naive parallel loop nest (Par-bin-ops' QuantLib-equivalent).
    QlBopm,
    /// Cache-aware tiled loops (Zubair-style).
    ZbBopm,
    /// FFT trinomial pricer.
    FftTopm,
    /// The left-cone FFT pricer on the trinomial American **put**.
    FftTopmPut,
    /// Parallel trinomial loop nest.
    VanillaTopm,
    /// FFT BSM pricer (an American put by construction).
    FftBsm,
    /// Parallel BSM loop nest.
    VanillaBsm,
}

impl Impl {
    /// Legend string matching the paper's Table 4 (`-put` suffixed for the
    /// left-cone engines, which the paper does not cover).
    pub fn legend(self) -> &'static str {
        match self {
            Impl::FftBopm => "fft-bopm",
            Impl::FftBopmPut => "fft-bopm-put",
            Impl::QlBopm => "ql-bopm",
            Impl::ZbBopm => "zb-bopm",
            Impl::FftTopm => "fft-topm",
            Impl::FftTopmPut => "fft-topm-put",
            Impl::VanillaTopm => "vanilla-topm",
            Impl::FftBsm => "fft-bsm",
            Impl::VanillaBsm => "vanilla-bsm",
        }
    }

    /// Whether the implementation costs `Θ(T²)` work (limits feasible `T`).
    pub fn is_quadratic(self) -> bool {
        matches!(self, Impl::QlBopm | Impl::ZbBopm | Impl::VanillaTopm | Impl::VanillaBsm)
    }
}

/// Prices one instance with `steps` time steps; returns the price.
pub fn run_pricer(which: Impl, steps: usize) -> f64 {
    let params = OptionParams::paper_defaults();
    let cfg = EngineConfig::default();
    match which {
        Impl::FftBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::fast::price_american_call(&m, &cfg)
        }
        Impl::FftBopmPut => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::fast::price_american_put(&m, &cfg)
        }
        Impl::QlBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::naive::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                bopm::naive::ExecMode::Parallel,
            )
        }
        Impl::ZbBopm => {
            let m = BopmModel::new(params, steps).expect("model");
            bopm::tiled::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                bopm::tiled::TileConfig::default(),
            )
        }
        Impl::FftTopm => {
            let m = TopmModel::new(params, steps).expect("model");
            topm::fast::price_american_call(&m, &cfg)
        }
        Impl::FftTopmPut => {
            let m = TopmModel::new(params, steps).expect("model");
            topm::fast::price_american_put(&m, &cfg)
        }
        Impl::VanillaTopm => {
            let m = TopmModel::new(params, steps).expect("model");
            topm::naive::price(
                &m,
                OptionType::Call,
                ExerciseStyle::American,
                topm::naive::ExecMode::Parallel,
            )
        }
        Impl::FftBsm => {
            let p = OptionParams { dividend_yield: 0.0, ..params };
            let m = BsmModel::new(p, steps).expect("model");
            bsm::fast::price_american_put(&m, &cfg)
        }
        Impl::VanillaBsm => {
            let p = OptionParams { dividend_yield: 0.0, ..params };
            let m = BsmModel::new(p, steps).expect("model");
            bsm::naive::price_american_put(&m, bsm::naive::ExecMode::Parallel)
        }
    }
}

/// Median-of-`reps` wall-clock time in seconds, plus the computed price.
pub fn time_pricer(which: Impl, steps: usize, reps: usize) -> (f64, f64) {
    let mut times = Vec::with_capacity(reps);
    let mut price = 0.0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        price = run_pricer(which, steps);
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], price)
}

/// Median-of-`reps` wall-clock seconds of `f` (used by the batch benches).
pub fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// A deterministic synthetic book of `n` *distinct* paper-default-sized
/// American BOPM calls: a dense strike ladder crossed with a maturity grid
/// around [`OptionParams::paper_defaults`].  Strikes are spaced `100/n`
/// apart, far beyond the batch layer's `1e-9` key quantisation, so no two
/// requests deduplicate — throughput numbers measure pricing, not caching.
pub fn paper_book(n: usize, steps: usize) -> Vec<PricingRequest> {
    let base = OptionParams::paper_defaults();
    (0..n)
        .map(|i| {
            let strike = 80.0 + 100.0 * i as f64 / n.max(1) as f64;
            let expiry = 0.25 + 0.25 * ((i % 8) as f64);
            let params = OptionParams { strike, expiry, ..base };
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, steps)
        })
        .collect()
}

/// The same book shape as [`paper_book`] but with only `unique` distinct
/// contracts cycled to length `n` — exercises the dedup/memo path.
pub fn duplicated_book(unique: usize, n: usize, steps: usize) -> Vec<PricingRequest> {
    let distinct = paper_book(unique, steps);
    (0..n).map(|i| distinct[i % unique.max(1)].clone()).collect()
}

/// A deterministic put-heavy book: `n` distinct American **puts**
/// alternating between the binomial and trinomial lattices over the same
/// strike ladder × maturity grid as [`paper_book`].  This is the workload
/// that was `Θ(T²)`-bound before the left-cone engine: both put routes used
/// to fall back to the serial loop nest.
pub fn put_book(n: usize, steps: usize) -> Vec<PricingRequest> {
    let base = OptionParams::paper_defaults();
    (0..n)
        .map(|i| {
            let strike = 80.0 + 100.0 * i as f64 / n.max(1) as f64;
            let expiry = 0.25 + 0.25 * ((i % 8) as f64);
            let params = OptionParams { strike, expiry, ..base };
            let model = if i % 2 == 0 { ModelKind::Bopm } else { ModelKind::Topm };
            PricingRequest::american(model, OptionType::Put, params, steps)
        })
        .collect()
}

/// The pre-left-cone put baseline: one `Θ(T²)` serial loop nest per
/// contract, scratch-reused — exactly what `BatchPricer` routed American
/// puts to before the fast engines covered them.
///
/// # Panics
///
/// Panics on any request that is not an American BOPM/TOPM put.
pub fn sequential_naive_put_loop(book: &[PricingRequest]) -> Vec<f64> {
    let mut scratch = Vec::new();
    book.iter()
        .map(|req| {
            assert!(
                req.option_type == OptionType::Put && req.style == Style::American,
                "sequential_naive_put_loop only supports American puts, got {req:?}"
            );
            match req.model {
                ModelKind::Bopm => bopm::naive::price_with_scratch(
                    &BopmModel::new(req.params, req.steps).expect("valid book"),
                    OptionType::Put,
                    ExerciseStyle::American,
                    &mut scratch,
                ),
                ModelKind::Topm => topm::naive::price_with_scratch(
                    &TopmModel::new(req.params, req.steps).expect("valid book"),
                    OptionType::Put,
                    ExerciseStyle::American,
                    &mut scratch,
                ),
                ModelKind::Bsm => panic!("no naive-put baseline for the BSM grid in this loop"),
            }
        })
        .collect()
}

/// The sequential baseline the batch subsystem is judged against: a plain
/// loop over the facade, one model + one fast-pricer call per request, no
/// parallelism, no dedup, no memo.  Supports the [`paper_book`] request
/// shape (American BOPM calls) — exactly what a pre-batch caller wrote.
///
/// # Panics
///
/// Panics on any other request shape: a baseline that silently priced the
/// wrong contract would corrupt every reported speedup.
pub fn sequential_facade_loop(book: &[PricingRequest]) -> Vec<f64> {
    let cfg = EngineConfig::default();
    book.iter()
        .map(|req| {
            assert!(
                req.model == ModelKind::Bopm
                    && req.option_type == OptionType::Call
                    && req.style == Style::American,
                "sequential_facade_loop only supports the paper_book shape \
                 (American BOPM calls), got {req:?}"
            );
            let m = BopmModel::new(req.params, req.steps).expect("valid book");
            bopm::fast::price_american_call(&m, &cfg)
        })
        .collect()
}

/// Seconds to price `book` through a fresh memo-less [`BatchPricer`]
/// (median of `reps`): pure dispatch + parallel pricing, no cache effects.
pub fn time_batch_cold(book: &[PricingRequest], reps: usize) -> f64 {
    let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), 0);
    median_secs(reps, || {
        let out = pricer.price_batch(book);
        assert!(out.iter().all(std::result::Result::is_ok));
    })
}

/// A deterministic, duplicate-free K-strike × T-maturity grid of American
/// BOPM call quotes, each market price generated by pricing the contract
/// under a smooth volatility smile (so every quote is exactly attainable
/// and every inversion converges).
///
/// Strikes are spaced 5 apart and maturities 0.25y apart — far beyond the
/// batch layer's key quantisation — so no two quotes (and no two quotes'
/// probe sequences) deduplicate: surface throughput numbers measure
/// inversion, not caching.
pub fn surface_grid(strikes: usize, expiries: usize, steps: usize) -> Vec<VolQuote> {
    let base = OptionParams::paper_defaults();
    let cfg = EngineConfig::default();
    let mut quotes = Vec::with_capacity(strikes * expiries);
    for i in 0..strikes {
        for j in 0..expiries {
            let strike = 105.0 + 5.0 * i as f64;
            let expiry = 0.5 + 0.25 * j as f64;
            let smile = 0.16 + 0.06 * (strike / base.spot).ln().abs() + 0.015 * j as f64;
            let params = OptionParams { strike, expiry, ..base };
            let priced = OptionParams { volatility: smile, ..params };
            let market = bopm::fast::price_american_call(
                &BopmModel::new(priced, steps).expect("grid params are valid"),
                &cfg,
            );
            quotes.push(VolQuote::new(params, steps, market));
        }
    }
    quotes
}

/// The serial baseline the surface driver is judged against: one
/// [`implied_vol::american_call_bopm`] bisection per quote, in a plain loop
/// — exactly what a pre-surface caller wrote.
pub fn serial_surface_loop(quotes: &[VolQuote]) -> Vec<Result<f64>> {
    let cfg = EngineConfig::default();
    quotes
        .iter()
        .map(|q| implied_vol::american_call_bopm(&q.params, q.steps, q.market_price, &cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_impls_price_the_same_contract() {
        // BOPM family must agree with each other; same for TOPM/BSM pairs.
        let t = 256;
        let a = run_pricer(Impl::FftBopm, t);
        let b = run_pricer(Impl::QlBopm, t);
        let c = run_pricer(Impl::ZbBopm, t);
        assert!((a - b).abs() < 1e-9 * b && (c - b).abs() < 1e-9 * b);
        let d = run_pricer(Impl::FftTopm, t);
        let e = run_pricer(Impl::VanillaTopm, t);
        assert!((d - e).abs() < 1e-9 * e);
        let f = run_pricer(Impl::FftBsm, t);
        let g = run_pricer(Impl::VanillaBsm, t);
        assert!((f - g).abs() < 1e-9 * g.max(1.0));
    }

    #[test]
    fn put_impls_match_their_naive_nests() {
        let t = 256;
        let params = OptionParams::paper_defaults();
        let want_bopm = bopm::naive::price(
            &BopmModel::new(params, t).unwrap(),
            OptionType::Put,
            ExerciseStyle::American,
            bopm::naive::ExecMode::Serial,
        );
        let got = run_pricer(Impl::FftBopmPut, t);
        assert!((got - want_bopm).abs() < 1e-9 * want_bopm, "{got} vs {want_bopm}");
        let want_topm = topm::naive::price(
            &TopmModel::new(params, t).unwrap(),
            OptionType::Put,
            ExerciseStyle::American,
            topm::naive::ExecMode::Serial,
        );
        let got = run_pricer(Impl::FftTopmPut, t);
        assert!((got - want_topm).abs() < 1e-9 * want_topm, "{got} vs {want_topm}");
    }

    #[test]
    fn timing_returns_positive_duration() {
        let (secs, price) = time_pricer(Impl::FftBopm, 128, 3);
        assert!(secs > 0.0 && price > 0.0);
    }

    #[test]
    fn paper_book_is_distinct_and_batch_matches_sequential_loop() {
        let book = paper_book(64, 64);
        let pricer = BatchPricer::new(EngineConfig::default());
        let batch = pricer.price_batch(&book);
        // All 64 requests are distinct: none deduplicated away.
        assert_eq!(pricer.memo_stats().misses, 64);
        let seq = sequential_facade_loop(&book);
        for (b, s) in batch.iter().zip(&seq) {
            assert_eq!(b.as_ref().unwrap().to_bits(), s.to_bits());
        }
    }

    #[test]
    fn put_book_batch_matches_the_naive_loop_numerically() {
        let book = put_book(32, 96);
        let pricer = BatchPricer::new(EngineConfig::default());
        let batch = pricer.price_batch(&book);
        assert_eq!(pricer.memo_stats().misses, 32, "put book must be duplicate-free");
        let naive = sequential_naive_put_loop(&book);
        for ((req, b), n) in book.iter().zip(&batch).zip(&naive) {
            let b = b.as_ref().unwrap_or_else(|e| panic!("{req:?}: {e}"));
            assert!((b - n).abs() < 1e-9 * n.abs().max(1.0), "{req:?}: fast {b} vs naive {n}");
        }
    }

    #[test]
    fn duplicated_book_dedupes() {
        let book = duplicated_book(8, 64, 64);
        assert_eq!(book.len(), 64);
        let pricer = BatchPricer::new(EngineConfig::default());
        pricer.price_batch(&book);
        assert_eq!(pricer.memo_stats().misses, 8);
    }

    #[test]
    fn surface_grid_quotes_are_distinct_and_invert_both_ways() {
        use amopt_core::batch::surface::implied_vol_surface;
        let quotes = surface_grid(3, 2, 64);
        assert_eq!(quotes.len(), 6);
        let pricer = BatchPricer::new(EngineConfig::default());
        let batch = implied_vol_surface(&pricer, &quotes);
        let serial = serial_surface_loop(&quotes);
        for (b, s) in batch.iter().zip(&serial) {
            let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
            assert!((b - s).abs() < 1e-6, "surface {b} vs serial {s}");
        }
    }
}
