//! `bench-diff` — throughput regression gate over the archived bench
//! summaries (`BENCH_batch.json` / `BENCH_surface.json`, schemas in this
//! crate's README).
//!
//! ```sh
//! bench-diff <history.jsonl> <fresh.json> [--tolerance 0.30] [--window 3] [--no-append]
//!
//! # In-summary pair gate: scenario <probe> must stay within <tol> of
//! # scenario <base> on throughput and p99 *inside one fresh summary* —
//! # no history needed, so the gate is immune to runner-speed drift.
//! # CI holds the observability overhead to 3% this way:
//! bench-diff --pair service_tcp_obs_off:service_tcp_obs_on:0.03 <fresh.json>
//! ```
//!
//! The history file holds one summary JSON per line (one line per archived
//! run).  For every scenario record of the fresh summary — keyed on
//! `(name, batch|quotes, threads)` — the fresh throughput is compared
//! against the median of the last `window` archived runs:
//!
//! * fewer than 2 archived datapoints for a key → **warn only** (timing on
//!   shared runners is too noisy to fail on a single reference);
//! * `fresh < (1 − tolerance) × median` with ≥ 2 datapoints → **fail**
//!   (exit 1) after printing every comparison;
//! * scenarios with no history (new benches) are reported as `new` and
//!   never fail — consumers of the schema must tolerate appended scenarios.
//!
//! Records that also carry a `p99_us` latency get a second, lower-is-better
//! gate under the same rules: `fresh > (1 + tolerance) × median` with ≥ 2
//! datapoints fails.  This is what holds the service bench's tail-latency
//! scenarios (reactor vs threaded, deadline mix) to their archived shape.
//!
//! Unless `--no-append` is given, a **passing** summary is appended to the
//! history (compacted to one line, capped to the last 20 runs) *after* the
//! comparison, so the next run sees it; failing runs are kept out of the
//! history so a retried regression cannot vote itself into the median.
//! The parser is a minimal scanner
//! for the two known schemas; unparseable history lines are skipped with a
//! warning rather than failing the gate.

use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct Record {
    name: String,
    size: u64,
    threads: u64,
    metric: f64,
    /// Tail latency, gated lower-is-better when present.
    p99_us: Option<f64>,
}

/// Extracts the scenario records of one summary JSON: objects inside the
/// `"results"` array, keyed metric `options_per_sec` or `quotes_per_sec`,
/// plus the optional `p99_us` latency.
fn parse_records(json: &str) -> Option<Vec<Record>> {
    let results_at = json.find("\"results\"")?;
    let body = &json[results_at..];
    let open = body.find('[')?;
    let close = body.find(']')?;
    let array = &body[open + 1..close];
    let mut records = Vec::new();
    let mut rest = array;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}')? + start;
        let obj = &rest[start + 1..end];
        let name = field_str(obj, "name")?;
        let size = field_num(obj, "batch").or_else(|| field_num(obj, "quotes"))? as u64;
        let threads = field_num(obj, "threads")? as u64;
        let metric =
            field_num(obj, "options_per_sec").or_else(|| field_num(obj, "quotes_per_sec"))?;
        let p99_us = field_num(obj, "p99_us");
        records.push(Record { name, size, threads, metric, p99_us });
        rest = &rest[end + 1..];
    }
    Some(records)
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Archived history of one `(name, size, threads)` key, oldest first.
#[derive(Debug, Default)]
struct Series {
    name: String,
    size: u64,
    threads: u64,
    metrics: Vec<f64>,
    p99s: Vec<f64>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Whether `value` stays inside the tolerance band around `med`:
/// throughput (`higher_better`) may not drop below `(1 − tol) × med`,
/// latency may not rise above `(1 + tol) × med`.
fn within_tolerance(value: f64, med: f64, tolerance: f64, higher_better: bool) -> bool {
    if higher_better {
        value >= (1.0 - tolerance) * med
    } else {
        value <= (1.0 + tolerance) * med
    }
}

/// One `--pair base:probe:tol` directive, parsed.
#[derive(Debug, Clone, PartialEq)]
struct Pair {
    base: String,
    probe: String,
    tolerance: f64,
}

fn parse_pair(spec: &str) -> Option<Pair> {
    let mut parts = spec.split(':');
    let base = parts.next()?.to_string();
    let probe = parts.next()?.to_string();
    let tolerance: f64 = parts.next()?.parse().ok()?;
    let positive = tolerance.is_finite() && tolerance > 0.0;
    if parts.next().is_some() || base.is_empty() || probe.is_empty() || !positive {
        return None;
    }
    Some(Pair { base, probe, tolerance })
}

/// Gates every `--pair` directive against one fresh summary: the probe
/// scenario's throughput may not drop more than `tolerance` below the base
/// scenario's, and (when both carry one) its p99 may not exceed the base's
/// by more than `tolerance`.  Both records must exist — a missing scenario
/// is a failure, not a skip, so a renamed bench cannot silently disable the
/// gate.  Returns the number of failures.
fn gate_pairs(fresh: &[Record], pairs: &[Pair]) -> usize {
    let mut failures = 0usize;
    for pair in pairs {
        let find = |name: &str| fresh.iter().find(|r| r.name == name);
        let (Some(base), Some(probe)) = (find(&pair.base), find(&pair.probe)) else {
            eprintln!(
                "bench-diff: pair {}:{} — scenario missing from the fresh summary",
                pair.base, pair.probe
            );
            failures += 1;
            continue;
        };
        let tput_ok = within_tolerance(probe.metric, base.metric, pair.tolerance, true);
        println!(
            "| pair {} vs {} | throughput | {:.1} vs {:.1} ({:+.1}%) | {} |",
            pair.probe,
            pair.base,
            probe.metric,
            base.metric,
            100.0 * (probe.metric / base.metric - 1.0),
            if tput_ok { "ok" } else { "FAIL" }
        );
        if !tput_ok {
            failures += 1;
        }
        if let (Some(bp99), Some(pp99)) = (base.p99_us, probe.p99_us) {
            let p99_ok = within_tolerance(pp99, bp99, pair.tolerance, false);
            println!(
                "| pair {} vs {} | p99_us | {:.1} vs {:.1} ({:+.1}%) | {} |",
                pair.probe,
                pair.base,
                pp99,
                bp99,
                100.0 * (pp99 / bp99 - 1.0),
                if p99_ok { "ok" } else { "FAIL" }
            );
            if !p99_ok {
                failures += 1;
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.30_f64;
    let mut window = 3usize;
    let mut append = true;
    let mut paths: Vec<&str> = Vec::new();
    let mut pairs: Vec<Pair> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it.next().and_then(|v| v.parse().ok()).unwrap_or(tolerance)
            }
            "--window" => window = it.next().and_then(|v| v.parse().ok()).unwrap_or(window),
            "--no-append" => append = false,
            "--pair" => match it.next().map(String::as_str).and_then(parse_pair) {
                Some(pair) => pairs.push(pair),
                None => {
                    eprintln!("bench-diff: --pair wants base:probe:tolerance (e.g. a:b:0.03)");
                    return ExitCode::from(2);
                }
            },
            p => paths.push(p),
        }
    }
    // Pair-only mode: one positional path (the fresh summary), no history.
    if paths.len() == 1 && !pairs.is_empty() {
        let fresh_path = paths[0];
        let fresh_json = match std::fs::read_to_string(fresh_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench-diff: cannot read fresh summary {fresh_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(fresh) = parse_records(&fresh_json) else {
            eprintln!("bench-diff: {fresh_path} does not match the bench summary schema");
            return ExitCode::from(2);
        };
        let failures = gate_pairs(&fresh, &pairs);
        if failures > 0 {
            eprintln!("bench-diff: {failures} pair gate(s) failed");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let [history_path, fresh_path] = paths[..] else {
        eprintln!(
            "usage: bench-diff <history.jsonl> <fresh.json> [--tolerance X] [--window N] \
             [--no-append] [--pair base:probe:tol]\n\
             \u{20}      bench-diff --pair base:probe:tol <fresh.json>"
        );
        return ExitCode::from(2);
    };

    let fresh_json = match std::fs::read_to_string(fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: cannot read fresh summary {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(fresh) = parse_records(&fresh_json) else {
        eprintln!("bench-diff: {fresh_path} does not match the bench summary schema");
        return ExitCode::from(2);
    };

    // History: one summary per line, oldest first.
    let history_raw = std::fs::read_to_string(history_path).unwrap_or_default();
    let mut history_lines: Vec<&str> =
        history_raw.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut series: Vec<Series> = Vec::new();
    for line in &history_lines {
        let Some(records) = parse_records(line) else {
            eprintln!("bench-diff: skipping unparseable history line");
            continue;
        };
        for r in records {
            let slot = match series
                .iter_mut()
                .find(|s| s.name == r.name && s.size == r.size && s.threads == r.threads)
            {
                Some(slot) => slot,
                None => {
                    series.push(Series {
                        name: r.name,
                        size: r.size,
                        threads: r.threads,
                        ..Series::default()
                    });
                    series.last_mut().expect("just pushed")
                }
            };
            slot.metrics.push(r.metric);
            if let Some(p99) = r.p99_us {
                slot.p99s.push(p99);
            }
        }
    }

    println!("| scenario | size | threads | fresh | median(last {window}) | runs | verdict |");
    println!("|---|---|---|---|---|---|---|");
    let mut failures = 0usize;
    let mut warnings = 0usize;
    // One comparison per gated value: `higher_better` flips the tolerance
    // band (throughput must not drop, p99 latency must not grow).
    let mut gate =
        |label: &str, size: u64, threads: u64, value: f64, prior: Vec<f64>, higher_better: bool| {
            let verdict = if prior.is_empty() {
                "new".to_string()
            } else {
                let med = median(prior.clone());
                if within_tolerance(value, med, tolerance, higher_better) {
                    format!("ok ({:+.1}%)", 100.0 * (value / med - 1.0))
                } else if prior.len() >= 2 {
                    failures += 1;
                    format!("FAIL ({:.1}% of median)", 100.0 * value / med)
                } else {
                    warnings += 1;
                    format!("warn ({:.1}% of median, 1 datapoint)", 100.0 * value / med)
                }
            };
            let med_str = if prior.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}", median(prior.clone()))
            };
            println!(
                "| {label} | {size} | {threads} | {value:.1} | {med_str} | {} | {verdict} |",
                prior.len(),
            );
        };
    for r in &fresh {
        let prior = series
            .iter()
            .find(|s| s.name == r.name && s.size == r.size && s.threads == r.threads)
            .map(|s| {
                (
                    s.metrics.iter().rev().take(window).copied().collect::<Vec<_>>(),
                    s.p99s.iter().rev().take(window).copied().collect::<Vec<_>>(),
                )
            })
            .unwrap_or_default();
        gate(&r.name, r.size, r.threads, r.metric, prior.0, true);
        if let Some(p99) = r.p99_us {
            gate(&format!("{} (p99_us)", r.name), r.size, r.threads, p99, prior.1, false);
        }
    }
    failures += gate_pairs(&fresh, &pairs);

    // A failing run never enters the history: appending it would let a
    // retried regression vote itself into the median (two retries and the
    // regressed value *becomes* the accepted baseline).
    if append && failures == 0 {
        let compact: String = fresh_json.chars().map(|c| if c == '\n' { ' ' } else { c }).collect();
        history_lines.push(&compact);
        let keep = history_lines.len().saturating_sub(20);
        let out: String = history_lines[keep..].join("\n") + "\n";
        if let Some(dir) = std::path::Path::new(history_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(history_path, out) {
            eprintln!("bench-diff: could not update history {history_path}: {e}");
        }
    }

    if failures > 0 {
        eprintln!(
            "bench-diff: {failures} scenario(s) regressed more than {:.0}% against the archived \
             median",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    if warnings > 0 {
        eprintln!(
            "bench-diff: {warnings} scenario(s) below the archived value, but only one datapoint \
             exists — warning, not failing"
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "batch_throughput",
  "steps": 252,
  "max_threads": 8,
  "speedup_batched_vs_sequential": 1.01,
  "results": [
    {"name": "batch_cold", "batch": 4096, "threads": 1, "secs": 0.79, "options_per_sec": 5175.0},
    {"name": "batch_memo_warm", "batch": 4096, "threads": 8, "secs": 0.001, "options_per_sec": 4096000.0},
    {"name": "service_tcp", "quotes": 4096, "threads": 4, "secs": 1.2, "quotes_per_sec": 3400.0, "p99_us": 950.0}
  ]
}"#;

    #[test]
    fn parses_the_batch_schema() {
        let records = parse_records(SAMPLE).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "batch_cold");
        assert_eq!(records[0].size, 4096);
        assert_eq!(records[0].threads, 1);
        assert!((records[0].metric - 5175.0).abs() < 1e-9);
    }

    #[test]
    fn p99_is_parsed_where_present_and_absent_elsewhere() {
        let records = parse_records(SAMPLE).unwrap();
        assert_eq!(records[0].p99_us, None);
        assert_eq!(records[1].p99_us, None);
        assert_eq!(records[2].p99_us, Some(950.0));
    }

    #[test]
    fn parses_surface_metric_and_compacted_lines() {
        let surface = r#"{"bench": "surface_throughput", "results": [
            {"name": "surface_cold", "quotes": 32, "threads": 1, "secs": 0.06, "quotes_per_sec": 494.7}
        ]}"#;
        let compact: String = surface.chars().map(|c| if c == '\n' { ' ' } else { c }).collect();
        for text in [surface, compact.as_str()] {
            let records = parse_records(text).unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].size, 32);
            assert!((records[0].metric - 494.7).abs() < 1e-9);
        }
    }

    #[test]
    fn median_is_positional() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0, 1.0]), 5.0);
    }

    #[test]
    fn pair_spec_parses_and_rejects_malformed_input() {
        assert_eq!(
            parse_pair("off:on:0.03"),
            Some(Pair { base: "off".into(), probe: "on".into(), tolerance: 0.03 })
        );
        for bad in ["off:on", "off:on:zero", ":on:0.03", "off::0.03", "a:b:0.03:extra", "a:b:-1"] {
            assert_eq!(parse_pair(bad), None, "{bad} should not parse");
        }
    }

    #[test]
    fn pair_gate_checks_throughput_and_p99_within_one_summary() {
        let rec = |name: &str, metric: f64, p99: Option<f64>| Record {
            name: name.into(),
            size: 4096,
            threads: 4,
            metric,
            p99_us: p99,
        };
        let pair = |tol: f64| vec![Pair { base: "off".into(), probe: "on".into(), tolerance: tol }];
        // Within 3% on both axes: passes.
        let fresh = vec![rec("off", 1000.0, Some(900.0)), rec("on", 985.0, Some(920.0))];
        assert_eq!(gate_pairs(&fresh, &pair(0.03)), 0);
        // Throughput 5% down: one failure.
        let fresh = vec![rec("off", 1000.0, Some(900.0)), rec("on", 950.0, Some(900.0))];
        assert_eq!(gate_pairs(&fresh, &pair(0.03)), 1);
        // p99 5% up: one failure.
        let fresh = vec![rec("off", 1000.0, Some(900.0)), rec("on", 1000.0, Some(945.0))];
        assert_eq!(gate_pairs(&fresh, &pair(0.03)), 1);
        // Missing scenario is a failure, never a silent skip.
        let fresh = vec![rec("off", 1000.0, None)];
        assert_eq!(gate_pairs(&fresh, &pair(0.03)), 1);
        // Records without p99 gate throughput only.
        let fresh = vec![rec("off", 1000.0, None), rec("on", 990.0, None)];
        assert_eq!(gate_pairs(&fresh, &pair(0.03)), 0);
    }

    #[test]
    fn tolerance_band_flips_with_metric_direction() {
        // Throughput: a 20% drop passes at 30% tolerance, a 40% drop fails.
        assert!(within_tolerance(80.0, 100.0, 0.30, true));
        assert!(!within_tolerance(60.0, 100.0, 0.30, true));
        // Gains never fail the throughput gate.
        assert!(within_tolerance(500.0, 100.0, 0.30, true));
        // p99 latency: growth beyond the band fails, shrinking passes.
        assert!(within_tolerance(120.0, 100.0, 0.30, false));
        assert!(!within_tolerance(140.0, 100.0, 0.30, false));
        assert!(within_tolerance(10.0, 100.0, 0.30, false));
    }
}
