//! `paper-figures` — regenerates every table and figure of the paper's
//! evaluation (§5) on this machine, printing markdown tables and writing CSV
//! series under `results/`.
//!
//! ```text
//! paper-figures fig5 [bopm|topm|bsm|all] [--max-t-fft N] [--max-t-naive N]
//! paper-figures fig6            # energy model (RAPL substitute)
//! paper-figures fig7            # cache misses (PAPI substitute)
//! paper-figures table5          # thread-count sweep at T = 2^15
//! paper-figures speedups        # headline speedup claims of §5.1
//! paper-figures scaling         # empirical work-scaling exponents (Table 2)
//! paper-figures batch           # batch-subsystem throughput (beyond-paper)
//! paper-figures surface         # implied-vol surface inversion (beyond-paper)
//! paper-figures all
//! ```

use amopt_bench::{
    median_secs, paper_book, sequential_facade_loop, serial_surface_loop, surface_grid,
    time_batch_cold, time_pricer, Impl,
};
use amopt_cachesim::{kernels, EnergyModel};
use amopt_core::batch::surface::implied_vol_surface;
use amopt_core::batch::BatchPricer;
use amopt_core::EngineConfig;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let opt = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    // Defaults keep a full `all` run in CI-scale minutes; raise the caps to
    // reproduce the paper's largest sizes.
    let max_t_fft = opt("--max-t-fft", 1 << 17);
    let max_t_naive = opt("--max-t-naive", 1 << 14);
    fs::create_dir_all("results").ok();

    match cmd {
        "fig5" => {
            let model = args.get(1).map(String::as_str).unwrap_or("all");
            fig5(model, max_t_fft, max_t_naive);
        }
        "fig6" => fig6(max_t_naive),
        "fig7" => fig7(max_t_naive),
        "table5" => table5(opt("--t", 1 << 15)),
        "speedups" => speedups(max_t_naive),
        "scaling" => scaling(max_t_fft),
        "batch" => batch(opt("--batch", 4096), opt("--steps", 252)),
        "surface" => surface(opt("--strikes", 8), opt("--expiries", 4), opt("--steps", 252)),
        "all" => {
            fig5("all", max_t_fft, max_t_naive);
            fig6(max_t_naive);
            fig7(max_t_naive);
            table5(1 << 15);
            speedups(max_t_naive);
            scaling(max_t_fft);
            batch(4096, 252);
            surface(8, 4, 252);
        }
        other => {
            eprintln!("unknown subcommand `{other}`; see module docs");
            std::process::exit(2);
        }
    }
}

fn write_csv(path: &str, header: &str, rows: &[String]) {
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    if let Err(e) = fs::write(Path::new(path), out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn reps_for(steps: usize) -> usize {
    match steps {
        0..=4096 => 5,
        4097..=65536 => 3,
        _ => 1,
    }
}

/// Figure 5: parallel running time vs T, one sub-figure per model.  A put
/// column rides along for each lattice family, so the tables cover both
/// cones (the BSM grid is a put already).
fn fig5(model: &str, max_t_fft: usize, max_t_naive: usize) {
    let groups: &[(&str, &[Impl])] = &[
        ("bopm", &[Impl::FftBopm, Impl::FftBopmPut, Impl::QlBopm, Impl::ZbBopm]),
        ("topm", &[Impl::FftTopm, Impl::FftTopmPut, Impl::VanillaTopm]),
        ("bsm", &[Impl::FftBsm, Impl::VanillaBsm]),
    ];
    for (name, impls) in groups {
        if model != "all" && model != *name {
            continue;
        }
        println!("\n## Figure 5 ({name}): parallel running time [s] vs T\n");
        print!("| T |");
        for i in *impls {
            print!(" {} |", i.legend());
        }
        println!();
        print!("|---|");
        for _ in *impls {
            print!("---|");
        }
        println!();
        let mut csv = Vec::new();
        let mut t = 1 << 9;
        while t <= max_t_fft {
            print!("| 2^{} |", t.trailing_zeros());
            let mut row = format!("{t}");
            for i in *impls {
                if i.is_quadratic() && t > max_t_naive {
                    print!(" — |");
                    row.push(',');
                    continue;
                }
                let (secs, _) = time_pricer(*i, t, reps_for(t));
                print!(" {secs:.4} |");
                let _ = write!(row, ",{secs:.6}");
            }
            println!();
            csv.push(row);
            t *= 4;
        }
        let header = {
            let mut h = String::from("T");
            for i in *impls {
                let _ = write!(h, ",{}", i.legend());
            }
            h
        };
        write_csv(&format!("results/fig5_{name}.csv"), &header, &csv);
    }
}

/// Figure 6 (+ Fig. 10 split): modeled energy vs T.
fn fig6(max_t_naive: usize) {
    println!("\n## Figure 6: total energy [J, modeled] vs T (pkg/RAM split = Fig. 10)\n");
    println!("| T | fft-bopm | ql-bopm | zb-bopm | fft pkg | fft RAM | ql pkg | ql RAM |");
    println!("|---|---|---|---|---|---|---|---|");
    let em = EnergyModel::default();
    let mut csv = Vec::new();
    let mut t = 1 << 9;
    while t <= max_t_naive {
        let fft = em.evaluate(&kernels::trace_fft_pricer(t, 1));
        let ql = em.evaluate(&kernels::trace_naive(t, 1, |i| i + 1));
        let zb = em.evaluate(&kernels::trace_tiled(t, 128, 2048));
        println!(
            "| 2^{} | {:.4e} | {:.4e} | {:.4e} | {:.3e} | {:.3e} | {:.3e} | {:.3e} |",
            t.trailing_zeros(),
            fft.total(),
            ql.total(),
            zb.total(),
            fft.pkg_joules,
            fft.ram_joules,
            ql.pkg_joules,
            ql.ram_joules,
        );
        csv.push(format!(
            "{t},{},{},{},{},{},{},{}",
            fft.total(),
            ql.total(),
            zb.total(),
            fft.pkg_joules,
            fft.ram_joules,
            ql.pkg_joules,
            ql.ram_joules
        ));
        t *= 2;
    }
    write_csv(
        "results/fig6_energy.csv",
        "T,fft_total,ql_total,zb_total,fft_pkg,fft_ram,ql_pkg,ql_ram",
        &csv,
    );
    let t_big = max_t_naive;
    let fft = em.evaluate(&kernels::trace_fft_pricer(t_big, 1)).total();
    let ql = em.evaluate(&kernels::trace_naive(t_big, 1, |i| i + 1)).total();
    println!(
        "\nenergy saved by fft-bopm at T=2^{}: {:.1}%",
        t_big.trailing_zeros(),
        100.0 * (1.0 - fft / ql)
    );
}

/// Figure 7: simulated L1/L2 cache misses vs T.
fn fig7(max_t_naive: usize) {
    println!("\n## Figure 7: cache misses (simulated Skylake L1 32K/8w, L2 1M/16w)\n");
    println!("| T | fft L1 | ql L1 | zb L1 | fft L2 | ql L2 | zb L2 |");
    println!("|---|---|---|---|---|---|---|");
    let mut csv = Vec::new();
    let mut t = 1 << 9;
    while t <= max_t_naive {
        let fft = kernels::trace_fft_pricer(t, 1);
        let ql = kernels::trace_naive(t, 1, |i| i + 1);
        let zb = kernels::trace_tiled(t, 128, 2048);
        println!(
            "| 2^{} | {} | {} | {} | {} | {} | {} |",
            t.trailing_zeros(),
            fft.l1_misses,
            ql.l1_misses,
            zb.l1_misses,
            fft.l2_misses,
            ql.l2_misses,
            zb.l2_misses,
        );
        csv.push(format!(
            "{t},{},{},{},{},{},{}",
            fft.l1_misses, ql.l1_misses, zb.l1_misses, fft.l2_misses, ql.l2_misses, zb.l2_misses
        ));
        t *= 2;
    }
    write_csv("results/fig7_cache.csv", "T,fft_l1,ql_l1,zb_l1,fft_l2,ql_l2,zb_l2", &csv);
}

/// Table 5: runtime vs thread count at fixed T.
fn table5(t: usize) {
    println!(
        "\n## Table 5: parallel run times [ms] for T = 2^{} as p varies\n",
        t.trailing_zeros()
    );
    let max_p = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let ps: Vec<usize> =
        [1usize, 2, 4, 8, 16, 32, 48].into_iter().filter(|&p| p <= 2 * max_p).collect();
    print!("| impl |");
    for p in &ps {
        print!(" p={p} |");
    }
    println!("\n|---|{}", "---|".repeat(ps.len()));
    let mut csv = Vec::new();
    for which in [Impl::FftBopm, Impl::QlBopm] {
        print!("| {} |", which.legend());
        let mut row = which.legend().to_string();
        for &p in &ps {
            let secs = amopt_parallel::run_with_threads(p, || {
                let (secs, _) = time_pricer(which, t, 3);
                secs
            });
            print!(" {:.1} |", secs * 1e3);
            let _ = write!(row, ",{:.6}", secs);
        }
        println!();
        csv.push(row);
    }
    let header = {
        let mut h = String::from("impl");
        for p in &ps {
            let _ = write!(h, ",p{p}");
        }
        h
    };
    write_csv("results/table5_scaling.csv", &header, &csv);
    println!("\n(machine exposes {max_p} hardware threads; larger p oversubscribes)");
}

/// §5.1 headline speedups: fft vs best loop baseline at matched T.
fn speedups(max_t_naive: usize) {
    println!("\n## §5.1 headline speedups (fft vs parallel loop baselines)\n");
    println!("| model | T | loop [s] | fft [s] | speedup |");
    println!("|---|---|---|---|---|");
    let pairs = [
        (Impl::FftBopm, Impl::QlBopm, "bopm"),
        (Impl::FftTopm, Impl::VanillaTopm, "topm"),
        (Impl::FftBsm, Impl::VanillaBsm, "bsm"),
    ];
    let mut csv = Vec::new();
    for (fast, slow, name) in pairs {
        for t in [1024usize, max_t_naive] {
            let (tf, _) = time_pricer(fast, t, reps_for(t));
            let (ts, _) = time_pricer(slow, t, reps_for(t));
            println!("| {name} | {t} | {ts:.4} | {tf:.4} | {:.1}x |", ts / tf);
            csv.push(format!("{name},{t},{ts:.6},{tf:.6},{:.3}", ts / tf));
        }
    }
    write_csv("results/speedups.csv", "model,T,loop_s,fft_s,speedup", &csv);
}

/// Beyond-paper: batch-subsystem throughput (options/sec) vs batch size and
/// thread count, against the sequential facade loop.
fn batch(max_batch: usize, steps: usize) {
    println!("\n## Batch pricing throughput (T = {steps}, American BOPM calls)\n");
    println!("| scenario | batch | threads | secs | options/s |");
    println!("|---|---|---|---|---|");
    let max_p = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut csv = Vec::new();
    let mut emit = |name: &str, batch: usize, threads: usize, secs: f64| {
        let rate = batch as f64 / secs;
        println!("| {name} | {batch} | {threads} | {secs:.4} | {rate:.0} |");
        csv.push(format!("{name},{batch},{threads},{secs:.6},{rate:.1}"));
    };

    let book = paper_book(max_batch, steps);
    let seq = median_secs(3, || {
        std::hint::black_box(sequential_facade_loop(&book));
    });
    emit("seq_facade_loop", max_batch, 1, seq);

    let mut sizes = vec![1usize, 64];
    if !sizes.contains(&max_batch) {
        sizes.push(max_batch);
    }
    let mut batched_at_max = seq;
    for n in sizes {
        let book = paper_book(n, steps);
        let mut threads = vec![1usize];
        if max_p > 1 {
            threads.push(max_p);
        }
        for p in threads {
            let secs = amopt_parallel::run_with_threads(p, || time_batch_cold(&book, 3));
            emit("batch_cold", n, p, secs);
            if n == max_batch && p == max_p {
                batched_at_max = secs;
            }
        }
    }

    // Warm memo: reprice an unchanged book.
    let pricer = BatchPricer::new(EngineConfig::default());
    let small = paper_book(256, steps);
    let _ = pricer.price_batch(&small);
    let warm = median_secs(3, || {
        std::hint::black_box(pricer.price_batch(&small));
    });
    emit("batch_memo_warm", small.len(), max_p, warm);

    println!(
        "\nbatched ({max_p} threads) vs sequential loop at {max_batch} requests: {:.2}x",
        seq / batched_at_max
    );
    write_csv("results/batch_throughput.csv", "scenario,batch,threads,secs,options_per_sec", &csv);
}

/// Beyond-paper: implied-vol surface inversion throughput (quotes/sec) —
/// batch-native lockstep driver vs the serial per-quote bisection loop.
fn surface(strikes: usize, expiries: usize, steps: usize) {
    println!(
        "\n## Implied-vol surface inversion ({strikes}x{expiries} grid, T = {steps}, \
         American BOPM calls)\n"
    );
    println!("| scenario | quotes | secs | quotes/s |");
    println!("|---|---|---|---|");
    let mut csv = Vec::new();
    let mut emit = |name: &str, quotes: usize, secs: f64| {
        let rate = quotes as f64 / secs;
        println!("| {name} | {quotes} | {secs:.4} | {rate:.1} |");
        csv.push(format!("{name},{quotes},{secs:.6},{rate:.1}"));
    };
    let quotes = surface_grid(strikes, expiries, steps);
    let serial = median_secs(3, || {
        std::hint::black_box(serial_surface_loop(&quotes));
    });
    emit("serial_quote_loop", quotes.len(), serial);
    let cold = median_secs(3, || {
        let pricer = amopt_core::BatchPricer::with_memo_capacity(EngineConfig::default(), 8192);
        std::hint::black_box(implied_vol_surface(&pricer, &quotes));
    });
    emit("surface_cold", quotes.len(), cold);
    let pricer = amopt_core::BatchPricer::with_memo_capacity(EngineConfig::default(), 8192);
    let _ = implied_vol_surface(&pricer, &quotes);
    let warm = median_secs(3, || {
        std::hint::black_box(implied_vol_surface(&pricer, &quotes));
    });
    emit("surface_requote", quotes.len(), warm);
    println!(
        "\nbatch-native surface vs serial loop: {:.2}x cold, {:.2}x re-quote",
        serial / cold,
        serial / warm
    );
    write_csv("results/surface_throughput.csv", "scenario,quotes,secs,quotes_per_sec", &csv);
}

/// Empirical scaling exponents: fit runtime ~ T^alpha on log-log points
/// (Table 2's work column, observed).
fn scaling(max_t_fft: usize) {
    println!("\n## Table 2 (empirical): runtime scaling exponents\n");
    let fit = |which: Impl, ts: &[usize]| -> f64 {
        let pts: Vec<(f64, f64)> = ts
            .iter()
            .map(|&t| {
                let (secs, _) = time_pricer(which, t, reps_for(t));
                ((t as f64).ln(), secs.ln())
            })
            .collect();
        // Least-squares slope.
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    };
    let fft_ts: Vec<usize> = [1 << 13, 1 << 15, max_t_fft.max(1 << 16)].to_vec();
    let naive_ts: Vec<usize> = vec![1 << 11, 1 << 12, 1 << 13];
    let a_fft = fit(Impl::FftBopm, &fft_ts);
    let a_naive = fit(Impl::QlBopm, &naive_ts);
    println!("| impl | fitted exponent | theory |");
    println!("|---|---|---|");
    println!("| fft-bopm | {a_fft:.2} | 1 + o(1)  (T log^2 T) |");
    println!("| ql-bopm  | {a_naive:.2} | 2  (T^2) |");
    write_csv(
        "results/scaling.csv",
        "impl,exponent",
        &[format!("fft-bopm,{a_fft:.4}"), format!("ql-bopm,{a_naive:.4}")],
    );
}
