//! Energy model — the RAPL substitute for the paper's Figure 6/10.
//!
//! RAPL package energy is dominated by instruction execution plus cache
//! traffic, and the RAM domain by DRAM traffic.  We charge each counter a
//! per-event energy from the published ballpark figures for 14 nm server
//! parts (Horowitz, ISSCC'14 scaled): a double-precision op ≈ 10 pJ, an L1
//! access ≈ 20 pJ, an L2 access ≈ 100 pJ, a DRAM line transfer ≈ 10 nJ.
//! Absolute Joules are indicative only; the paper's headline — ≥99% energy
//! saved at large `T`, tracking the `T² → T log² T` work reduction — is a
//! ratio, which the model preserves by construction.

use crate::cache::SimReport;

/// Per-event energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Arithmetic operation.
    pub pj_op: f64,
    /// L1 access (every memory access).
    pub pj_l1: f64,
    /// L2 access (L1 miss).
    pub pj_l2: f64,
    /// DRAM line transfer (L2 miss).
    pub pj_dram: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { pj_op: 10.0, pj_l1: 20.0, pj_l2: 100.0, pj_dram: 10_000.0 }
    }
}

/// Energy split mirroring the RAPL domains of the paper's Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Package domain: compute + on-chip caches (Joules).
    pub pkg_joules: f64,
    /// RAM domain: DRAM traffic (Joules).
    pub ram_joules: f64,
}

impl EnergyBreakdown {
    /// Total energy (Joules).
    pub fn total(&self) -> f64 {
        self.pkg_joules + self.ram_joules
    }
}

impl EnergyModel {
    /// Evaluates the model on a simulation report.
    pub fn evaluate(&self, r: &SimReport) -> EnergyBreakdown {
        let pkg = self.pj_op * r.ops as f64
            + self.pj_l1 * r.accesses as f64
            + self.pj_l2 * r.l1_misses as f64;
        let ram = self.pj_dram * r.l2_misses as f64;
        EnergyBreakdown { pkg_joules: pkg * 1e-12, ram_joules: ram * 1e-12 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn more_work_costs_more_energy() {
        let m = EnergyModel::default();
        let small = m.evaluate(&kernels::trace_naive(256, 1, |i| i + 1));
        let large = m.evaluate(&kernels::trace_naive(1024, 1, |i| i + 1));
        assert!(large.total() > small.total() * 10.0);
    }

    #[test]
    fn fft_saving_is_large_and_grows_with_t() {
        // Paper Fig. 6: ~80% saved at T ≈ 4000, >99% for T > 60000.  The
        // quadratic/quasilinear gap widens with T; check the level at 8k and
        // the growth from 2k.
        let m = EnergyModel::default();
        let saving = |t: usize| {
            let naive = m.evaluate(&kernels::trace_naive(t, 1, |i| i + 1));
            let fft = m.evaluate(&kernels::trace_fft_pricer(t, 1));
            1.0 - fft.total() / naive.total()
        };
        let s2k = saving(2048);
        let s8k = saving(8192);
        assert!(s8k > 0.6, "saving at 8192: {s8k:.3}");
        assert!(s8k > s2k, "saving must grow with T: {s2k:.3} vs {s8k:.3}");
    }

    #[test]
    fn breakdown_components_are_nonnegative_and_sum() {
        let m = EnergyModel::default();
        let e = m.evaluate(&kernels::trace_tiled(512, 64, 512));
        assert!(e.pkg_joules >= 0.0 && e.ram_joules >= 0.0);
        assert!((e.total() - (e.pkg_joules + e.ram_joules)).abs() < 1e-15);
    }
}
