//! # amopt-cachesim — cache and energy simulation substrate
//!
//! The paper measures L1/L2 misses with PAPI and energy with RAPL (`perf`)
//! on a Skylake node.  Neither interface is portable or available in a
//! container, so this crate substitutes:
//!
//! * [`cache`] — a set-associative LRU L1+L2 hierarchy with the paper's
//!   Table 3 geometry, driven by address traces;
//! * [`kernels`] — address-level replicas of the naive, tiled, and
//!   FFT-trapezoid pricing kernels (see module docs for the fidelity
//!   contract of each);
//! * [`energy`] — a per-event energy model mapping the counters onto the
//!   RAPL pkg/RAM domains.
//!
//! Together these regenerate the *shape* of the paper's Figures 6, 7 and 10;
//! DESIGN.md documents the substitution rationale.

#![forbid(unsafe_code)]

pub mod cache;
pub mod energy;
pub mod kernels;

pub use cache::{CacheLevel, Hierarchy, SimReport};
pub use energy::{EnergyBreakdown, EnergyModel};
