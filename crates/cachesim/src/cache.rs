//! Set-associative LRU cache hierarchy simulator.
//!
//! Stands in for the PAPI hardware counters of the paper's Figure 7: the
//! pricing kernels are replayed as address traces against an L1+L2 hierarchy
//! sized like the paper's Skylake node (Table 3: L1 32 KiB/core, L2
//! 1 MiB/core, 64-byte lines).  Misses of a deterministic trace on LRU
//! caches are exactly what the hardware counts, minus OS noise and
//! prefetching.

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotone counter per line for LRU ordering.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Builds a level from total capacity, associativity, and line size
    /// (all powers of two).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(capacity_bytes.is_power_of_two());
        assert!(line_bytes.is_power_of_two());
        assert!(ways >= 1);
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity/line/ways mismatch");
        let sets = lines / ways;
        CacheLevel {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// On miss the line is filled (LRU eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        self.clock += 1;
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Evict the least recently used way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Two-level hierarchy with the paper's per-core Skylake geometry.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    accesses: u64,
    ops: u64,
}

impl Hierarchy {
    /// L1 32 KiB 8-way, L2 1 MiB 16-way, 64 B lines (Table 3 of the paper).
    pub fn skylake() -> Self {
        Hierarchy {
            l1: CacheLevel::new(32 * 1024, 8, 64),
            l2: CacheLevel::new(1024 * 1024, 16, 64),
            accesses: 0,
            ops: 0,
        }
    }

    /// Custom geometry.
    pub fn new(l1: CacheLevel, l2: CacheLevel) -> Self {
        Hierarchy { l1, l2, accesses: 0, ops: 0 }
    }

    /// One memory access (read or write — LRU state treats them alike).
    #[inline]
    pub fn touch(&mut self, addr: u64) {
        self.accesses += 1;
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }

    /// Records `n` arithmetic operations (for the energy model).
    #[inline]
    pub fn op(&mut self, n: u64) {
        self.ops += n;
    }

    /// Snapshot of the counters.
    pub fn report(&self) -> SimReport {
        SimReport {
            accesses: self.accesses,
            ops: self.ops,
            l1_misses: self.l1.misses(),
            l2_misses: self.l2.misses(),
        }
    }
}

/// Counter snapshot of one simulated kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Total memory accesses issued.
    pub accesses: u64,
    /// Arithmetic operations executed.
    pub ops: u64,
    /// L1 misses (= L2 accesses, as in the paper's Fig. 7 caption).
    pub l1_misses: u64,
    /// L2 misses (DRAM traffic).
    pub l2_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheLevel::new(32 * 1024, 8, 64);
        for i in 0..4096u64 {
            c.access(i * 8); // 8-byte strides: 8 accesses per 64 B line
        }
        assert_eq!(c.misses(), 4096 / 8);
        assert_eq!(c.hits(), 4096 - 4096 / 8);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheLevel::new(1024, 2, 64);
        assert!(!c.access(0));
        for _ in 0..100 {
            assert!(c.access(32)); // same line as 0
        }
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // 2-way set: lines mapping to the same set evict in LRU order.
        let mut c = CacheLevel::new(2 * 64 * 4, 2, 64); // 4 sets, 2 ways
        let set_stride = 4 * 64; // same set every 4 lines
        assert!(!c.access(0));
        assert!(!c.access(set_stride as u64));
        assert!(c.access(0)); // 0 now MRU
        assert!(!c.access(2 * set_stride as u64)); // evicts `set_stride`
        assert!(c.access(0));
        assert!(!c.access(set_stride as u64)); // was evicted
    }

    #[test]
    fn working_set_larger_than_l1_fits_l2() {
        let mut h = Hierarchy::skylake();
        // 256 KiB working set: misses L1 on every pass, hits L2 after fill.
        let n = 256 * 1024 / 8;
        for pass in 0..2 {
            for i in 0..n as u64 {
                h.touch(i * 8);
            }
            let r = h.report();
            if pass == 1 {
                // Second pass: L1 still misses (set too big), L2 all hits.
                assert_eq!(r.l2_misses, (256 * 1024 / 64) as u64);
            }
        }
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut h = Hierarchy::skylake();
        let n = 1024; // 8 KiB
        for _ in 0..10 {
            for i in 0..n as u64 {
                h.touch(i * 8);
            }
        }
        let r = h.report();
        assert_eq!(r.l1_misses, 8 * 1024 / 64);
        assert_eq!(r.l2_misses, 8 * 1024 / 64);
        assert_eq!(r.accesses, 10 * n as u64);
    }
}
