//! Address-level replicas of the pricing kernels, replayed against the
//! simulated hierarchy.
//!
//! The loop baselines (`naive`, `tiled`) replay their access streams
//! *exactly* (same loop order, same buffers).  The FFT pricer is replayed
//! **structurally**: the driver/trapezoid recursion is reproduced with the
//! same sub-problem sizes and the same butterfly access pattern inside each
//! transform, under a stationary-boundary simplification (the red-region
//! width stays at its expiry value).  The drift only changes sub-problem
//! sizes by low-order terms, so miss *shapes* are preserved; DESIGN.md
//! records this substitution.

use crate::cache::{Hierarchy, SimReport};

/// Byte size of one grid cell (`f64`).
const W: u64 = 8;

/// Disjoint virtual base addresses for the buffers involved.
mod base {
    pub const CUR: u64 = 0x1_0000_0000;
    pub const NEXT: u64 = 0x2_0000_0000;
    pub const SCRATCH: u64 = 0x3_0000_0000;
    pub const FFT_A: u64 = 0x4_0000_0000;
    pub const FFT_B: u64 = 0x5_0000_0000;
    pub const ROW: u64 = 0x6_0000_0000;
}

/// Naive double-buffered row sweep (`ql-bopm` / `vanilla-*` shape):
/// row `i` reads `span+1` cells of the previous row per output cell.
///
/// `width_of(i)` gives the cell count of row `i` (e.g. `i+1` for BOPM,
/// `2i+1` for TOPM, `2(T−n)+1` for the BSM cone).
pub fn trace_naive(t: usize, span: usize, width_of: impl Fn(usize) -> usize) -> SimReport {
    let mut h = Hierarchy::skylake();
    for i in (0..t).rev() {
        let width = width_of(i);
        for j in 0..width as u64 {
            for m in 0..=span as u64 {
                h.touch(base::CUR + (j + m) * W);
            }
            h.touch(base::NEXT + j * W);
            // span+1 multiply-adds, one exercise evaluation, one max.
            h.op(2 * (span as u64 + 1) + 2);
        }
        // The real code ping-pongs between two arrays; keeping fixed roles
        // for CUR/NEXT models the same two live buffers.
    }
    h.report()
}

/// Cache-aware tiled sweep (`zb-bopm` shape): bands of `band` rows, blocks
/// of `width` columns staged through a scratch buffer.
pub fn trace_tiled(t: usize, band: usize, width: usize) -> SimReport {
    let mut h = Hierarchy::skylake();
    let mut i_hi = t;
    while i_hi > 0 {
        let b = band.min(i_hi);
        let i_lo = i_hi - b;
        let out_len = i_lo + 1;
        let mut offset = 0usize;
        while offset < out_len {
            let chunk = width.min(out_len - offset);
            let need = chunk + b;
            // Stage the needed top-row cells into scratch.
            for x in 0..need as u64 {
                h.touch(base::CUR + (offset as u64 + x) * W);
                h.touch(base::SCRATCH + x * W);
            }
            // Sweep the band inside scratch.
            for step in 0..b {
                let valid = chunk + (b - step) - 1;
                for x in 0..valid as u64 {
                    h.touch(base::SCRATCH + x * W);
                    h.touch(base::SCRATCH + (x + 1) * W);
                    h.touch(base::SCRATCH + x * W);
                    h.op(6);
                }
            }
            for x in 0..chunk as u64 {
                h.touch(base::SCRATCH + x * W);
                h.touch(base::NEXT + (offset as u64 + x) * W);
            }
            offset += chunk;
        }
        i_hi = i_lo;
    }
    h.report()
}

/// One radix-2 FFT of complex length `n` over the buffer at `buf`:
/// `log2 n` butterfly passes, each touching every complex element twice.
fn trace_fft_transform(h: &mut Hierarchy, buf: u64, n: usize) {
    let mut len = 1;
    while len < n {
        let block = 2 * len;
        let blocks = n / block;
        for b in 0..blocks as u64 {
            for j in 0..len as u64 {
                let lo = buf + (b * block as u64 + j) * 16;
                let hi = buf + (b * block as u64 + j + len as u64) * 16;
                h.touch(lo);
                h.touch(hi);
                h.touch(lo);
                h.touch(hi);
                h.op(10); // complex mul + add + sub
            }
        }
        len = block;
    }
}

/// One linear advance by `h_steps` over a segment of `len` cells, as the
/// stencil engine performs it: pack, forward FFT, pointwise power-multiply,
/// inverse FFT, unpack.
fn trace_fft_advance(h: &mut Hierarchy, len: usize, _h_steps: u64) {
    let n = len.next_power_of_two().max(2);
    for x in 0..len as u64 {
        h.touch(base::ROW + x * W);
        h.touch(base::FFT_A + x * 16);
    }
    trace_fft_transform(h, base::FFT_A, n);
    for x in 0..n as u64 {
        h.touch(base::FFT_A + x * 16);
        h.touch(base::FFT_B + x * 16);
        h.op(20); // complex power + multiply
    }
    trace_fft_transform(h, base::FFT_A, n);
    for x in 0..len as u64 {
        h.touch(base::FFT_A + x * 16);
        h.touch(base::ROW + x * W);
    }
}

/// Structural replay of the trapezoid driver: red width `red`, cone height
/// `t`, kernel span `span`, base-case cutoff 8.
pub fn trace_fft_pricer(t: usize, span: usize) -> SimReport {
    let mut h = Hierarchy::skylake();
    let red0 = (t / 2).max(16); // stationary-boundary approximation
    fn advance(h: &mut Hierarchy, red: usize, steps: u64, span: usize) {
        let mut remaining = steps;
        while remaining > 0 {
            if remaining <= 8 {
                // Base case: naive rows over the red window.
                for _ in 0..remaining {
                    for x in 0..red as u64 {
                        for m in 0..=span as u64 {
                            h.touch(base::ROW + (x + m) * W);
                        }
                        h.touch(base::ROW + x * W);
                        h.op(2 * (span as u64 + 1) + 2);
                    }
                }
                return;
            }
            let h1_cap = ((red.saturating_sub(2)) / span + 1).max(1) as u64;
            let h1 = (remaining / 2).min(h1_cap).max(1);
            // Bulk FFT over the certified-red prefix.
            trace_fft_advance(h, red + span * h1 as usize, h1);
            // Boundary-window recursion of half height.
            let window = (span as u64 * h1) as usize + 1;
            advance(h, window.min(red), h1, span);
            remaining -= h1;
        }
    }
    advance(&mut h, red0, t as u64, span);
    h.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_access_count_is_quadratic() {
        let r1 = trace_naive(256, 1, |i| i + 1);
        let r2 = trace_naive(512, 1, |i| i + 1);
        // Accesses per cell = span+2 = 3; cells = T(T+1)/2.
        assert_eq!(r1.accesses, 3 * 256 * 257 / 2);
        let ratio = r2.accesses as f64 / r1.accesses as f64;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn tiled_misses_fewer_than_naive_at_scale() {
        let t = 4096;
        let naive = trace_naive(t, 1, |i| i + 1);
        let tiled = trace_tiled(t, 128, 2048);
        assert!(
            tiled.l1_misses * 4 < naive.l1_misses,
            "tiled {} vs naive {}",
            tiled.l1_misses,
            naive.l1_misses
        );
    }

    #[test]
    fn fft_pricer_accesses_subquadratic() {
        let a = trace_fft_pricer(1024, 1);
        let b = trace_fft_pricer(4096, 1);
        let ratio = b.accesses as f64 / a.accesses as f64;
        // T log² T growth: 4× T ⇒ well under 16× (quadratic) growth.
        assert!(ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn fft_pricer_misses_far_below_naive() {
        let t = 4096;
        let naive = trace_naive(t, 1, |i| i + 1);
        let fft = trace_fft_pricer(t, 1);
        assert!(
            fft.l1_misses * 2 < naive.l1_misses,
            "fft {} vs naive {}",
            fft.l1_misses,
            naive.l1_misses
        );
    }

    #[test]
    fn trinomial_span_supported() {
        let r = trace_naive(128, 2, |i| 2 * i + 1);
        assert!(r.accesses > 0 && r.ops > 0);
        let f = trace_fft_pricer(512, 2);
        assert!(f.accesses > 0);
    }
}
