//! Fixture: MutexGuards held across blocking operations.
//! Expected: 3 `lock-discipline` findings.

use std::sync::{Condvar, Mutex, MutexGuard};

pub fn send_under_guard(m: &Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let state = m.lock().unwrap();
    tx.send(*state).ok();
}

pub fn io_under_guard(m: &Mutex<i32>, out: &mut dyn std::io::Write) {
    let state = lock_unpoisoned(m);
    out.flush().ok();
    let _ = state;
}

pub fn wait_past_guard(m: &Mutex<i32>, cv: &Condvar, other: MutexGuard<'_, i32>) {
    let state = m.lock().unwrap();
    let _ = cv.wait(other);
    let _ = state;
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
