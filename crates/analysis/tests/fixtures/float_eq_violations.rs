//! Fixture: raw float comparisons in numeric code.
//! Expected: 3 `float-eq` findings.

pub fn f(x: f64, n: usize) -> bool {
    let zero = x == 0.0;
    let cast = x != n as f64;
    let path = x == f64::MAX;
    zero || cast || path
}
