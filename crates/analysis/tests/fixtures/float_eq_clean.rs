//! Fixture: disciplined float comparison — `to_bits` identity, explicit
//! tolerance, integer comparisons, and one annotated exact-zero sentinel.
//! Expected: no findings.

pub fn f(a: f64, b: f64, span: usize) -> f64 {
    if a.to_bits() == b.to_bits() {
        return 1.0;
    }
    if (a - b).abs() < 1e-12 {
        return 2.0;
    }
    if span == 1 {
        return 3.0;
    }
    // amopt-lint: allow(float-eq) -- exact structural zero is a documented identity, not a tolerance check
    if a == 0.0 {
        return 4.0;
    }
    0.0
}
