//! Fixture twin: the same metric-record shape done the zero-alloc way —
//! fixed-size state mutated in place, nothing allocated per observation.
//! Expected: no findings.

pub struct Cell {
    pub count: u64,
    pub sum: u64,
}

// amopt-lint: hot-path
pub fn record(cells: &mut [Cell], bucket: usize, value: u64) -> u64 {
    if let Some(cell) = cells.get_mut(bucket) {
        cell.count += 1;
        cell.sum = cell.sum.saturating_add(value);
    }
    value
}
