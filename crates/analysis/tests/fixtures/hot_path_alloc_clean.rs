//! Fixture: allocation outside hot regions, allowed sites inside them, and
//! test code are all exempt.  Expected: no findings, no unused allows.

pub fn cold(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}

// amopt-lint: hot-path
pub fn hot(xs: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    for v in xs {
        acc += v;
    }
    // amopt-lint: allow(hot-path-alloc) -- single output vector per call, kept by the caller
    xs.iter().map(|v| v / acc).collect()
}

#[cfg(test)]
mod tests {
    // amopt-lint: hot-path
    fn scratch() -> Vec<u8> {
        Vec::new()
    }
}
