//! Fixture: the reachable-panic idioms banned from service code.
//! Expected: 6 `panic-surface` findings.

pub fn f(v: Vec<i32>, m: std::collections::HashMap<i32, i32>) -> i32 {
    let a = v.first().unwrap();
    let b = m.get(&1).expect("present");
    if v.is_empty() {
        panic!("empty");
    }
    match *a {
        0 => unreachable!(),
        _ => {}
    }
    v[0] + *b
}

pub fn swallows_panics(v: Vec<i32>) -> i32 {
    // Unmarked `catch_unwind`: only the designated worker-pool batch
    // boundary may swallow panics.
    std::panic::catch_unwind(|| f(v, Default::default())).unwrap_or(0)
}
