//! Fixture: the reachable-panic idioms banned from service code.
//! Expected: 5 `panic-surface` findings.

pub fn f(v: Vec<i32>, m: std::collections::HashMap<i32, i32>) -> i32 {
    let a = v.first().unwrap();
    let b = m.get(&1).expect("present");
    if v.is_empty() {
        panic!("empty");
    }
    match *a {
        0 => unreachable!(),
        _ => {}
    }
    v[0] + *b
}
