//! Fixture: sanctioned guard usage — waits that consume the guard, explicit
//! drops before blocking, block scoping, and consuming lock chains.
//! Expected: no findings.

use std::sync::{Condvar, Mutex, MutexGuard};

pub fn wait_through_guard(m: &Mutex<i32>, cv: &Condvar) {
    let mut state = m.lock().unwrap();
    while *state == 0 {
        state = cv.wait(state).unwrap();
    }
}

pub fn drop_before_send(m: &Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let state = m.lock().unwrap();
    let snapshot = *state;
    drop(state);
    tx.send(snapshot).ok();
}

pub fn block_scoped(m: &Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let snapshot = {
        let state = m.lock().unwrap();
        *state
    };
    tx.send(snapshot).ok();
}

pub fn consuming_chain(m: &Mutex<Vec<i32>>, tx: &std::sync::mpsc::SyncSender<usize>) {
    let depth = m.lock().map(|q| q.len()).unwrap_or_default();
    tx.send(depth).ok();
}

fn _keep(_g: MutexGuard<'_, i32>) {}
