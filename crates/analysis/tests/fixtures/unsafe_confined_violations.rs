//! Fixture: `unsafe` escaping the `shims/epoll` confinement boundary.
//! Expected: 4 `unsafe-confined` findings.

pub unsafe fn raw_entry_point(p: *const i32) -> i32 {
    *p
}

pub struct NotActuallySync(*mut u8);

unsafe impl Sync for NotActuallySync {}

pub fn sneaky_block() -> i32 {
    let x = 7i32;
    let p = &x as *const i32;
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_get_no_exemption() {
        let v = [1u8, 2];
        let first = unsafe { *v.as_ptr() };
        assert_eq!(first, 1);
    }
}
