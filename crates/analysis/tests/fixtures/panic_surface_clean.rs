//! Fixture: panic-free service idioms pass, tests are exempt, and an
//! annotated invariant index survives.  Expected: no findings.

pub fn f(v: Vec<i32>) -> i32 {
    let a = v.first().copied().unwrap_or(0);
    let b = v.first().copied().unwrap_or_else(|| 1);
    // amopt-lint: allow(panic-surface) -- index 0 guarded by the is_empty check above
    let c = if v.is_empty() { 0 } else { v[0] };
    a + b + c
}

pub fn worker_boundary(v: Vec<i32>) -> i32 {
    // amopt-lint: allow(panic-surface) -- designated worker-pool unwind boundary: panics isolate to one batch
    std::panic::catch_unwind(|| v.iter().sum()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
