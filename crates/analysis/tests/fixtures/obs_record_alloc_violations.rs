//! Fixture: an allocating metric-record path, modeled on `crates/obs` —
//! the zero-alloc contract says a `record`/`push` call on the hot path may
//! touch atomics only.  Expected: 3 `hot-path-alloc` findings.

pub struct Cell {
    pub count: u64,
}

// amopt-lint: hot-path
pub fn record(cells: &mut [Cell], label: &str, value: u64) -> u64 {
    // Building a per-call label buffer allocates on every observation.
    let key = label.as_bytes().to_vec();
    // So does materialising the bucket cursor...
    let hot: Vec<usize> = cells.iter().enumerate().map(|(i, _)| i).collect();
    // ...and boxing the observation for a side channel.
    let boxed = Box::new(value);
    key.len() as u64 + hot.len() as u64 + *boxed
}
