//! Fixture: malformed amopt-lint markers.
//! Expected: 3 non-allowable `marker` findings.

// amopt-lint: allow(panic-surface)
pub fn missing_reason() {}

// amopt-lint: allow(no-such-lint) -- the lint name does not exist
pub fn unknown_lint() {}

// amopt-lint: frobnicate
pub fn unknown_directive() {}
