//! Fixture: every catalogued allocation idiom inside a hot-path region.
//! Expected: 6 `hot-path-alloc` findings, no marker errors.

// amopt-lint: hot-path
pub fn hot(xs: &[f64]) -> f64 {
    let grown: Vec<f64> = Vec::new();
    let lit = vec![0.0; xs.len()];
    let copied = xs.to_vec();
    let boxed = Box::new(xs.len());
    let doubled: Vec<f64> = xs.iter().map(|v| v * 2.0).collect();
    let dup = doubled.clone();
    grown.len() as f64 + lit.len() as f64 + copied.len() as f64 + *boxed as f64 + dup.len() as f64
}
