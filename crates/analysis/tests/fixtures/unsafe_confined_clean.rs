//! Fixture: safe code that merely *talks about* unsafe.
//! Expected: 0 `unsafe-confined` findings.
//!
//! The word `unsafe` in comments, doc comments, strings, and as an
//! identifier fragment must not fire; only the keyword does.

/// Wraps the unsafe syscall surface — the wrapping itself is safe code.
pub fn count_unsafe_mentions(text: &str) -> usize {
    text.matches("unsafe").count()
}

pub fn unsafe_free_arithmetic(a: u32, b: u32) -> u32 {
    // An `unsafe_` prefix on an identifier is not the keyword.
    let unsafe_looking_total = a.saturating_add(b);
    unsafe_looking_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mentions_are_counted_safely() {
        assert_eq!(count_unsafe_mentions("unsafe unsafe"), 2);
        assert_eq!(unsafe_free_arithmetic(u32::MAX, 1), u32::MAX);
    }
}
