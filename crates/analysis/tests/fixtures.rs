//! Fixture-corpus integration tests: each lint fires on its violation
//! fixture with the expected count and stays silent on its clean twin, and
//! the workspace itself — the real gate — checks out clean.
//!
//! The `fixtures/` directory is in the workspace walker's skip list, so the
//! deliberately broken files never leak into the production gate.

use amopt_analysis::{check_file, check_workspace, lints_for, CheckReport};
use std::path::Path;

fn run_fixture(name: &str, lints: &[&str]) -> CheckReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let mut report = CheckReport::default();
    check_file(Path::new(name), text, lints, &mut report);
    report
}

fn assert_all_lint(report: &CheckReport, lint: &str, count: usize, name: &str) {
    assert_eq!(report.findings.len(), count, "{name}: {:#?}", report.findings);
    for f in &report.findings {
        assert_eq!(f.lint, lint, "{name}: {f:?}");
    }
}

#[test]
fn hot_path_alloc_fixture_pair() {
    let bad = run_fixture("hot_path_alloc_violations.rs", &["hot-path-alloc"]);
    assert_all_lint(&bad, "hot-path-alloc", 6, "hot_path_alloc_violations");
    let clean = run_fixture("hot_path_alloc_clean.rs", &["hot-path-alloc"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn obs_record_alloc_fixture_pair() {
    // The zero-alloc observability contract: a metric-record call that
    // allocates inside a hot-path region is a gate failure, and the
    // atomics-only twin is clean.
    let bad = run_fixture("obs_record_alloc_violations.rs", &["hot-path-alloc"]);
    assert_all_lint(&bad, "hot-path-alloc", 3, "obs_record_alloc_violations");
    let clean = run_fixture("obs_record_alloc_clean.rs", &["hot-path-alloc"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn panic_surface_fixture_pair() {
    let bad = run_fixture("panic_surface_violations.rs", &["panic-surface"]);
    assert_all_lint(&bad, "panic-surface", 6, "panic_surface_violations");
    let clean = run_fixture("panic_surface_clean.rs", &["panic-surface"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn float_eq_fixture_pair() {
    let bad = run_fixture("float_eq_violations.rs", &["float-eq"]);
    assert_all_lint(&bad, "float-eq", 3, "float_eq_violations");
    let clean = run_fixture("float_eq_clean.rs", &["float-eq"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn lock_discipline_fixture_pair() {
    let bad = run_fixture("lock_discipline_violations.rs", &["lock-discipline"]);
    assert_all_lint(&bad, "lock-discipline", 3, "lock_discipline_violations");
    let clean = run_fixture("lock_discipline_clean.rs", &["lock-discipline"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn unsafe_confined_fixture_pair() {
    let bad = run_fixture("unsafe_confined_violations.rs", &["unsafe-confined"]);
    assert_all_lint(&bad, "unsafe-confined", 4, "unsafe_confined_violations");
    let clean = run_fixture("unsafe_confined_clean.rs", &["unsafe-confined"]);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert!(clean.unused_allows.is_empty(), "{:#?}", clean.unused_allows);
}

#[test]
fn marker_grammar_errors_are_not_allowable() {
    // Run with *no* lints enabled: grammar errors must surface regardless.
    let bad = run_fixture("marker_grammar_violations.rs", &[]);
    assert_all_lint(&bad, "marker", 3, "marker_grammar_violations");
}

#[test]
fn fixture_paths_would_route_like_their_home_crates() {
    // The fixtures model code from specific workspace locations; the path
    // router must apply the lints the fixtures exercise.
    assert!(lints_for("crates/service/src/queue.rs").contains(&"panic-surface"));
    assert!(lints_for("crates/service/src/queue.rs").contains(&"lock-discipline"));
    assert!(lints_for("crates/obs/src/registry.rs").contains(&"lock-discipline"));
    assert!(lints_for("crates/fft/src/convolve.rs").contains(&"float-eq"));
    assert!(lints_for("crates/stencil/src/advance.rs").contains(&"hot-path-alloc"));
    assert!(lints_for("crates/service/src/reactor.rs").contains(&"unsafe-confined"));
    assert!(!lints_for("shims/epoll/src/lib.rs").contains(&"unsafe-confined"));
}

#[test]
fn workspace_is_clean() {
    // The production gate: the repository this crate lives in has zero
    // violations and zero stale allow markers.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = check_workspace(&root).expect("workspace scan");
    assert!(report.findings.is_empty(), "workspace has lint violations:\n{:#?}", report.findings);
    assert!(
        report.unused_allows.is_empty(),
        "workspace has stale allow markers:\n{:#?}",
        report.unused_allows
    );
    assert!(report.files_scanned > 50, "suspiciously few files: {}", report.files_scanned);
}
