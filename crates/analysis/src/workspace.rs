//! The workspace driver: walks the repository, decides which lints apply to
//! which files, runs them, and filters findings through the allow markers.

use crate::lints::{self, Finding};
use crate::source::{AllowScope, SourceFile};
use std::path::{Path, PathBuf};

/// Where each lint looks, as workspace-relative path prefixes (always `/`
/// separated, also on Windows).  `hot-path-alloc` is marker-driven and runs
/// everywhere; the marker grammar itself is validated everywhere too.
const PANIC_SURFACE_SCOPE: &[&str] = &["crates/service/src/"];
/// `crates/obs/src/` is in scope: the metrics/journal record paths run
/// inside the service's hot loops, so the same lock rules apply there.
const LOCK_DISCIPLINE_SCOPE: &[&str] = &["crates/service/src/", "crates/obs/src/"];
const FLOAT_EQ_SCOPE: &[&str] =
    &["crates/core/src/", "crates/fft/src/", "crates/stencil/src/", "crates/cachesim/src/"];
/// The one place `unsafe` may live: everywhere *else* gets `unsafe-confined`.
const UNSAFE_EXEMPT_SCOPE: &[&str] = &["shims/epoll/"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// A completed check: gate-failing findings plus advisory notes.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Violations (non-empty ⇒ the gate fails).
    pub findings: Vec<Finding>,
    /// Advisory only: allow markers that suppressed nothing.
    pub unused_allows: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Lints that apply to a workspace-relative path.
pub fn lints_for(rel: &str) -> Vec<&'static str> {
    let mut lints = vec!["hot-path-alloc"];
    if PANIC_SURFACE_SCOPE.iter().any(|p| rel.starts_with(p)) {
        lints.push("panic-surface");
    }
    if FLOAT_EQ_SCOPE.iter().any(|p| rel.starts_with(p)) {
        lints.push("float-eq");
    }
    if LOCK_DISCIPLINE_SCOPE.iter().any(|p| rel.starts_with(p)) {
        lints.push("lock-discipline");
    }
    if !UNSAFE_EXEMPT_SCOPE.iter().any(|p| rel.starts_with(p)) {
        lints.push("unsafe-confined");
    }
    lints
}

/// Checks the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<CheckReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = CheckReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&path)?;
        check_file(Path::new(&rel), text, &lints_for(&rel), &mut report);
    }
    report.findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

/// Lints one file's text with an explicit lint set, appending to `report`.
/// Marker-grammar errors always count; allow markers filter the rest.
pub fn check_file(path: &Path, text: String, lints: &[&str], report: &mut CheckReport) {
    report.files_scanned += 1;
    let mut marker_findings = Vec::new();
    let file = SourceFile::new(path, text, &mut marker_findings);
    report.findings.append(&mut marker_findings);

    let mut raw = Vec::new();
    lints::run_lints(&file, lints, &mut raw);

    let mut used = vec![false; file.allows.len()];
    'finding: for f in raw {
        for (i, allow) in file.allows.iter().enumerate() {
            if !allow.lints.iter().any(|l| l == f.lint) {
                continue;
            }
            let hit = match allow.scope {
                AllowScope::Line(line) => line == f.line,
                AllowScope::Range(s, e) => {
                    // Compare by the finding's line-start offset so a
                    // finding anywhere on a covered line is suppressed.
                    let offset = line_start_offset(&file, f.line);
                    (s..e).contains(&offset)
                }
            };
            if hit {
                used[i] = true;
                continue 'finding;
            }
        }
        report.findings.push(f);
    }
    for (allow, used) in file.allows.iter().zip(&used) {
        if !used {
            report.unused_allows.push(Finding {
                lint: "marker",
                path: file.path.clone(),
                line: allow.marker_line,
                col: 1,
                message: format!(
                    "allow({}) suppressed nothing — stale marker? ({})",
                    allow.lints.join(", "),
                    allow.reason
                ),
            });
        }
    }
}

fn line_start_offset(file: &SourceFile, line: u32) -> usize {
    // Find any token on that line; fall back to 0.
    file.tokens.iter().find(|t| file.line_of(t.start) == line).map(|t| t.start).unwrap_or(0)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_scopes_route_the_right_lints() {
        assert!(lints_for("crates/service/src/queue.rs").contains(&"panic-surface"));
        assert!(lints_for("crates/service/src/queue.rs").contains(&"lock-discipline"));
        assert!(!lints_for("crates/service/src/queue.rs").contains(&"float-eq"));
        assert!(lints_for("crates/obs/src/registry.rs").contains(&"lock-discipline"));
        assert!(lints_for("crates/obs/src/journal.rs").contains(&"hot-path-alloc"));
        assert!(!lints_for("crates/obs/src/registry.rs").contains(&"panic-surface"));
        assert!(lints_for("crates/core/src/bopm/fast.rs").contains(&"float-eq"));
        assert!(!lints_for("crates/core/src/bopm/fast.rs").contains(&"panic-surface"));
        assert!(lints_for("examples/quickstart.rs") == vec!["hot-path-alloc", "unsafe-confined"]);
    }

    #[test]
    fn unsafe_confinement_exempts_only_the_epoll_shim() {
        assert!(!lints_for("shims/epoll/src/lib.rs").contains(&"unsafe-confined"));
        for rel in [
            "crates/service/src/reactor.rs",
            "crates/core/src/bopm/fast.rs",
            "examples/quote_server.rs",
            "shims/other/src/lib.rs",
        ] {
            assert!(lints_for(rel).contains(&"unsafe-confined"), "{rel}");
        }
    }

    #[test]
    fn allow_markers_suppress_and_unused_markers_are_noted() {
        let src = "\
fn f(v: Vec<i32>) -> i32 {
    // amopt-lint: hot-path
    let a = v.clone(); // amopt-lint: allow(hot-path-alloc) -- setup, not per-step
    let b = v.to_vec(); // amopt-lint: allow(panic-surface) -- wrong lint, stays unused
    a[0] + b[0]
}
";
        let mut report = CheckReport::default();
        check_file(Path::new("t.rs"), src.to_string(), &["hot-path-alloc"], &mut report);
        // `.to_vec()` is not suppressed (marker names the wrong lint).
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].lint, "hot-path-alloc");
        assert_eq!(report.unused_allows.len(), 1);
    }

    #[test]
    fn scope_allows_cover_whole_regions() {
        let src = "\
fn f(v: Vec<i32>) -> Vec<i32> {
    // amopt-lint: hot-path
    // amopt-lint: allow-scope(hot-path-alloc) -- allocating convenience wrapper
    let a = v.clone();
    let b = a.to_vec();
    b
}
";
        let mut report = CheckReport::default();
        check_file(Path::new("t.rs"), src.to_string(), &["hot-path-alloc"], &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.unused_allows.is_empty());
    }
}
