//! # amopt-analysis (`amopt-lint`)
//!
//! Workspace-native static analysis for the invariants this repository's
//! correctness and performance claims rest on — the checks that `clippy -D
//! warnings` cannot express because they are *project* rules, not Rust
//! rules:
//!
//! * **hot-path-alloc** — regions annotated `// amopt-lint: hot-path`
//!   (the trapezoid engines, `amopt_fft`, `amopt_stencil::advance_*`, the
//!   batch execute path) may not allocate (`Vec::new`, `vec!`, `.to_vec()`,
//!   `.collect()`, `Box::new`, `.clone()`) outside annotated allow sites.
//! * **panic-surface** — non-test `crates/service` code may not
//!   `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, or index slices.
//! * **float-eq** — no `==`/`!=` between visibly float-typed expressions
//!   in the numeric crates; identity is `to_bits()`, closeness is an
//!   explicit tolerance.
//! * **lock-discipline** — in `crates/service`, a `MutexGuard` must not
//!   live across a channel send, blocking I/O, or a condvar wait that does
//!   not consume that guard.
//!
//! Findings may be silenced only by an inline marker with a written reason:
//!
//! ```text
//! expr // amopt-lint: allow(<lint>[, <lint>…]) -- <reason>        (this line)
//! // amopt-lint: allow(<lint>) -- <reason>                        (next line)
//! // amopt-lint: allow-scope(<lint>) -- <reason>   (rest of enclosing scope)
//! ```
//!
//! A reasonless or mistyped marker is itself a finding, so the allowlist
//! stays reviewable.  Run it with `cargo run -p amopt-analysis -- check`;
//! the process exits non-zero on any finding, which is the CI gate.
//!
//! Like `shims/`, everything here is hand-rolled (a span-tracked lexer and
//! brace/context analysis rather than `syn`) because the build container
//! has no crates.io access — see `ARCHITECTURE.md` § "Static analysis".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;
pub mod workspace;

pub use lints::{Finding, LINT_NAMES};
pub use workspace::{check_file, check_workspace, lints_for, CheckReport};
