//! Rendering: human-readable finding lines and machine-readable JSON.

use crate::workspace::CheckReport;
use std::fmt::Write as _;

/// `path:line:col: [lint] message` — one line per finding, stable order.
pub fn human(report: &CheckReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ =
            writeln!(out, "{}:{}:{}: [{}] {}", f.path.display(), f.line, f.col, f.lint, f.message);
    }
    for f in &report.unused_allows {
        let _ = writeln!(out, "{}:{}: note: {}", f.path.display(), f.line, f.message);
    }
    let _ = writeln!(
        out,
        "amopt-lint: {} finding(s), {} unused allow(s), {} file(s) scanned",
        report.findings.len(),
        report.unused_allows.len(),
        report.files_scanned
    );
    out
}

/// One JSON document:
/// `{"findings":[{"lint":…,"file":…,"line":…,"col":…,"message":…}],…}`.
pub fn json(report: &CheckReport) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lint\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            quote(f.lint),
            quote(&f.path.display().to_string()),
            f.line,
            f.col,
            quote(&f.message)
        );
    }
    let _ = write!(
        out,
        "],\"unused_allows\":{},\"files_scanned\":{}}}",
        report.unused_allows.len(),
        report.files_scanned
    );
    out
}

/// Minimal JSON string quoting (the findings contain no exotic content,
/// but backticks, quotes, and backslashes must survive).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;
    use std::path::PathBuf;

    fn sample() -> CheckReport {
        CheckReport {
            findings: vec![Finding {
                lint: "panic-surface",
                path: PathBuf::from("crates/service/src/queue.rs"),
                line: 3,
                col: 7,
                message: "`.unwrap()` can panic \"here\"".to_string(),
            }],
            unused_allows: Vec::new(),
            files_scanned: 2,
        }
    }

    #[test]
    fn human_lines_carry_spans_and_lint_names() {
        let text = human(&sample());
        assert!(text.contains("crates/service/src/queue.rs:3:7: [panic-surface]"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_output_is_parseable_and_escaped() {
        let text = json(&sample());
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\\\"here\\\""));
        assert!(text.contains("\"files_scanned\":2"));
    }
}
