//! `amopt-lint` CLI.
//!
//! ```text
//! amopt-lint check [--json] [--root <dir>]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 on any finding, 2 on usage or
//! I/O errors.  `--root` defaults to the nearest ancestor directory whose
//! `Cargo.toml` declares `[workspace]` (so `cargo run -p amopt-analysis --
//! check` works from anywhere inside the repo).

#![forbid(unsafe_code)]

use amopt_analysis::{report, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: amopt-lint check [--json] [--root <dir>]");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`; the only command is `check`");
        return ExitCode::from(2);
    }
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("amopt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match workspace::check_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report::json(&report));
            } else {
                print!("{}", report::human(&report));
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("amopt-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor whose `Cargo.toml` contains a `[workspace]` table.
fn find_workspace_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(std::io::Error::other(
                "no workspace root found above the current directory",
            ));
        }
    }
}
