//! **unsafe-confined** — the `unsafe` keyword may appear only inside the
//! `shims/epoll` crate.
//!
//! Every other crate in the workspace carries `#![forbid(unsafe_code)]`,
//! but that attribute is self-policing: a future edit could delete the
//! line along with the code it guards and the compiler would not object.
//! This lint is the independent witness — it fires on *any* `unsafe`
//! token (blocks, `unsafe fn`, `unsafe impl`, `unsafe trait`) in a file
//! the workspace driver routes to it, and the driver routes every file
//! except those under `shims/epoll/`.  There is deliberately no
//! test-code exemption: tests have no more business dereferencing raw
//! pointers than the hot path does.
//!
//! The keyword cannot appear in a false-positive position in valid Rust
//! (`unsafe` is reserved; it is not a method or variable name), so a bare
//! token match is exact, not heuristic.  String literals and comments
//! never fire — the lexer already classified them.

use super::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Runs the lint over one file, appending findings.
pub fn unsafe_confined(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.tok(i) != "unsafe" {
            continue;
        }
        findings.push(Finding::at(
            "unsafe-confined",
            file,
            tok.start,
            "`unsafe` outside `shims/epoll`; all raw-syscall surface lives in that one \
             audited crate — wrap the need in a safe shim API instead"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let file = SourceFile::new(Path::new("t.rs"), src.to_string(), &mut findings);
        unsafe_confined(&file, &mut findings);
        findings
    }

    #[test]
    fn every_unsafe_form_is_flagged() {
        let src = "\
unsafe fn raw() {}
unsafe impl Send for X {}
fn f() {
    let p = core::ptr::null::<i32>();
    let _ = unsafe { *p };
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == "unsafe-confined"));
    }

    #[test]
    fn comments_strings_and_lookalike_idents_stay_silent() {
        let src = "\
// this comment says unsafe and must not fire
fn f() -> &'static str {
    let unsafe_count = 0; // `unsafe_count` is a different identifier
    let _ = unsafe_count;
    \"unsafe in a string\"
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_code_gets_no_exemption() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = unsafe { core::mem::zeroed::<i32>() };
    }
}
";
        assert_eq!(run(src).len(), 1, "{:?}", run(src));
    }
}
