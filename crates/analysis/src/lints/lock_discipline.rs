//! **lock-discipline** — a `MutexGuard` must not live across a channel
//! send, blocking I/O, or a condvar wait that is not taken through it.
//!
//! The service's liveness rests on a simple discipline: the queue lock is
//! held for queue surgery only.  Holding a guard across a bounded-channel
//! `send` (which blocks when the peer stalls), a socket read/write, or a
//! thread join turns backpressure into a lock convoy — every other client
//! stalls behind one slow peer.  A condvar wait is the one *sanctioned*
//! block-while-holding, and only when the wait consumes that same guard
//! (`cv.wait(guard)` / `wait_unpoisoned(&cv, guard)`).
//!
//! Guard recognition is lexical: a `let` binding whose initialiser either
//! calls the project's `lock_unpoisoned(…)` helper or ends in a
//! `.lock()`-then-unwrap chain.  The guard's scope runs to the end of its
//! enclosing block, or to an explicit `drop(guard)`.
//!
//! The reactor front end adds one more blocking edge: `Epoll::wait` parks
//! the thread until the kernel reports readiness, so a guard held across
//! `ep.wait(…)` would stall every completion callback trying to enqueue a
//! wakeup.  The method is named `wait`, so the condvar rule covers it —
//! the guard is never passed to it, hence it always flags.

use super::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Method names that block on a channel peer.
const CHANNEL_OPS: &[&str] = &["send", "recv", "send_timeout", "recv_timeout"];
/// Method names that block on I/O or another thread.
const BLOCKING_OPS: &[&str] = &[
    "read",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "flush",
    "accept",
    "connect",
    "join",
    "sleep",
];
/// Condvar waits (method and helper form).
const WAIT_OPS: &[&str] =
    &["wait", "wait_timeout", "wait_while", "wait_unpoisoned", "wait_timeout_unpoisoned"];

/// Runs the lint over one file, appending findings.
pub fn lock_discipline(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || file.tok(i) != "let" || file.in_test(toks[i].start) {
            continue;
        }
        // `let [mut] NAME = init ;` — anything fancier (tuple patterns,
        // types) is not how guards are bound in this codebase.
        let Some(mut j) = file.next_code(i) else { continue };
        if file.tok(j) == "mut" {
            let Some(n) = file.next_code(j) else { continue };
            j = n;
        }
        if toks[j].kind != TokenKind::Ident {
            continue;
        }
        let name = file.tok(j).to_string();
        let Some(eq) = file.next_code(j) else { continue };
        if file.tok(eq) != "=" {
            continue;
        }
        // Initialiser: tokens to the statement's `;` at bracket depth 0.
        let Some(semi) = stmt_end(file, eq) else { continue };
        if !init_is_guard(file, eq + 1, semi) {
            continue;
        }
        // Guard scope: from the `;` to the end of the enclosing block or an
        // explicit `drop(name)`.
        let scope_close = file.scope_end(i);
        scan_guard_scope(file, &name, semi, scope_close, findings);
    }
}

/// Token index of the `;` ending the statement whose `=` is at `eq`.
fn stmt_end(file: &SourceFile, eq: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = eq;
    while let Some(n) = file.next_code(j) {
        let t = file.tok(n);
        if file.tokens[n].kind == TokenKind::Punct {
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return Some(n),
                _ => {}
            }
        }
        j = n;
    }
    None
}

/// Whether the initialiser tokens in `(from..to)` produce a live guard:
/// a `lock_unpoisoned(…)` call, or a `.lock()` chain whose only following
/// methods are unwrap-flavoured (a `.lock().map(…)` that consumes the
/// guard inside the closure is *not* a guard binding).
fn init_is_guard(file: &SourceFile, from: usize, to: usize) -> bool {
    // A block or closure initialiser is never itself a guard binding: a
    // guard acquired inside lives (and dies) in its own scope.  The rare
    // guard-returning block `let g = { m.lock().unwrap() };` is accepted as
    // a false negative — the codebase never binds guards that way.
    let mut first = from;
    while first < to
        && matches!(file.tokens[first].kind, TokenKind::LineComment | TokenKind::BlockComment)
    {
        first += 1;
    }
    if first < to && matches!(file.tok(first), "{" | "|" | "||" | "move") {
        return false;
    }
    let mut saw_lock_at = None;
    for j in from..to {
        if file.tokens[j].kind != TokenKind::Ident {
            continue;
        }
        match file.tok(j) {
            "lock_unpoisoned" if file.next_code(j).map(|n| file.tok(n)) == Some("(") => {
                // The binding holds the guard only when the call *is* the
                // initialiser: passed inline into another call — e.g.
                // `std::mem::take(&mut *lock_unpoisoned(&m))` — the
                // temporary guard dies at the statement's `;`.
                return call_spans_init(file, j, from, to);
            }
            "lock"
                if file.prev_code(j).map(|p| file.tok(p)) == Some(".")
                    && file.next_code(j).map(|n| file.tok(n)) == Some("(") =>
            {
                saw_lock_at = Some(j);
            }
            _ => {}
        }
    }
    let Some(lock_at) = saw_lock_at else { return false };
    // Every method call after `.lock()` must be unwrap-flavoured for the
    // binding to still be the guard itself.
    for j in lock_at + 1..to {
        if file.tokens[j].kind == TokenKind::Ident
            && file.prev_code(j).map(|p| file.tok(p)) == Some(".")
            && file.next_code(j).map(|n| file.tok(n)) == Some("(")
            && !matches!(file.tok(j), "unwrap" | "expect" | "unwrap_or_else")
        {
            return false;
        }
    }
    true
}

/// Whether the call whose name token is at `name_tok` makes up the whole
/// initialiser `(from..to)`: only a path prefix (`crate::sync::` …) before
/// the name, and the call's closing `)` is the initialiser's last token.
fn call_spans_init(file: &SourceFile, name_tok: usize, from: usize, to: usize) -> bool {
    // Before the name: idents and `::` only.
    let mut j = from;
    while j < name_tok {
        match file.tokens[j].kind {
            TokenKind::Ident => {}
            TokenKind::Punct if file.tok(j) == "::" => {}
            TokenKind::LineComment | TokenKind::BlockComment => {}
            _ => return false,
        }
        j += 1;
    }
    // After the name: the matching `)` must close right before `to`.
    let Some(open) = file.next_code(name_tok) else { return false };
    let mut depth = 0i64;
    let mut k = open;
    loop {
        if file.tokens[k].kind == TokenKind::Punct {
            match file.tok(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return file.next_code(k) == Some(to);
                    }
                }
                _ => {}
            }
        }
        match file.next_code(k) {
            Some(n) if n < to => k = n,
            _ => return false,
        }
    }
}

/// Scans a guard's live range for blocking operations.
fn scan_guard_scope(
    file: &SourceFile,
    guard: &str,
    from_tok: usize,
    scope_close_byte: usize,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut j = from_tok;
    while let Some(n) = file.next_code(j) {
        j = n;
        if toks[n].start >= scope_close_byte {
            return;
        }
        if toks[n].kind != TokenKind::Ident {
            continue;
        }
        let name = file.tok(n);
        let next_is_call = file.next_code(n).map(|m| file.tok(m)) == Some("(");
        if !next_is_call {
            continue;
        }
        // `drop(guard)` ends the live range.
        if name == "drop" && first_args_contain(file, n, guard) {
            return;
        }
        let is_method = file.prev_code(n).map(|p| file.tok(p)) == Some(".");
        if WAIT_OPS.contains(&name) && first_args_contain(file, n, guard) {
            // Sanctioned: the wait consumes and re-acquires this guard.
            continue;
        }
        if WAIT_OPS.contains(&name) && (is_method || name.ends_with("_unpoisoned")) {
            findings.push(Finding::at(
                "lock-discipline",
                file,
                toks[n].start,
                format!(
                    "condvar `{name}` while `{guard}` is held but not passed to it; a wait \
                     that does not release the guard deadlocks its waker"
                ),
            ));
            continue;
        }
        if is_method && CHANNEL_OPS.contains(&name) {
            findings.push(Finding::at(
                "lock-discipline",
                file,
                toks[n].start,
                format!(
                    "channel `.{name}()` while `MutexGuard` `{guard}` is held; a blocked peer \
                     turns this lock into a convoy — drop the guard first"
                ),
            ));
        } else if is_method && BLOCKING_OPS.contains(&name) {
            findings.push(Finding::at(
                "lock-discipline",
                file,
                toks[n].start,
                format!(
                    "blocking `.{name}()` while `MutexGuard` `{guard}` is held; \
                     drop the guard before blocking"
                ),
            ));
        }
    }
}

/// Whether the call whose name token is at `name_tok` mentions `guard`
/// among its immediate argument tokens.
fn first_args_contain(file: &SourceFile, name_tok: usize, guard: &str) -> bool {
    let Some(open) = file.next_code(name_tok) else { return false };
    let mut depth = 0i64;
    let mut j = open;
    loop {
        let t = file.tok(j);
        if file.tokens[j].kind == TokenKind::Punct {
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if file.tokens[j].kind == TokenKind::Ident && t == guard {
            return true;
        }
        match file.next_code(j) {
            Some(n) => j = n,
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let file = SourceFile::new(Path::new("t.rs"), src.to_string(), &mut findings);
        lock_discipline(&file, &mut findings);
        findings
    }

    #[test]
    fn send_and_io_under_a_guard_are_flagged() {
        let src = "\
fn f(m: &std::sync::Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let state = m.lock().unwrap();
    tx.send(*state).ok();
}
fn g(m: &std::sync::Mutex<i32>, out: &mut dyn std::io::Write) {
    let state = lock_unpoisoned(m);
    out.flush().ok();
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("send"));
        assert!(findings[1].message.contains("flush"));
    }

    #[test]
    fn wait_through_the_guard_is_sanctioned_wait_past_it_is_not() {
        let src = "\
fn ok(m: &std::sync::Mutex<i32>, cv: &std::sync::Condvar) {
    let mut state = m.lock().unwrap();
    state = cv.wait(state).unwrap();
    let _ = state;
}
fn bad(m: &std::sync::Mutex<i32>, cv: &std::sync::Condvar, other: std::sync::MutexGuard<i32>) {
    let state = m.lock().unwrap();
    let _ = cv.wait(other);
    let _ = state;
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("not passed"));
    }

    #[test]
    fn epoll_wait_under_a_guard_is_flagged() {
        // The reactor's event-loop shape: draining the completion ready
        // list must not hold the list lock into the kernel wait.
        let src = "\
fn bad_loop(ready: &std::sync::Mutex<Vec<u64>>, ep: &Epoll, events: &mut Events) {
    let queued = lock_unpoisoned(ready);
    ep.wait(events, None).ok();
    let _ = queued;
}
fn good_loop(ready: &std::sync::Mutex<Vec<u64>>, ep: &Epoll, events: &mut Events) {
    let queued = std::mem::take(&mut *lock_unpoisoned(ready));
    let _ = queued;
    ep.wait(events, None).ok();
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wait"));
    }

    #[test]
    fn dropping_the_guard_ends_its_scope() {
        let src = "\
fn f(m: &std::sync::Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let state = m.lock().unwrap();
    drop(state);
    tx.send(1).ok();
}
fn block_scoped(m: &std::sync::Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    {
        let state = m.lock().unwrap();
        let _ = *state;
    }
    tx.send(1).ok();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn inline_lock_unpoisoned_consumed_by_another_call_is_not_a_binding() {
        let src = "\
fn f(m: &std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let drained = std::mem::take(&mut *lock_unpoisoned(m));
    for handle in drained {
        let _ = handle.join();
    }
}
fn g(m: &std::sync::Mutex<i32>, out: &mut dyn std::io::Write) {
    let guard = crate::sync::lock_unpoisoned(m);
    out.flush().ok();
    let _ = guard;
}
";
        let findings = run(src);
        // `g`'s path-qualified binding is still a guard; `f`'s inline
        // temporary dies at the `;` and must not be.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("flush"));
    }

    #[test]
    fn block_and_closure_initialisers_are_not_guard_bindings() {
        let src = "\
fn f(m: &std::sync::Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let snapshot = {
        let state = m.lock().unwrap();
        *state
    };
    tx.send(snapshot).ok();
}
fn g(m: &'static std::sync::Mutex<i32>, tx: &std::sync::mpsc::SyncSender<i32>) {
    let read = move || *m.lock().unwrap();
    tx.send(read()).ok();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn consuming_lock_chains_are_not_guard_bindings() {
        let src = "\
fn f(m: &std::sync::Mutex<Vec<i32>>, tx: &std::sync::mpsc::SyncSender<usize>) {
    let depth = m.lock().map(|q| q.len()).unwrap_or_default();
    tx.send(depth).ok();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
