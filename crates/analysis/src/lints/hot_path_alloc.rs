//! **hot-path-alloc** — no heap allocation in `// amopt-lint: hot-path`
//! regions.
//!
//! ROADMAP open item 5 ("allocation-free, cache-tuned hot path") is only
//! checkable if allocation sites are machine-visible.  A region annotated
//! `hot-path` may not call the allocating idioms below; every remaining
//! allocation must carry an allow marker whose reason explains why it is
//! acceptable (one-time setup, O(batch) not O(steps), kept output rows).
//! The allow inventory *is* the deliverable: it is the work list the row
//! arena of ROADMAP item 5 must drain.
//!
//! Flagged (outside `#[cfg(test)]`):
//! * `Vec::new` / `vec![…]` (zero-capacity today is a growth site tomorrow)
//! * `.to_vec()`
//! * `.collect()` / `.collect::<…>()`
//! * `Box::new`
//! * `.clone()` method calls (the refcount bump `Arc::clone(&x)` written in
//!   path form is deliberately *not* flagged)

use super::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Runs the lint over one file, appending findings.
pub fn hot_path_alloc(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, &t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !file.in_hot(t.start) || file.in_test(t.start) {
            continue;
        }
        let next = file.next_code(i).map(|j| file.tok(j));
        let report = |findings: &mut Vec<Finding>, what: &str| {
            findings.push(Finding::at(
                "hot-path-alloc",
                file,
                t.start,
                format!(
                    "`{what}` allocates inside a hot-path region; reuse scratch/arena storage \
                     or annotate the site with a reason"
                ),
            ));
        };
        match file.tok(i) {
            "vec" if next == Some("!") => report(findings, "vec!"),
            // `Vec::new` / `Box::new` path calls.
            "Vec" | "Box" if next == Some("::") => {
                let j = file.next_code(i).and_then(|j| file.next_code(j));
                if j.map(|j| file.tok(j)) == Some("new") {
                    report(findings, &format!("{}::new", file.tok(i)));
                }
            }
            "to_vec" | "collect" | "clone" => {
                // Method-call form only: `.name(` or `.name::<…>(`.
                let prev_is_dot = file.prev_code(i).map(|p| file.tok(p)) == Some(".");
                let called = matches!(next, Some("(") | Some("::"));
                if prev_is_dot && called {
                    report(findings, &format!(".{}()", file.tok(i)));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let file = SourceFile::new(Path::new("t.rs"), src.to_string(), &mut findings);
        hot_path_alloc(&file, &mut findings);
        findings
    }

    #[test]
    fn flags_every_catalogued_idiom_inside_a_hot_region() {
        let src = "\
// amopt-lint: hot-path
fn f(xs: &[f64]) {
    let a = Vec::new();
    let b = vec![1.0; 4];
    let c = xs.to_vec();
    let d: Vec<f64> = xs.iter().copied().collect();
    let e = Box::new(3);
    let g = d.clone();
}
";
        let lints: Vec<&str> = run(src).iter().map(|f| f.lint).collect();
        assert_eq!(lints.len(), 6, "{:?}", run(src));
    }

    #[test]
    fn cold_code_and_tests_are_exempt() {
        let src = "\
fn cold() { let a = Vec::new(); }
fn hot() {
    // amopt-lint: hot-path
    let x = 1;
}
#[cfg(test)]
mod tests {
    // amopt-lint: hot-path
    fn t() { let a = Vec::new(); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn arc_clone_path_form_is_not_an_allocation() {
        let src = "\
// amopt-lint: hot-path
fn f(x: &std::sync::Arc<i32>) {
    let y = std::sync::Arc::clone(x);
    let z = collect_stats();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let src = "// amopt-lint: hot-path\nfn f(xs: &[i32]) { let v = xs.iter().collect::<Vec<_>>(); }\n";
        assert_eq!(run(src).len(), 1);
    }
}
