//! **panic-surface** — no reachable panics in the service layer.
//!
//! `crates/service` is the front door under traffic: a panic in a worker or
//! connection thread silently drops every request behind it.  Non-test
//! service code may not use:
//!
//! * `.unwrap()` / `.expect(…)` (`unwrap_or_else` and friends are fine)
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * slice/array index expressions `x[i]` (use `.get(…)` or carry an allow
//!   marker whose reason names the bounds guarantee)
//! * `catch_unwind(…)` — swallowing panics anywhere but the one designated
//!   worker-pool batch boundary hides real bugs and risks poisoned state;
//!   the boundary carries an allow marker whose reason names it
//!
//! Lock-poison handling goes through the documented
//! `sync::lock_unpoisoned` helper rather than per-site `.unwrap()`.

use super::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the lint over one file, appending findings.
pub fn panic_surface(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = toks[i];
        if file.in_test(t.start) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let name = file.tok(i);
                let next = file.next_code(i).map(|j| file.tok(j));
                if matches!(name, "unwrap" | "expect")
                    && file.prev_code(i).map(|p| file.tok(p)) == Some(".")
                    && next == Some("(")
                {
                    findings.push(Finding::at(
                        "panic-surface",
                        file,
                        t.start,
                        format!(
                            "`.{name}()` can panic a service thread; return the error \
                             (`ServiceError`/`io::Error`) or annotate the invariant"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&name) && next == Some("!") {
                    findings.push(Finding::at(
                        "panic-surface",
                        file,
                        t.start,
                        format!("`{name}!` in service code panics the worker; return an error"),
                    ));
                } else if name == "catch_unwind" && next == Some("(") {
                    findings.push(Finding::at(
                        "panic-surface",
                        file,
                        t.start,
                        "`catch_unwind` is reserved for the designated worker-pool batch \
                         boundary; annotate that one site (reason naming the boundary) or \
                         let the panic propagate"
                            .to_string(),
                    ));
                }
            }
            TokenKind::Punct if file.tok(i) == "[" => {
                // Index expression: `[` directly following a value-ish
                // token.  Array literals (`= [0; 8]`), types (`: [u8; 4]`),
                // attributes (`#[…]`) and macro brackets (`vec![…]`) all
                // follow non-value tokens and are not flagged.
                let Some(p) = file.prev_code(i) else { continue };
                let prev = &toks[p];
                let value_ish = match prev.kind {
                    TokenKind::Ident => {
                        // An ident directly before `[` is a value unless it
                        // is a keyword (`return [`, `in [`, …).
                        !matches!(
                            file.tok(p),
                            "return"
                                | "in"
                                | "if"
                                | "else"
                                | "match"
                                | "break"
                                | "mut"
                                | "dyn"
                                | "pub"
                                | "const"
                                | "static"
                        )
                    }
                    TokenKind::Punct => matches!(file.tok(p), ")" | "]" | "?"),
                    // Tuple-field indexing: `pair.0[i]`.
                    TokenKind::Int | TokenKind::Str => true,
                    _ => false,
                };
                if value_ish {
                    findings.push(Finding::at(
                        "panic-surface",
                        file,
                        t.start,
                        "index expression can panic on out-of-bounds; use `.get(…)` or \
                         annotate the bounds guarantee"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let file = SourceFile::new(Path::new("t.rs"), src.to_string(), &mut findings);
        panic_surface(&file, &mut findings);
        findings
    }

    #[test]
    fn flags_unwrap_expect_macros_and_indexing() {
        let src = "\
fn f(v: Vec<i32>, m: std::collections::HashMap<i32, i32>) -> i32 {
    let a = v.first().unwrap();
    let b = m.get(&1).expect(\"present\");
    if v.is_empty() { panic!(\"empty\"); }
    match *a { 0 => unreachable!(), _ => {} }
    v[0]
}
";
        let lints: Vec<&str> = run(src).iter().map(|f| f.lint).collect();
        assert_eq!(lints.len(), 5, "{:?}", run(src));
    }

    #[test]
    fn catch_unwind_outside_the_designated_boundary_is_flagged() {
        let src = "\
fn f() {
    let _ = std::panic::catch_unwind(|| risky());
}
use std::panic::{catch_unwind, AssertUnwindSafe};
";
        let findings = run(src);
        // The call is flagged; the `use` item (no following `(`) is not.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("worker-pool batch"), "{findings:?}");
    }

    #[test]
    fn non_panicking_lookalikes_pass() {
        let src = "\
fn f(v: Vec<i32>) -> i32 {
    let a = v.first().copied().unwrap_or(0);
    let b = v.first().copied().unwrap_or_else(|| 1);
    let cable: [i32; 2] = [0; 2];
    let s = &v[..];
    let t: &[i32] = &[1, 2];
    a + b + s.first().copied().unwrap_or_default()
}
";
        let findings = run(src);
        // `&v[..]` is a real index expression (it can panic for ranges) —
        // everything else passes.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("index"));
    }

    #[test]
    fn tests_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"boom\"); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn attributes_array_types_and_macro_brackets_pass() {
        let src = "\
#[derive(Debug)]
struct S { a: [u8; 4] }
pub struct Hist(pub [u64; 16]);
fn f() -> Vec<i32> { vec![1, 2] }
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
