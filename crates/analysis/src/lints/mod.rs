//! The lint catalogue: five project-specific invariant checkers plus the
//! `marker` pseudo-lint for `// amopt-lint:` grammar errors.
//!
//! Each lint is a function over one lexed [`SourceFile`]; which files a
//! lint runs on is decided by the workspace driver (`workspace.rs`) from
//! path scopes, and by the fixture tests directly.

use crate::source::SourceFile;
use std::path::PathBuf;

mod float_eq;
mod hot_path_alloc;
mod lock_discipline;
mod panic_surface;
mod unsafe_confined;

pub use float_eq::float_eq;
pub use hot_path_alloc::hot_path_alloc;
pub use lock_discipline::lock_discipline;
pub use panic_surface::panic_surface;
pub use unsafe_confined::unsafe_confined;

/// Every lint an allow marker may name.  `marker` itself is not allowable:
/// a broken marker must always fail the gate.
pub const LINT_NAMES: &[&str] =
    &["hot-path-alloc", "panic-surface", "float-eq", "lock-discipline", "unsafe-confined"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint that fired (one of [`LINT_NAMES`], or `marker`).
    pub lint: &'static str,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what the fix direction is.
    pub message: String,
}

impl Finding {
    pub(crate) fn at(
        lint: &'static str,
        file: &SourceFile,
        offset: usize,
        message: String,
    ) -> Self {
        let (line, col) = file.line_col(offset);
        Finding { lint, path: file.path.clone(), line, col, message }
    }
}

/// Runs the named lints over one file (no path scoping, no allow
/// filtering) — the raw engine used by the driver and the fixture tests.
pub fn run_lints(file: &SourceFile, lints: &[&str], findings: &mut Vec<Finding>) {
    for lint in lints {
        match *lint {
            "hot-path-alloc" => hot_path_alloc(file, findings),
            "panic-surface" => panic_surface(file, findings),
            "float-eq" => float_eq(file, findings),
            "lock-discipline" => lock_discipline(file, findings),
            "unsafe-confined" => unsafe_confined(file, findings),
            other => unreachable!("unknown lint `{other}` requested"),
        }
    }
}
