//! **float-eq** — no `==`/`!=` between float-typed expressions in the
//! numeric crates.
//!
//! The repo's headline identity — batch-of-one is *bitwise* identical to
//! the serial path — survives only because float comparison is disciplined:
//! identity checks go through `to_bits()`, tolerance checks through
//! `(a - b).abs() < eps`.  A raw `x == y` on floats is either a disguised
//! identity check (write `to_bits`) or an accidental tolerance bug.
//!
//! Without type inference the lint is a token heuristic: a `==`/`!=` is
//! flagged when either operand *visibly* involves floats — a float literal
//! (`0.0`, `1e-5`), an `as f64`/`as f32` cast, or an `f64::`/`f32::` path.
//! Exact structural zero/sentinel checks (`rate == 0.0` short-circuits
//! that are documented identities, not tolerance checks) carry allow
//! markers.  Integer comparisons (`to_bits() == to_bits()`, `span == 1`)
//! never fire.

use super::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Tokens that delimit a comparison operand when scanning outward from the
/// operator at bracket-depth 0.
const STOPPERS: &[&str] = &[
    ",",
    ";",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "=",
    "==",
    "!=",
    "&&",
    "||",
    "=>",
    "->",
    "<",
    ">",
    "<=",
    ">=",
    "return",
    "if",
    "while",
    "match",
    "assert",
    "debug_assert",
    "let",
    "else",
    "in",
];

/// Runs the lint over one file, appending findings.
pub fn float_eq(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Punct
            || !matches!(file.tok(i), "==" | "!=")
            || file.in_test(tok.start)
        {
            continue;
        }
        let op = file.tok(i).to_string();
        if operand_is_floaty(file, i, false) || operand_is_floaty(file, i, true) {
            findings.push(Finding::at(
                "float-eq",
                file,
                tok.start,
                format!(
                    "`{op}` between float-typed expressions; compare `to_bits()` for identity \
                     or an explicit tolerance, or annotate the exact-value invariant"
                ),
            ));
        }
    }
}

/// Walks outward from the comparison operator at token `op` (left when
/// `forward` is false, right when true) until an operand boundary, and
/// reports whether the operand slice shows float evidence.
fn operand_is_floaty(file: &SourceFile, op: usize, forward: bool) -> bool {
    let mut depth = 0i64;
    let mut j = op;
    let mut prev_ident: Option<String> = None;
    loop {
        let next = if forward { file.next_code(j) } else { file.prev_code(j) };
        let Some(n) = next else { return false };
        let text = file.tok(n);
        if file.tokens[n].kind == TokenKind::Punct {
            // Bracket tracking: scanning left, a closer *opens* a nested
            // group; scanning right, an opener does.
            let (opens, closes) = if forward { ("([", ")]") } else { (")]", "([") };
            if opens.contains(text) {
                depth += 1;
            } else if closes.contains(text) {
                if depth == 0 {
                    return false; // operand boundary
                }
                depth -= 1;
            } else if depth == 0 && STOPPERS.contains(&text) {
                return false;
            }
        } else if depth == 0 && STOPPERS.contains(&text) {
            return false;
        }
        match file.tokens[n].kind {
            TokenKind::Float => return true,
            TokenKind::Ident => {
                let t = text;
                // `as f64` / `f64::NAN` / `f32::…`.
                if matches!(t, "f32" | "f64") {
                    let prior = prev_ident.as_deref();
                    let cast = if forward {
                        // moving right: `as` was seen just before `f64`
                        prior == Some("as")
                    } else {
                        // moving left: we see `f64` first; confirm `as`
                        // precedes it in source order
                        file.prev_code(n).map(|p| file.tok(p)) == Some("as")
                    };
                    let path = file.next_code(n).map(|m| file.tok(m)) == Some("::");
                    if cast || path {
                        return true;
                    }
                }
                prev_ident = Some(t.to_string());
            }
            _ => {}
        }
        j = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let file = SourceFile::new(Path::new("t.rs"), src.to_string(), &mut findings);
        float_eq(&file, &mut findings);
        findings
    }

    #[test]
    fn flags_float_literal_comparisons_both_sides() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.0 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.5 != x }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x.fract() == 0.0 }").len(), 1);
    }

    #[test]
    fn flags_casts_and_float_paths() {
        assert_eq!(run("fn f(n: usize, x: f64) -> bool { x == n as f64 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == f64::MAX }").len(), 1);
    }

    #[test]
    fn integer_and_enum_comparisons_pass() {
        let src = "\
fn f(a: u64, b: u64, span: usize, dir: bool) -> f64 {
    if a.to_bits() == b.to_bits() { return 1.0; }
    let q = if span == 1 { 2.0 } else { 1.0 };
    if dir == true { q } else { 0.0 }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn tests_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t(x: f64) { assert!(x == 0.0); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn operand_scan_stops_at_boundaries() {
        // The float literal lives in a *different* argument/statement than
        // the comparison; the scan must not leak across `,` or `;`.
        assert!(run("fn f(a: i32) { g(a == 1, 2.0); }").is_empty());
        assert!(run("fn f(a: i32) { let x = 2.0; let y = a == 1; }").is_empty());
        // Inside a call on the operand side, floats still count.
        assert_eq!(run("fn f(a: f64) -> bool { a.max(0.0) == a }").len(), 1);
    }
}
