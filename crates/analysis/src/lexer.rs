//! A span-tracked Rust lexer — the token layer every lint works on.
//!
//! This is deliberately *not* a parser: the lints need token identity,
//! adjacency, and brace structure, none of which require an AST.  The lexer
//! must however be exact about the things that would otherwise corrupt
//! token identity — string literals (including raw and byte strings),
//! char-vs-lifetime disambiguation, nested block comments, and float
//! literals — so that `bytes[pos]` inside a string is never mistaken for an
//! index expression and `1.0 == x` is never mistaken for an integer.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-5`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Line comment, including doc comments (`//`, `///`, `//!`).
    LineComment,
    /// Block comment, possibly nested (`/* … */`).
    BlockComment,
    /// Punctuation, maximal-munch joined (`==`, `::`, `->`, `{`, …).
    Punct,
}

/// One token: a kind plus its byte span in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Multi-character operators, longest first so maximal munch is a linear
/// scan.  Single characters fall through to a one-byte `Punct`.
const JOINED: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `text`.  Unterminated literals and comments are tolerated (the
/// remainder of the file becomes one token) — the linter must keep walking
/// a workspace even when one file mid-edit does not lex.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer { text, bytes: text.as_bytes(), pos: 0, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.cur_char();
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else if self.starts_with("//") {
                self.line_comment(start);
            } else if self.starts_with("/*") {
                self.block_comment(start);
            } else if let Some(len) = self.string_prefix() {
                self.string_literal(start, len);
            } else if c == '\'' {
                self.char_or_lifetime(start);
            } else if c.is_ascii_digit() {
                self.number(start);
            } else if is_ident_start(c) {
                self.ident(start);
            } else {
                self.punct(start);
            }
        }
        self.tokens
    }

    fn cur_char(&self) -> char {
        self.text[self.pos..].chars().next().unwrap_or('\0')
    }

    fn peek_char_at(&self, at: usize) -> Option<char> {
        self.text.get(at..).and_then(|s| s.chars().next())
    }

    fn starts_with(&self, pat: &str) -> bool {
        self.bytes[self.pos..].starts_with(pat.as_bytes())
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token { kind, start, end: self.pos });
    }

    fn line_comment(&mut self, start: usize) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start);
    }

    fn block_comment(&mut self, start: usize) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.starts_with("/*") {
                depth += 1;
                self.pos += 2;
            } else if self.starts_with("*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += self.cur_char().len_utf8();
            }
        }
        self.push(TokenKind::BlockComment, start);
    }

    /// If the cursor sits on a string-literal prefix (`"`, `r"`, `r#"`,
    /// `b"`, `br#"` …), returns the number of `#`s in the raw guard, or
    /// `None` when this is not a string start.  `r#ident` (raw identifier)
    /// is *not* a string and returns `None`.
    fn string_prefix(&self) -> Option<usize> {
        let rest = &self.bytes[self.pos..];
        let after = match rest {
            [b'"', ..] => return Some(0),
            [b'b', b'"', ..] => return Some(0),
            [b'r', tail @ ..] | [b'b', b'r', tail @ ..] => tail,
            _ => return None,
        };
        let hashes = after.iter().take_while(|&&b| b == b'#').count();
        (after.get(hashes) == Some(&b'"')).then_some(hashes)
    }

    fn string_literal(&mut self, start: usize, hashes: usize) {
        let raw = self.bytes[self.pos] == b'r'
            || (self.bytes[self.pos] == b'b' && self.bytes.get(self.pos + 1) == Some(&b'r'));
        // Skip the prefix up to and including the opening quote.
        while self.bytes.get(self.pos) != Some(&b'"') {
            self.pos += 1;
        }
        self.pos += 1;
        if raw {
            let close: Vec<u8> =
                std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
            while self.pos < self.bytes.len() {
                if self.bytes[self.pos..].starts_with(&close) {
                    self.pos += close.len();
                    break;
                }
                self.pos += self.cur_char().len_utf8();
            }
        } else {
            while self.pos < self.bytes.len() {
                match self.bytes[self.pos] {
                    b'\\' => self.pos += 2,
                    b'"' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += self.cur_char().len_utf8(),
                }
            }
        }
        self.push(TokenKind::Str, start);
    }

    fn char_or_lifetime(&mut self, start: usize) {
        // `'` then: escape → char literal; ident-start then `'` → char
        // literal (`'a'`); ident-start otherwise → lifetime (`'a`, `'static`).
        self.pos += 1;
        match self.peek_char_at(self.pos) {
            Some('\\') => {
                self.pos += 1;
                if self.pos < self.bytes.len() {
                    self.pos += self.cur_char().len_utf8();
                }
                // Consume to the closing quote (covers `\u{…}`).
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += self.cur_char().len_utf8();
                }
                self.pos += 1;
                self.push(TokenKind::Char, start);
            }
            Some(c) if is_ident_start(c) => {
                let after = self.pos + c.len_utf8();
                if self.peek_char_at(after) == Some('\'') {
                    self.pos = after + 1;
                    self.push(TokenKind::Char, start);
                } else {
                    self.pos = after;
                    while self.peek_char_at(self.pos).map(is_ident_continue).unwrap_or(false) {
                        self.pos += self.cur_char().len_utf8();
                    }
                    self.push(TokenKind::Lifetime, start);
                }
            }
            Some(c) if c != '\'' => {
                // Non-ident char literal: `'+'`, `'é'`.
                self.pos += c.len_utf8();
                if self.bytes.get(self.pos) == Some(&b'\'') {
                    self.pos += 1;
                }
                self.push(TokenKind::Char, start);
            }
            _ => {
                self.push(TokenKind::Punct, start);
            }
        }
    }

    fn number(&mut self, start: usize) {
        let mut kind = TokenKind::Int;
        if self.starts_with("0x") || self.starts_with("0b") || self.starts_with("0o") {
            self.pos += 2;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                self.pos += 1;
            }
            self.push(kind, start);
            return;
        }
        let digits = |b: &u8| b.is_ascii_digit() || *b == b'_';
        while self.bytes.get(self.pos).is_some_and(digits) {
            self.pos += 1;
        }
        // Fractional part: `1.0` is a float, but `1..2` is an int + range
        // and `1.max(2)` is an int + method call.
        if self.bytes.get(self.pos) == Some(&b'.') {
            let after = self.peek_char_at(self.pos + 1);
            let is_fraction = match after {
                Some(c) => c.is_ascii_digit() || !(c == '.' || is_ident_start(c)),
                None => true,
            };
            if is_fraction {
                kind = TokenKind::Float;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(digits) {
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+' | b'-')) {
                look += 1;
            }
            if self.bytes.get(look).is_some_and(u8::is_ascii_digit) {
                kind = TokenKind::Float;
                self.pos = look;
                while self.bytes.get(self.pos).is_some_and(digits) {
                    self.pos += 1;
                }
            }
        }
        // Suffix (`u64`, `f64`, …) — an `f32`/`f64` suffix floats the token.
        let suffix_start = self.pos;
        while self.peek_char_at(self.pos).map(is_ident_continue).unwrap_or(false) {
            self.pos += self.cur_char().len_utf8();
        }
        if matches!(&self.text[suffix_start..self.pos], "f32" | "f64") {
            kind = TokenKind::Float;
        }
        self.push(kind, start);
    }

    fn ident(&mut self, start: usize) {
        // `r#keyword` raw identifiers lex as one Ident token.
        if self.starts_with("r#")
            && self.peek_char_at(self.pos + 2).map(is_ident_start) == Some(true)
        {
            self.pos += 2;
        }
        while self.peek_char_at(self.pos).map(is_ident_continue).unwrap_or(false) {
            self.pos += self.cur_char().len_utf8();
        }
        self.push(TokenKind::Ident, start);
    }

    fn punct(&mut self, start: usize) {
        for op in JOINED {
            if self.starts_with(op) {
                self.pos += op.len();
                self.push(TokenKind::Punct, start);
                return;
            }
        }
        self.pos += self.cur_char().len_utf8();
        self.push(TokenKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, &src[t.start..t.end])).collect()
    }

    #[test]
    fn floats_ints_ranges_and_method_calls_disambiguate() {
        use TokenKind::*;
        assert_eq!(
            kinds("1.0 1..2 1.max(2) 1e5 1.5e-3 0xFF 2f64 1_000u32"),
            vec![
                (Float, "1.0"),
                (Int, "1"),
                (Punct, ".."),
                (Int, "2"),
                (Int, "1"),
                (Punct, "."),
                (Ident, "max"),
                (Punct, "("),
                (Int, "2"),
                (Punct, ")"),
                (Float, "1e5"),
                (Float, "1.5e-3"),
                (Int, "0xFF"),
                (Float, "2f64"),
                (Int, "1_000u32"),
            ]
        );
    }

    #[test]
    fn chars_lifetimes_and_strings_disambiguate() {
        use TokenKind::*;
        assert_eq!(
            kinds(r##"'a' 'static '\n' "x[i]" r#"raw "q" "# b"by" 'é'"##),
            vec![
                (Char, "'a'"),
                (Lifetime, "'static"),
                (Char, r"'\n'"),
                (Str, "\"x[i]\""),
                (Str, "r#\"raw \"q\" \"#"),
                (Str, "b\"by\""),
                (Char, "'é'"),
            ]
        );
    }

    #[test]
    fn comments_nest_and_operators_join() {
        use TokenKind::*;
        assert_eq!(
            kinds("a == b // trail\n/* o /* i */ o */ c != 1.0"),
            vec![
                (Ident, "a"),
                (Punct, "=="),
                (Ident, "b"),
                (LineComment, "// trail"),
                (BlockComment, "/* o /* i */ o */"),
                (Ident, "c"),
                (Punct, "!="),
                (Float, "1.0"),
            ]
        );
    }

    #[test]
    fn index_brackets_inside_strings_are_not_tokens() {
        let toks = kinds(r#"let s = "bytes[pos]"; v[i]"#);
        let brackets: Vec<&str> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Punct && *t == "[")
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(brackets.len(), 1, "only the real index: {toks:?}");
    }

    #[test]
    fn unterminated_input_still_lexes() {
        assert!(!lex("let s = \"open").is_empty());
        assert!(!lex("/* open").is_empty());
        assert!(!lex("'x").is_empty());
    }
}
