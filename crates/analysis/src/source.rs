//! One lexed source file plus the span bookkeeping every lint needs:
//! line/column mapping, brace depths, `#[cfg(test)]` regions, and the
//! `// amopt-lint:` marker grammar (hot-path regions and allow sites).

use crate::lexer::{self, Token, TokenKind};
use crate::lints::{Finding, LINT_NAMES};
use std::path::{Path, PathBuf};

/// How far an [`Allow`] marker reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// Exactly one source line (the marker's own, or the next code line for
    /// a standalone marker).
    Line(u32),
    /// A byte range: from the marker to the end of its enclosing brace
    /// scope (`allow-scope`).
    Range(usize, usize),
}

/// One parsed `// amopt-lint: allow(...)` marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint names this marker silences.
    pub lints: Vec<String>,
    /// The written justification (after `--`).
    pub reason: String,
    /// Where the marker applies.
    pub scope: AllowScope,
    /// Line the marker itself sits on (for unused-marker reporting).
    pub marker_line: u32,
}

/// A lexed file with its lint context.
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative when walked).
    pub path: PathBuf,
    /// Full source text.
    pub text: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Brace depth *before* each token (`{` at depth d leaves its contents
    /// at d+1).
    pub depth: Vec<u32>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte ranges annotated `// amopt-lint: hot-path`.
    pub hot_regions: Vec<(usize, usize)>,
    /// Parsed allow markers.
    pub allows: Vec<Allow>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lexes `text` and computes the full context.  Marker-grammar errors
    /// are appended to `findings` (they are findings like any other: a
    /// reasonless allow must fail the gate, not silently allow).
    pub fn new(path: &Path, text: String, findings: &mut Vec<Finding>) -> Self {
        let tokens = lexer::lex(&text);
        let mut line_starts = vec![0usize];
        line_starts
            .extend(text.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(i, _)| i + 1));
        let depth = compute_depths(&tokens, &text);
        let mut file = SourceFile {
            path: path.to_path_buf(),
            text,
            tokens,
            depth,
            test_regions: Vec::new(),
            hot_regions: Vec::new(),
            allows: Vec::new(),
            line_starts,
        };
        file.test_regions = find_test_regions(&file);
        file.parse_markers(findings);
        file
    }

    /// Token text.
    pub fn tok(&self, i: usize) -> &str {
        &self.text[self.tokens[i].start..self.tokens[i].end]
    }

    /// 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = self.line_starts.partition_point(|&s| s <= offset);
        let col = offset - self.line_starts[line - 1];
        (line as u32, col as u32 + 1)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        self.line_col(offset).0
    }

    /// Whether a byte offset falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| (s..e).contains(&offset))
    }

    /// Whether a byte offset falls inside a `hot-path` region.
    pub fn in_hot(&self, offset: usize) -> bool {
        self.hot_regions.iter().any(|&(s, e)| (s..e).contains(&offset))
    }

    /// Index of the next non-comment token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        self.tokens[i + 1..]
            .iter()
            .position(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|off| i + 1 + off)
    }

    /// Index of the previous non-comment token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        self.tokens[..i]
            .iter()
            .rposition(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// End (exclusive byte offset) of the brace scope enclosing token `i`:
    /// the closing `}` of that scope, or EOF for file scope.  Note a
    /// closing brace is recorded at its *body's* depth, so the enclosing
    /// close is the first `}` at `depth[i]` (nested closes sit deeper).
    pub fn scope_end(&self, i: usize) -> usize {
        let d = self.depth[i];
        for (j, t) in self.tokens.iter().enumerate().skip(i + 1) {
            if t.kind == TokenKind::Punct && self.tok(j) == "}" && self.depth[j] <= d {
                return t.end;
            }
        }
        self.text.len()
    }

    /// Byte end of the `}` matching the `{` at token index `open`.
    pub fn brace_match(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for t in self.tokens.iter().skip(open) {
            if t.kind == TokenKind::Punct {
                match &self.text[t.start..t.end] {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return t.end;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.text.len()
    }

    /// Parses every `// amopt-lint:` comment into hot regions and allows,
    /// reporting grammar errors as `marker` findings.
    fn parse_markers(&mut self, findings: &mut Vec<Finding>) {
        let mut bad = |file: &SourceFile, offset: usize, msg: String| {
            let (line, col) = file.line_col(offset);
            findings.push(Finding {
                lint: "marker",
                path: file.path.clone(),
                line,
                col,
                message: msg,
            });
        };
        for i in 0..self.tokens.len() {
            if self.tokens[i].kind != TokenKind::LineComment {
                continue;
            }
            let start = self.tokens[i].start;
            let body = self.tok(i).trim_start_matches('/').trim();
            let Some(directive) = body.strip_prefix("amopt-lint:") else { continue };
            let directive = directive.trim();
            if directive == "hot-path" {
                let end = self.scope_end(i);
                self.hot_regions.push((start, end));
                continue;
            }
            let (scoped, rest) = if let Some(r) = directive.strip_prefix("allow-scope(") {
                (true, r)
            } else if let Some(r) = directive.strip_prefix("allow(") {
                (false, r)
            } else {
                bad(self, start, format!("unknown amopt-lint directive `{directive}`"));
                continue;
            };
            let Some((names, tail)) = rest.split_once(')') else {
                bad(self, start, "unclosed lint list in allow marker".to_string());
                continue;
            };
            let mut lints = Vec::new();
            for name in names.split(',').map(str::trim) {
                if LINT_NAMES.contains(&name) {
                    lints.push(name.to_string());
                } else {
                    bad(self, start, format!("unknown lint `{name}` in allow marker"));
                }
            }
            let reason = match tail.trim().strip_prefix("--") {
                Some(r) if !r.trim().is_empty() => r.trim().to_string(),
                _ => {
                    bad(
                        self,
                        start,
                        "allow marker needs a written reason: `-- <why this is sound>`".to_string(),
                    );
                    continue;
                }
            };
            if lints.is_empty() {
                continue;
            }
            let marker_line = self.line_of(start);
            let scope = if scoped {
                AllowScope::Range(start, self.scope_end(i))
            } else {
                // Trailing marker: silences its own line.  Standalone
                // marker (nothing but whitespace before it on the line):
                // silences the line of the next code token.
                let line_start = self.text[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
                let standalone = self.text[line_start..start].trim().is_empty();
                if standalone {
                    match self.next_code(i) {
                        Some(j) => AllowScope::Line(self.line_of(self.tokens[j].start)),
                        None => AllowScope::Line(marker_line),
                    }
                } else {
                    AllowScope::Line(marker_line)
                }
            };
            self.allows.push(Allow { lints, reason, scope, marker_line });
        }
    }
}

/// Brace depth before each token.
fn compute_depths(tokens: &[Token], text: &str) -> Vec<u32> {
    let mut depths = Vec::with_capacity(tokens.len());
    let mut d: u32 = 0;
    for t in tokens {
        let s = &text[t.start..t.end];
        depths.push(d);
        if t.kind == TokenKind::Punct {
            match s {
                "{" => d += 1,
                "}" => d = d.saturating_sub(1),
                _ => {}
            }
        }
    }
    depths
}

/// Byte ranges of items behind `#[cfg(test)]` or `#[test]` attributes: from
/// the attribute to the end of the following braced item (or its `;`).
fn find_test_regions(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let is_hash = toks[i].kind == TokenKind::Punct && file.tok(i) == "#";
        if !is_hash || file.next_code(i).map(|j| file.tok(j)) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let open = file.next_code(i).unwrap_or(i);
        let mut j = open;
        let mut bracket_depth = 0i32;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        loop {
            match file.tok(j) {
                "[" => bracket_depth += 1,
                "]" => {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                "test" => is_test_attr = true,
                _ => {}
            }
            j = match file.next_code(j) {
                Some(n) => n,
                None => break,
            };
        }
        // `#[test]` (bare) or `#[cfg(test)]` / `#[cfg(all(test, …))]`.
        let bare_test = is_test_attr && !saw_cfg && {
            // exactly `[ test ]`
            file.next_code(open).map(|k| file.tok(k)) == Some("test")
        };
        if is_test_attr && (saw_cfg || bare_test) {
            // The region runs to the end of the next braced item, or to the
            // terminating `;` for brace-less items.
            let mut k = j;
            let mut end = toks[j].end;
            while let Some(n) = file.next_code(k) {
                let t = file.tok(n);
                if t == "{" {
                    end = file.brace_match(n);
                    break;
                }
                if t == ";" {
                    end = toks[n].end;
                    break;
                }
                k = n;
            }
            regions.push((toks[i].start, end));
            i = j + 1;
            continue;
        }
        i = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> (SourceFile, Vec<Finding>) {
        let mut findings = Vec::new();
        let f = SourceFile::new(Path::new("test.rs"), src.to_string(), &mut findings);
        (f, findings)
    }

    #[test]
    fn line_col_is_one_based() {
        let (f, _) = file("ab\ncd\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let (f, _) = file(src);
        assert_eq!(f.test_regions.len(), 1);
        assert!(f.in_test(src.find("unwrap").unwrap()));
        assert!(!f.in_test(src.find("fn a").unwrap()));
        assert!(!f.in_test(src.find("fn c").unwrap()));
    }

    #[test]
    fn bare_test_attribute_is_a_region_but_cfg_not_test_is_not() {
        let src =
            "#[test]\nfn t() { y.unwrap(); }\n#[cfg(feature = \"x\")]\nfn f() { z.unwrap(); }\n";
        let (f, _) = file(src);
        assert!(f.in_test(src.find("y.unwrap").unwrap()));
        assert!(!f.in_test(src.find("z.unwrap").unwrap()));
    }

    #[test]
    fn hot_path_marker_covers_rest_of_scope() {
        let src = "fn cold() { alloc(); }\nfn hot() {\n  // amopt-lint: hot-path\n  a();\n}\nfn after() {}\n";
        let (f, _) = file(src);
        assert_eq!(f.hot_regions.len(), 1);
        assert!(f.in_hot(src.find("a()").unwrap()));
        assert!(!f.in_hot(src.find("alloc").unwrap()));
        assert!(!f.in_hot(src.find("after").unwrap()));
    }

    #[test]
    fn file_level_hot_path_covers_everything_after_it() {
        let src = "// amopt-lint: hot-path\nfn a() {}\nfn b() {}\n";
        let (f, _) = file(src);
        assert!(f.in_hot(src.find("fn b").unwrap()));
    }

    #[test]
    fn allow_markers_parse_with_scopes() {
        let src = "\
fn f() {
    x.unwrap(); // amopt-lint: allow(panic-surface) -- checked above
    // amopt-lint: allow(float-eq) -- exact zero sentinel
    let z = a == 0.0;
    // amopt-lint: allow-scope(hot-path-alloc) -- setup, not per-step
    let v = Vec::new();
}
";
        let (f, findings) = file(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(f.allows.len(), 3);
        assert_eq!(f.allows[0].scope, AllowScope::Line(2));
        assert_eq!(f.allows[0].reason, "checked above");
        assert_eq!(f.allows[1].scope, AllowScope::Line(4));
        assert!(matches!(f.allows[2].scope, AllowScope::Range(..)));
    }

    #[test]
    fn marker_grammar_errors_are_findings() {
        let cases = [
            "// amopt-lint: allow(panic-surface)\nfn f() {}\n", // no reason
            "// amopt-lint: allow(no-such-lint) -- why\nfn f() {}\n", // unknown lint
            "// amopt-lint: frobnicate\nfn f() {}\n",           // unknown directive
        ];
        for src in cases {
            let (_, findings) = file(src);
            assert_eq!(findings.len(), 1, "{src}: {findings:?}");
            assert_eq!(findings[0].lint, "marker");
        }
    }
}
