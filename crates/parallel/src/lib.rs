//! Fork-join parallelism facade for the option-pricing workspace.
//!
//! The paper's algorithms are expressed in the work-span model and executed by
//! a work-stealing scheduler (OpenMP tasks in the original C++ code).  This
//! crate pins that dependency behind a minimal interface so that
//!
//! * the numerical crates never name the backend directly,
//! * a sequential backend (feature `rayon-backend` disabled) gives bitwise
//!   deterministic single-thread execution for debugging, and
//! * benchmark harnesses can run the *same* code under different core counts
//!   (`run_with_threads`), which is how Table 5 of the paper is regenerated.
//!
//! The exposed operations are deliberately few: binary [`join`] (the primitive
//! from which the span bounds of the paper are derived), a grain-controlled
//! [`parallel_for`], chunked mutable-slice iteration [`for_each_chunk_mut`],
//! and pool management.

#![forbid(unsafe_code)]

#[cfg(feature = "rayon-backend")]
mod backend {
    /// Runs both closures, potentially in parallel, returning both results.
    #[inline]
    pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        rayon::join(a, b)
    }

    /// Number of worker threads the current scheduler uses.
    #[inline]
    pub fn current_num_threads() -> usize {
        rayon::current_num_threads()
    }

    /// Runs `f` on a dedicated pool of exactly `threads` workers.
    pub fn run_with_threads<F, R>(threads: usize, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("failed to build thread pool");
        pool.install(f)
    }
}

#[cfg(not(feature = "rayon-backend"))]
mod backend {
    /// Sequential fallback: runs `a` then `b` on the calling thread.
    #[inline]
    pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        (a(), b())
    }

    /// Sequential backend always reports a single worker.
    #[inline]
    pub fn current_num_threads() -> usize {
        1
    }

    /// Sequential backend ignores the requested thread count.
    pub fn run_with_threads<F, R>(_threads: usize, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        f()
    }
}

pub use backend::{current_num_threads, join, run_with_threads};

/// Minimum amount of per-task work below which forking is never worthwhile.
///
/// Used as the default grain by [`parallel_for`] callers that have no better
/// estimate. Chosen so a task costs at least a few microseconds of arithmetic.
pub const DEFAULT_GRAIN: usize = 2048;

/// Executes `body(i)` for every `i` in `lo..hi`, splitting recursively while a
/// half contains at least `grain` iterations.
///
/// The body must be safe to run for distinct indices concurrently.  Splitting
/// is binary, so the span is `O(log n)` forks plus one grain of work.
pub fn parallel_for<F>(lo: usize, hi: usize, grain: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    fn go<F: Fn(usize) + Sync>(lo: usize, hi: usize, grain: usize, body: &F) {
        if hi - lo <= grain {
            for i in lo..hi {
                body(i);
            }
        } else {
            let mid = lo + (hi - lo) / 2;
            join(|| go(lo, mid, grain, body), || go(mid, hi, grain, body));
        }
    }
    if lo < hi {
        let grain = grain.max(1);
        go(lo, hi, grain, &body);
    }
}

/// Splits `data` into chunks of at most `grain` elements and runs
/// `body(chunk_start_offset, chunk)` on each, in parallel.
///
/// This is the workhorse for row-parallel lattice sweeps: each worker owns a
/// disjoint `&mut` window, so no synchronisation is needed inside `body`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], grain: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    fn go<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        offset: usize,
        data: &mut [T],
        grain: usize,
        body: &F,
    ) {
        if data.len() <= grain {
            if !data.is_empty() {
                body(offset, data);
            }
        } else {
            let mid = data.len() / 2;
            let (left, right) = data.split_at_mut(mid);
            join(|| go(offset, left, grain, body), || go(offset + mid, right, grain, body));
        }
    }
    let grain = grain.max(1);
    go(0, data, grain, &body);
}

/// A checkout pool of reusable scratch workspaces for parallel loops.
///
/// Workers borrow a workspace for the duration of one work item and return
/// it afterwards, so the pool grows to at most the number of *concurrently
/// active* workers and never shrinks.  After this warm-up the pool itself
/// performs no allocation: a steady-state `parallel_for` body that keeps its
/// scratch buffers inside a pooled workspace is allocation-free.
///
/// The pool is deliberately not tied to worker-thread identity (the
/// sequential backend has none): checkout is a mutex-guarded stack pop,
/// which is a few nanoseconds against the microseconds-to-milliseconds work
/// items it is designed for.
///
/// ```
/// use amopt_parallel::{parallel_for, WorkspacePool};
///
/// let pool: WorkspacePool<Vec<u64>> = WorkspacePool::new();
/// parallel_for(0, 100, 8, |i| {
///     pool.with(Vec::new, |scratch| {
///         scratch.clear();
///         scratch.extend(0..i as u64); // reuses a previous item's capacity
///     });
/// });
/// assert!(pool.idle() >= 1);
/// ```
#[derive(Debug, Default)]
pub struct WorkspacePool<W> {
    free: std::sync::Mutex<Vec<W>>,
}

impl<W> WorkspacePool<W> {
    /// Creates an empty pool; workspaces are built on first checkout.
    pub fn new() -> Self {
        WorkspacePool { free: std::sync::Mutex::new(Vec::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<W>> {
        // A worker that panicked mid-item loses its checked-out workspace
        // (it was never returned), so the surviving inventory is still valid.
        self.free.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` with a workspace checked out of the pool, creating one with
    /// `make` only when every pooled workspace is already in use.
    pub fn with<R>(&self, make: impl FnOnce() -> W, f: impl FnOnce(&mut W) -> R) -> R {
        let mut w = self.lock().pop().unwrap_or_else(make);
        let out = f(&mut w);
        self.lock().push(w);
        out
    }

    /// Number of workspaces currently checked in (idle).
    pub fn idle(&self) -> usize {
        self.lock().len()
    }
}

/// Maps `f` over `0..n` in parallel, collecting results in index order.
pub fn parallel_map<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let mut out = vec![R::default(); n];
    for_each_chunk_mut(&mut out, grain, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(offset + i);
        }
    });
    out
}

/// Maps `f(index, item)` over a slice in parallel, collecting results in
/// input order.
///
/// The indexed form exists for callers whose work items are *partitions* of
/// some larger structure — e.g. the batch layer's sharded memo probe, where
/// each item is one shard's slot list and the index names the shard whose
/// lock the worker must take.
pub fn parallel_map_slice<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(items.len(), grain, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(0, n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        parallel_for(5, 5, 8, |_| panic!("must not run"));
        parallel_for(7, 3, 8, |_| panic!("must not run"));
    }

    #[test]
    fn for_each_chunk_mut_covers_slice_with_correct_offsets() {
        let mut data = vec![0usize; 4097];
        for_each_chunk_mut(&mut data, 100, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn for_each_chunk_mut_handles_empty_slice() {
        let mut data: Vec<u8> = vec![];
        for_each_chunk_mut(&mut data, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let got = parallel_map(1000, 32, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_map_slice_passes_matching_index_and_item() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let got = parallel_map_slice(&items, 16, |i, s| format!("{i}:{s}"));
        for (i, g) in got.iter().enumerate() {
            assert_eq!(*g, format!("{i}:item-{i}"));
        }
        let empty: Vec<u8> = vec![];
        assert!(parallel_map_slice(&empty, 4, |_, _| 0u8).is_empty());
    }

    #[test]
    fn workspace_pool_reuses_instances() {
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::new();
        let created = AtomicUsize::new(0);
        // Strictly sequential checkouts must share one workspace.
        for _ in 0..100 {
            pool.with(
                || {
                    created.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                },
                |w| w.push(1),
            );
        }
        assert_eq!(created.load(Ordering::Relaxed), 1);
        assert_eq!(pool.idle(), 1);
        // The single pooled workspace accumulated every push.
        pool.with(Vec::new, |w| assert_eq!(w.len(), 100));
    }

    #[test]
    fn workspace_pool_is_safe_under_parallel_for() {
        let pool: WorkspacePool<Vec<usize>> = WorkspacePool::new();
        let sum = AtomicUsize::new(0);
        parallel_for(0, 1000, 16, |i| {
            pool.with(Vec::new, |w| {
                w.clear();
                w.extend([i, i]);
                sum.fetch_add(w.iter().sum::<usize>(), Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 2 * (0..1000).sum::<usize>());
        // Every checked-out workspace came back, bounded by peak concurrency.
        assert!(pool.idle() >= 1);
    }

    #[test]
    fn zero_grain_is_clamped() {
        let mut data = vec![1u32; 17];
        for_each_chunk_mut(&mut data, 0, |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
        let count = AtomicUsize::new(0);
        parallel_for(0, 9, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 9);
    }

    #[cfg(feature = "rayon-backend")]
    #[test]
    fn run_with_threads_controls_pool_width() {
        for p in [1usize, 2, 4] {
            let seen = run_with_threads(p, current_num_threads);
            assert_eq!(seen, p);
        }
    }

    #[cfg(not(feature = "rayon-backend"))]
    #[test]
    fn sequential_run_with_threads_is_single_threaded_and_never_panics() {
        // The sequential fallback must accept any requested width — including
        // 0 — run the closure on the calling thread, and report one worker.
        for requested in [0usize, 1, 8, 1024] {
            let caller = std::thread::current().id();
            let (threads, tid) = run_with_threads(requested, || {
                (current_num_threads(), std::thread::current().id())
            });
            assert_eq!(threads, 1);
            assert_eq!(tid, caller);
        }
    }

    #[test]
    fn run_with_threads_returns_value() {
        let v = run_with_threads(2, || {
            let mut acc = 0u64;
            parallel_for(0, 100, 10, |_| {});
            for i in 0..100u64 {
                acc += i;
            }
            acc
        });
        assert_eq!(v, 4950);
    }
}
