//! The kernel phase timers advance while pricing — compiled only under the
//! `obs` feature, which is also the only build in which the engine scopes
//! exist at all.
#![cfg(feature = "obs")]

use amopt_core::bopm::{fast, BopmModel};
use amopt_core::{EngineConfig, OptionParams};
use amopt_obs::kernel::{self, KernelPhase, KERNEL_PHASES};

#[test]
fn pricing_drives_all_three_phase_timers() {
    kernel::reset();
    let model = BopmModel::new(OptionParams::paper_defaults(), 4096).unwrap();
    let cfg = EngineConfig::default();
    let price = fast::price_american_call(&model, &cfg);
    assert!(price.is_finite() && price > 0.0);

    let snap = kernel::snapshot();
    for phase in KERNEL_PHASES {
        let s = snap[phase as usize];
        assert!(s.calls > 0, "phase {} never entered during a 4096-step pricing", phase.name());
    }
    // The FFT bulk dominates a deep pricing; sanity-check the timer actually
    // accumulated wall time rather than just call counts.
    assert!(snap[KernelPhase::FftPass as usize].nanos > 0);

    let mut text = String::new();
    kernel::render_into(&mut text);
    assert!(text.contains("amopt_kernel_fft_pass_calls_total"), "{text}");
    assert!(text.contains("amopt_kernel_boundary_window_calls_total"), "{text}");
    assert!(text.contains("amopt_kernel_base_case_calls_total"), "{text}");
}
