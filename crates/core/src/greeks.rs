//! Greeks (price sensitivities) for American options, computed by central
//! finite differences over the fast pricers — cheap because each repricing
//! is only `O(T log² T)`.

use crate::bopm::{fast, BopmModel};
use crate::bsm::{self, BsmModel};
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::params::OptionParams;

/// First- and second-order sensitivities of an option price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Greeks {
    /// `∂V/∂S`.
    pub delta: f64,
    /// `∂²V/∂S²`.
    pub gamma: f64,
    /// `∂V/∂t` per year (negative of the sensitivity to time-to-expiry).
    pub theta: f64,
    /// `∂V/∂σ` per unit volatility.
    pub vega: f64,
    /// `∂V/∂R` per unit rate.
    ///
    /// Computed by a central difference except when `rate` is below the rate
    /// bump (`1e-5`): rates cannot go negative, so the down bump would leave
    /// the admissible domain and rho falls back to an explicit **one-sided
    /// forward difference** — first-order truncation error instead of
    /// second-order, the price of staying inside the domain.
    pub rho: f64,
}

/// Relative bump sizes used by the central differences.
///
/// The spot bump is deliberately wide (1%): a `T`-step lattice price is
/// *piecewise linear* in `S` (the payoff kinks sit on lattice nodes), so a
/// bump much narrower than the node spacing `S·(u²−1) ≈ 2SVΔt^{1/2}` lands
/// inside one linear piece and reads a gamma of exactly zero.
const BUMP_SPOT: f64 = 1e-2;
const BUMP_VOL: f64 = 1e-4;
const BUMP_RATE: f64 = 1e-5;
const BUMP_TIME: f64 = 1e-4;

fn central<F: FnMut(f64) -> Result<f64>>(x: f64, h: f64, mut price: F) -> Result<(f64, f64, f64)> {
    let up = price(x + h)?;
    let mid = price(x)?;
    let dn = price(x - h)?;
    Ok(((up - dn) / (2.0 * h), (up - 2.0 * mid + dn) / (h * h), mid))
}

/// Greeks of the American **call** under BOPM (fast pricer).
pub fn american_call_bopm(
    params: &OptionParams,
    steps: usize,
    cfg: &EngineConfig,
) -> Result<Greeks> {
    let params = params.validated()?;
    let reprice = |p: OptionParams| -> Result<f64> {
        Ok(fast::price_american_call(&BopmModel::new(p, steps)?, cfg))
    };
    greeks_by_fd(params, reprice)
}

/// Greeks of the American **put** under the BSM explicit FD scheme.
pub fn american_put_bsm(params: &OptionParams, steps: usize, cfg: &EngineConfig) -> Result<Greeks> {
    let params = params.validated()?;
    let reprice = |p: OptionParams| -> Result<f64> {
        Ok(bsm::fast::price_american_put(&BsmModel::new(p, steps)?, cfg))
    };
    greeks_by_fd(params, reprice)
}

fn greeks_by_fd<F: Fn(OptionParams) -> Result<f64>>(
    params: OptionParams,
    reprice: F,
) -> Result<Greeks> {
    let hs = params.spot * BUMP_SPOT;
    let (delta, gamma, _) =
        central(params.spot, hs, |s| reprice(OptionParams { spot: s, ..params }))?;
    let hv = params.volatility.max(0.05) * BUMP_VOL;
    let up = reprice(OptionParams { volatility: params.volatility + hv, ..params })?;
    let dn = reprice(OptionParams { volatility: params.volatility - hv, ..params })?;
    let vega = (up - dn) / (2.0 * hv);
    let hr = BUMP_RATE;
    let r_up = reprice(OptionParams { rate: params.rate + hr, ..params })?;
    let rho = if params.rate >= hr {
        let r_dn = reprice(OptionParams { rate: params.rate - hr, ..params })?;
        (r_up - r_dn) / (2.0 * hr)
    } else {
        // The symmetric down bump would need a negative rate, which the
        // domain forbids: fall back to the one-sided forward difference
        // documented on `Greeks::rho` instead of silently clamping.
        let r_at = reprice(params)?;
        (r_up - r_at) / hr
    };
    let ht = params.expiry * BUMP_TIME;
    let e_up = reprice(OptionParams { expiry: params.expiry + ht, ..params })?;
    let e_dn = reprice(OptionParams { expiry: params.expiry - ht, ..params })?;
    // θ is the derivative with respect to calendar time = −∂V/∂(expiry).
    let theta = -(e_up - e_dn) / (2.0 * ht);
    Ok(Greeks { delta, gamma, theta, vega, rho })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::params::OptionType;

    #[test]
    fn zero_dividend_call_matches_black_scholes_greeks() {
        // With Y = 0 the American call is European, so the lattice greeks
        // must approach the closed-form ones.
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let g = american_call_bopm(&p, 6000, &EngineConfig::default()).unwrap();
        let delta = analytic::black_scholes_delta(&p, OptionType::Call).unwrap();
        let vega = analytic::black_scholes_vega(&p).unwrap();
        assert!((g.delta - delta).abs() < 5e-3, "delta {} vs {}", g.delta, delta);
        assert!((g.vega - vega).abs() < 0.5, "vega {} vs {}", g.vega, vega);
        assert!(g.gamma > 0.0, "gamma must be positive, got {}", g.gamma);
        assert!(g.theta < 0.0, "long option loses value over time, got {}", g.theta);
    }

    #[test]
    fn call_delta_in_unit_range_and_put_delta_negative() {
        let p = OptionParams::paper_defaults();
        let g = american_call_bopm(&p, 2000, &EngineConfig::default()).unwrap();
        assert!(g.delta > 0.0 && g.delta < 1.0, "call delta {}", g.delta);

        let put_params = OptionParams { dividend_yield: 0.0, ..p };
        let gp = american_put_bsm(&put_params, 2000, &EngineConfig::default()).unwrap();
        assert!(gp.delta < 0.0 && gp.delta > -1.0, "put delta {}", gp.delta);
        assert!(gp.vega > 0.0, "put vega {}", gp.vega);
        assert!(gp.rho < 0.0, "put rho should be negative, got {}", gp.rho);
    }

    #[test]
    fn rho_at_zero_rate_is_the_explicit_one_sided_difference() {
        // At R = 0 the down bump would leave the admissible domain; rho must
        // be the documented forward difference, not a half-width central
        // difference built from a silently clamped rate.
        let p = OptionParams { rate: 0.0, dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let cfg = EngineConfig::default();
        let g = american_put_bsm(&p, 800, &cfg).unwrap();
        assert!(g.rho.is_finite());
        let price = |rate: f64| {
            let m = BsmModel::new(OptionParams { rate, ..p }, 800).unwrap();
            bsm::fast::price_american_put(&m, &cfg)
        };
        let want = (price(BUMP_RATE) - price(0.0)) / BUMP_RATE;
        assert!((g.rho - want).abs() < 1e-12, "rho {} vs forward diff {}", g.rho, want);
        assert!(g.rho < 0.0, "put rho must be negative, got {}", g.rho);

        // The BOPM call at R = 0 takes the same fallback and stays positive.
        let gc = american_call_bopm(&p, 1000, &cfg).unwrap();
        assert!(gc.rho.is_finite() && gc.rho > 0.0, "call rho {}", gc.rho);
    }

    #[test]
    fn rho_above_the_bump_is_a_central_difference() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let cfg = EngineConfig::default();
        let g = american_put_bsm(&p, 800, &cfg).unwrap();
        let price = |rate: f64| {
            let m = BsmModel::new(OptionParams { rate, ..p }, 800).unwrap();
            bsm::fast::price_american_put(&m, &cfg)
        };
        let want = (price(p.rate + BUMP_RATE) - price(p.rate - BUMP_RATE)) / (2.0 * BUMP_RATE);
        assert!((g.rho - want).abs() < 1e-12, "rho {} vs central diff {}", g.rho, want);
    }

    #[test]
    fn american_put_theta_nonpositive() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let g = american_put_bsm(&p, 1500, &EngineConfig::default()).unwrap();
        assert!(g.theta <= 1e-6, "theta {}", g.theta);
    }
}
