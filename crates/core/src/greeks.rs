//! Greeks (price sensitivities) for American options, computed by central
//! finite differences over the fast pricers — cheap because each repricing
//! is only `O(T log² T)`.
//!
//! This module owns the [`Greeks`] type, the bump-width policy, and the
//! per-contract convenience entry points.  The differencing itself lives in
//! [`crate::batch::greeks`]: every entry point here is a **batch-of-one
//! facade** over [`crate::batch::greeks::greeks`], so a single contract's
//! greeks take exactly the same code path — same bump ladder, same routed
//! pricers, same arithmetic — as a thousand-contract book fanned through
//! [`BatchPricer::price_batch`](crate::batch::BatchPricer::price_batch).

use crate::batch::greeks as batch_greeks;
use crate::batch::{BatchPricer, ModelKind, PricingRequest};
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::params::{OptionParams, OptionType};

/// First- and second-order sensitivities of an option price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Greeks {
    /// `∂V/∂S`.
    pub delta: f64,
    /// `∂²V/∂S²`.
    pub gamma: f64,
    /// `∂V/∂t` per year (negative of the sensitivity to time-to-expiry).
    pub theta: f64,
    /// `∂V/∂σ` per unit volatility.
    pub vega: f64,
    /// `∂V/∂R` per unit rate.
    ///
    /// Computed by a central difference except when `rate` is below the rate
    /// bump (`1e-5`): rates cannot go negative, so the down bump would leave
    /// the admissible domain and rho falls back to an explicit **one-sided
    /// forward difference** — first-order truncation error instead of
    /// second-order, the price of staying inside the domain.
    pub rho: f64,
}

/// Relative bump sizes used by the central differences.
///
/// The spot bump is deliberately wide (1%): a `T`-step lattice price is
/// *piecewise linear* in `S` (the payoff kinks sit on lattice nodes), so a
/// bump much narrower than the node spacing `S·(u²−1) ≈ 2SVΔt^{1/2}` lands
/// inside one linear piece and reads a gamma of exactly zero.
pub(crate) const BUMP_SPOT: f64 = 1e-2;
/// Relative volatility bump (vega).
pub(crate) const BUMP_VOL: f64 = 1e-4;
/// Absolute rate bump (rho).
pub(crate) const BUMP_RATE: f64 = 1e-5;
/// Relative expiry bump (theta).
pub(crate) const BUMP_TIME: f64 = 1e-4;
/// Floor on the volatility used to scale the vega bump, so deep-low-vol
/// contracts still get a resolvable bump width.
pub(crate) const VOL_BUMP_FLOOR: f64 = 0.05;

/// Finite-difference greeks of a single batch request: a batch-of-one
/// facade over [`crate::batch::greeks::greeks`].
///
/// The request's bump ladder is fanned through `pricer`, so repeated calls
/// against the same pricer share the memo (a re-quoted contract's greeks
/// are nine cache hits).  For whole books, call the batch entry point
/// directly — it prices every contract's ladder in one batch.
pub fn greeks_by_fd(pricer: &BatchPricer, request: &PricingRequest) -> Result<Greeks> {
    batch_greeks::greeks(pricer, std::slice::from_ref(request))
        .pop()
        .expect("one request in, one result out")
}

/// Greeks of the American **call** under BOPM (fast pricer).
pub fn american_call_bopm(
    params: &OptionParams,
    steps: usize,
    cfg: &EngineConfig,
) -> Result<Greeks> {
    // Memo capacity 0: a one-shot facade has no second batch to serve; the
    // in-batch dedup (rho's base-price reuse) still applies.
    let pricer = BatchPricer::with_memo_capacity(*cfg, 0);
    greeks_by_fd(
        &pricer,
        &PricingRequest::american(ModelKind::Bopm, OptionType::Call, *params, steps),
    )
}

/// Greeks of the American **put** under the BSM explicit FD scheme.
pub fn american_put_bsm(params: &OptionParams, steps: usize, cfg: &EngineConfig) -> Result<Greeks> {
    let pricer = BatchPricer::with_memo_capacity(*cfg, 0);
    greeks_by_fd(
        &pricer,
        &PricingRequest::american(ModelKind::Bsm, OptionType::Put, *params, steps),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::bsm::{self, BsmModel};
    use crate::params::OptionType;

    #[test]
    fn zero_dividend_call_matches_black_scholes_greeks() {
        // With Y = 0 the American call is European, so the lattice greeks
        // must approach the closed-form ones.
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let g = american_call_bopm(&p, 6000, &EngineConfig::default()).unwrap();
        let delta = analytic::black_scholes_delta(&p, OptionType::Call).unwrap();
        let vega = analytic::black_scholes_vega(&p).unwrap();
        assert!((g.delta - delta).abs() < 5e-3, "delta {} vs {}", g.delta, delta);
        assert!((g.vega - vega).abs() < 0.5, "vega {} vs {}", g.vega, vega);
        assert!(g.gamma > 0.0, "gamma must be positive, got {}", g.gamma);
        assert!(g.theta < 0.0, "long option loses value over time, got {}", g.theta);
    }

    #[test]
    fn call_delta_in_unit_range_and_put_delta_negative() {
        let p = OptionParams::paper_defaults();
        let g = american_call_bopm(&p, 2000, &EngineConfig::default()).unwrap();
        assert!(g.delta > 0.0 && g.delta < 1.0, "call delta {}", g.delta);

        let put_params = OptionParams { dividend_yield: 0.0, ..p };
        let gp = american_put_bsm(&put_params, 2000, &EngineConfig::default()).unwrap();
        assert!(gp.delta < 0.0 && gp.delta > -1.0, "put delta {}", gp.delta);
        assert!(gp.vega > 0.0, "put vega {}", gp.vega);
        assert!(gp.rho < 0.0, "put rho should be negative, got {}", gp.rho);
    }

    #[test]
    fn rho_at_zero_rate_is_the_explicit_one_sided_difference() {
        // At R = 0 the down bump would leave the admissible domain; rho must
        // be the documented forward difference, not a half-width central
        // difference built from a silently clamped rate.
        let p = OptionParams { rate: 0.0, dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let cfg = EngineConfig::default();
        let g = american_put_bsm(&p, 800, &cfg).unwrap();
        assert!(g.rho.is_finite());
        let price = |rate: f64| {
            let m = BsmModel::new(OptionParams { rate, ..p }, 800).unwrap();
            bsm::fast::price_american_put(&m, &cfg)
        };
        let want = (price(BUMP_RATE) - price(0.0)) / BUMP_RATE;
        assert!((g.rho - want).abs() < 1e-12, "rho {} vs forward diff {}", g.rho, want);
        assert!(g.rho < 0.0, "put rho must be negative, got {}", g.rho);

        // The BOPM call at R = 0 takes the same fallback and stays positive.
        let gc = american_call_bopm(&p, 1000, &cfg).unwrap();
        assert!(gc.rho.is_finite() && gc.rho > 0.0, "call rho {}", gc.rho);
    }

    #[test]
    fn rho_above_the_bump_is_a_central_difference() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let cfg = EngineConfig::default();
        let g = american_put_bsm(&p, 800, &cfg).unwrap();
        let price = |rate: f64| {
            let m = BsmModel::new(OptionParams { rate, ..p }, 800).unwrap();
            bsm::fast::price_american_put(&m, &cfg)
        };
        let want = (price(p.rate + BUMP_RATE) - price(p.rate - BUMP_RATE)) / (2.0 * BUMP_RATE);
        assert!((g.rho - want).abs() < 1e-12, "rho {} vs central diff {}", g.rho, want);
    }

    #[test]
    fn american_put_theta_nonpositive() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let g = american_put_bsm(&p, 1500, &EngineConfig::default()).unwrap();
        assert!(g.theta <= 1e-6, "theta {}", g.theta);
    }

    #[test]
    fn greeks_by_fd_memoizes_across_repeated_calls() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams::paper_defaults(),
            128,
        );
        let first = greeks_by_fd(&pricer, &req).unwrap();
        let misses = pricer.memo_stats().misses;
        let second = greeks_by_fd(&pricer, &req).unwrap();
        assert_eq!(pricer.memo_stats().misses, misses, "second call must be all memo hits");
        assert_eq!(first.delta.to_bits(), second.delta.to_bits());
    }
}
