//! Implied volatility: invert a pricer for the volatility that reproduces an
//! observed market price.
//!
//! European quotes use Newton's method on the Black–Scholes closed form
//! (quadratic convergence, analytic vega) with a bisection fallback;
//! American quotes bisect over the fast lattice pricer — each probe is
//! `O(T log² T)`, so the whole inversion is a few dozen milliseconds even at
//! large `T`.

use crate::analytic::{black_scholes_price, black_scholes_vega};
use crate::bopm::{fast, BopmModel};
use crate::engine::EngineConfig;
use crate::error::{PricingError, Result};
use crate::params::{OptionParams, OptionType};

/// Volatility search interval.
const VOL_LO: f64 = 1e-4;
const VOL_HI: f64 = 5.0;
const PRICE_TOL: f64 = 1e-10;
const MAX_ITERS: usize = 200;

/// Implied volatility of a **European** option from its market price.
pub fn european(params: &OptionParams, opt: OptionType, market_price: f64) -> Result<f64> {
    let params = params.validated()?;
    let price_at = |vol: f64| -> Result<f64> {
        black_scholes_price(&OptionParams { volatility: vol, ..params }, opt)
    };
    // Arbitrage bounds: the price must lie between the zero-vol and
    // huge-vol limits.
    let lo_p = price_at(VOL_LO)?;
    let hi_p = price_at(VOL_HI)?;
    if market_price < lo_p - 1e-12 || market_price > hi_p + 1e-12 {
        return Err(PricingError::InvalidParams {
            field: "market_price",
            reason: format!("price {market_price} outside attainable range [{lo_p:.6}, {hi_p:.6}]"),
        });
    }
    // Newton from a mid-range start, guarded by a bisection bracket.
    let (mut lo, mut hi) = (VOL_LO, VOL_HI);
    let mut vol = 0.3;
    for iter in 0..MAX_ITERS {
        let p = price_at(vol)?;
        let diff = p - market_price;
        if diff.abs() < PRICE_TOL {
            return Ok(vol);
        }
        if diff > 0.0 {
            hi = vol;
        } else {
            lo = vol;
        }
        let vega = black_scholes_vega(&OptionParams { volatility: vol, ..params })?;
        let newton = vol - diff / vega;
        vol = if vega > 1e-12 && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
        if hi - lo < 1e-14 {
            return Ok(vol);
        }
        let _ = iter;
    }
    Err(PricingError::NoConvergence { what: "European implied volatility", iterations: MAX_ITERS })
}

/// Implied volatility of an **American call** from its market price, by
/// bisection over the fast BOPM pricer.
pub fn american_call_bopm(
    params: &OptionParams,
    steps: usize,
    market_price: f64,
    cfg: &EngineConfig,
) -> Result<f64> {
    let params = params.validated()?;
    let price_at = |vol: f64| -> Result<f64> {
        let m = BopmModel::new(OptionParams { volatility: vol, ..params }, steps)?;
        Ok(fast::price_american_call(&m, cfg))
    };
    // The lattice itself is only constructible when V·√Δt dominates
    // |R−Y|·Δt (risk-neutral p ∈ (0,1)); walk the lower bracket up to the
    // first valid volatility.
    let mut lo = VOL_LO;
    let p_lo = loop {
        match price_at(lo) {
            Ok(p) => break p,
            Err(PricingError::UnstableDiscretisation { .. }) if lo < VOL_HI => lo *= 2.0,
            Err(e) => return Err(e),
        }
    };
    let mut hi = VOL_HI;
    let p_hi = price_at(hi)?;
    if market_price < p_lo - 1e-9 || market_price > p_hi + 1e-9 {
        return Err(PricingError::InvalidParams {
            field: "market_price",
            reason: format!("price {market_price} outside attainable range [{p_lo:.6}, {p_hi:.6}]"),
        });
    }
    for _ in 0..MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        let p = price_at(mid)?;
        if (p - market_price).abs() < PRICE_TOL || hi - lo < 1e-12 {
            return Ok(mid);
        }
        if p > market_price {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Err(PricingError::NoConvergence { what: "American implied volatility", iterations: MAX_ITERS })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn european_roundtrip() {
        let p = OptionParams::paper_defaults();
        for opt in [OptionType::Call, OptionType::Put] {
            for true_vol in [0.08, 0.2, 0.55] {
                let quoted =
                    black_scholes_price(&OptionParams { volatility: true_vol, ..p }, opt).unwrap();
                let got = european(&p, opt, quoted).unwrap();
                assert!((got - true_vol).abs() < 1e-7, "{opt:?} σ={true_vol}: got {got}");
            }
        }
    }

    #[test]
    fn american_roundtrip() {
        let p = OptionParams::paper_defaults();
        let cfg = EngineConfig::default();
        for true_vol in [0.12, 0.3] {
            let m = BopmModel::new(OptionParams { volatility: true_vol, ..p }, 800).unwrap();
            let quoted = fast::price_american_call(&m, &cfg);
            let got = american_call_bopm(&p, 800, quoted, &cfg).unwrap();
            assert!((got - true_vol).abs() < 1e-6, "σ={true_vol}: got {got}");
        }
    }

    #[test]
    fn rejects_unattainable_prices() {
        let p = OptionParams::paper_defaults();
        assert!(european(&p, OptionType::Call, -1.0).is_err());
        assert!(european(&p, OptionType::Call, p.spot * 10.0).is_err());
        assert!(american_call_bopm(&p, 200, -5.0, &EngineConfig::default()).is_err());
    }

    #[test]
    fn monotone_in_market_price() {
        let p = OptionParams::paper_defaults();
        let q1 = european(&p, OptionType::Call, 5.0).unwrap();
        let q2 = european(&p, OptionType::Call, 9.0).unwrap();
        assert!(q2 > q1);
    }
}
