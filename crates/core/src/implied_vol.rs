//! Implied volatility: invert a pricer for the volatility that reproduces an
//! observed market price.
//!
//! European quotes use Newton's method on the Black–Scholes closed form
//! (quadratic convergence, analytic vega) with a bisection fallback;
//! American quotes bisect over the fast lattice pricer — each probe is
//! `O(T log² T)`, so the whole inversion is a few dozen milliseconds even at
//! large `T`.
//!
//! The per-quote functions here are the *reference* inversions.  For bulk
//! work — inverting a whole quote surface — use
//! [`crate::batch::surface::implied_vol_surface`], which drives every
//! quote's bracketing rounds in lockstep through the batch pricer (parallel
//! probes, cross-quote dedup, and a superlinear root iteration) under the
//! same search interval, tolerance, and error contract as this module.

use crate::analytic::{black_scholes_price, black_scholes_vega};
use crate::bopm::{fast, BopmModel};
use crate::engine::EngineConfig;
use crate::error::{PricingError, Result};
use crate::params::{OptionParams, OptionType};

/// Lower end of the volatility search interval (shared with the batch
/// surface driver so both inversions search the same space).
pub(crate) const VOL_LO: f64 = 1e-4;

/// Starting point of the lower-bracket stability walk: `VOL_LO` when the
/// whole interval is stable, otherwise a hair above the closed-form
/// stability floor `|R−Y|·√(E/steps)` (clamped to the interval top, where
/// the no-stable-bracket error path takes over).  Shared with the batch
/// surface driver so both inversions probe identical brackets.
pub(crate) fn stability_seed(params: &OptionParams, steps: usize) -> f64 {
    let floor = BopmModel::min_stable_volatility(params, steps);
    VOL_LO.max(floor * (1.0 + 1e-9)).min(VOL_HI)
}
/// Upper end of the volatility search interval.
pub(crate) const VOL_HI: f64 = 5.0;
/// Acceptance tolerance on the price residual `|price(vol) − quote|`.
pub(crate) const PRICE_TOL: f64 = 1e-10;
/// Probe budget per quote before declaring no convergence.
pub(crate) const MAX_ITERS: usize = 200;

/// Implied volatility of a **European** option from its market price.
pub fn european(params: &OptionParams, opt: OptionType, market_price: f64) -> Result<f64> {
    let params = params.validated()?;
    let price_at = |vol: f64| -> Result<f64> {
        black_scholes_price(&OptionParams { volatility: vol, ..params }, opt)
    };
    // Arbitrage bounds: the price must lie between the zero-vol and
    // huge-vol limits.
    let lo_p = price_at(VOL_LO)?;
    let hi_p = price_at(VOL_HI)?;
    if market_price < lo_p - 1e-12 || market_price > hi_p + 1e-12 {
        return Err(PricingError::InvalidParams {
            field: "market_price",
            reason: format!("price {market_price} outside attainable range [{lo_p:.6}, {hi_p:.6}]"),
        });
    }
    // Newton from a mid-range start, guarded by a bisection bracket.
    let (mut lo, mut hi) = (VOL_LO, VOL_HI);
    let mut vol = 0.3;
    for iterations in 0..MAX_ITERS {
        let p = price_at(vol)?;
        let diff = p - market_price;
        if diff.abs() < PRICE_TOL {
            return Ok(vol);
        }
        if diff > 0.0 {
            hi = vol;
        } else {
            lo = vol;
        }
        let vega = black_scholes_vega(&OptionParams { volatility: vol, ..params })?;
        let newton = vol - diff / vega;
        vol = if vega > 1e-12 && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
        if hi - lo < 1e-14 {
            // Exhausted bracket: only accept the candidate if it actually
            // reproduces the quote (same guard as the American inversion —
            // a flat, near-zero-vega region must not yield an arbitrary vol).
            if (price_at(vol)? - market_price).abs() < PRICE_TOL {
                return Ok(vol);
            }
            return Err(PricingError::NoConvergence {
                what: "European implied volatility (bracket collapsed with residual above \
                       tolerance: near-zero vega)",
                iterations,
            });
        }
    }
    Err(PricingError::NoConvergence { what: "European implied volatility", iterations: MAX_ITERS })
}

/// Implied volatility of an **American call** from its market price, by
/// bisection over the fast BOPM pricer.
pub fn american_call_bopm(
    params: &OptionParams,
    steps: usize,
    market_price: f64,
    cfg: &EngineConfig,
) -> Result<f64> {
    let params = params.validated()?;
    let price_at = |vol: f64| -> Result<f64> {
        let m = BopmModel::new(OptionParams { volatility: vol, ..params }, steps)?;
        Ok(fast::price_american_call(&m, cfg))
    };
    // The lattice itself is only constructible when V·√Δt dominates
    // |R−Y|·Δt (risk-neutral p ∈ (0,1)).  The threshold is closed-form
    // ([`BopmModel::min_stable_volatility`]), so the lower bracket seeds
    // just above it — normally the very first probe is stable.  The doubling
    // walk stays as a fallback against edge-of-threshold float rounding,
    // clamped to VOL_HI: doubling could otherwise overshoot the upper end
    // and leave an inverted bracket, or surface a raw
    // `UnstableDiscretisation` from a probe the caller never asked for.
    let mut lo = stability_seed(&params, steps);
    let p_lo = loop {
        match price_at(lo) {
            Ok(p) => break p,
            Err(PricingError::UnstableDiscretisation { reason }) => {
                if lo >= VOL_HI {
                    // Even the top of the search interval is unstable: no
                    // bracket exists at these parameters and step count.
                    return Err(PricingError::InvalidParams {
                        field: "steps",
                        reason: format!(
                            "no stable lattice discretisation for any volatility in \
                             [{VOL_LO}, {VOL_HI}] at steps = {steps}: {reason}"
                        ),
                    });
                }
                lo = (lo * 2.0).min(VOL_HI);
            }
            Err(e) => return Err(e),
        }
    };
    let mut hi = VOL_HI;
    let p_hi = if lo >= VOL_HI { p_lo } else { price_at(hi)? };
    if market_price < p_lo - 1e-9 || market_price > p_hi + 1e-9 {
        return Err(PricingError::InvalidParams {
            field: "market_price",
            reason: format!("price {market_price} outside attainable range [{p_lo:.6}, {p_hi:.6}]"),
        });
    }
    for iterations in 0..MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        let p = price_at(mid)?;
        if (p - market_price).abs() < PRICE_TOL {
            return Ok(mid);
        }
        if hi - lo < 1e-12 {
            // The bracket is exhausted but the residual is still above
            // tolerance: the quote sits where the price barely responds to
            // volatility (near-zero vega), so no volatility reproduces it —
            // answering `Ok(mid)` here would hand back an arbitrary point of
            // a flat region.
            return Err(PricingError::NoConvergence {
                what: "American implied volatility (bracket collapsed with residual above \
                       tolerance: near-zero vega)",
                iterations,
            });
        }
        if p > market_price {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Err(PricingError::NoConvergence { what: "American implied volatility", iterations: MAX_ITERS })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn european_roundtrip() {
        let p = OptionParams::paper_defaults();
        for opt in [OptionType::Call, OptionType::Put] {
            for true_vol in [0.08, 0.2, 0.55] {
                let quoted =
                    black_scholes_price(&OptionParams { volatility: true_vol, ..p }, opt).unwrap();
                let got = european(&p, opt, quoted).unwrap();
                assert!((got - true_vol).abs() < 1e-7, "{opt:?} σ={true_vol}: got {got}");
            }
        }
    }

    #[test]
    fn american_roundtrip() {
        let p = OptionParams::paper_defaults();
        let cfg = EngineConfig::default();
        for true_vol in [0.12, 0.3] {
            let m = BopmModel::new(OptionParams { volatility: true_vol, ..p }, 800).unwrap();
            let quoted = fast::price_american_call(&m, &cfg);
            let got = american_call_bopm(&p, 800, quoted, &cfg).unwrap();
            assert!((got - true_vol).abs() < 1e-6, "σ={true_vol}: got {got}");
        }
    }

    #[test]
    fn rejects_unattainable_prices() {
        let p = OptionParams::paper_defaults();
        assert!(european(&p, OptionType::Call, -1.0).is_err());
        assert!(european(&p, OptionType::Call, p.spot * 10.0).is_err());
        assert!(american_call_bopm(&p, 200, -5.0, &EngineConfig::default()).is_err());
    }

    #[test]
    fn european_flat_vega_exact_quote_still_inverts() {
        // Deep ITM at tiny expiry the price is volatility-independent to
        // double precision; an exactly attainable quote must still come back
        // `Ok` (residual 0), only off-curve quotes are rejected.
        let p = OptionParams {
            spot: 200.0,
            strike: 100.0,
            expiry: 1e-4,
            ..OptionParams::paper_defaults()
        };
        let quoted = black_scholes_price(&p, OptionType::Call).unwrap();
        assert!(european(&p, OptionType::Call, quoted).is_ok());
    }

    #[test]
    fn near_zero_vega_quote_is_no_convergence_not_arbitrary_vol() {
        // Deep in the money with a heavy dividend the American call is
        // exercised immediately: its price is exactly S − K for *every*
        // stable volatility (zero vega).  A quote offset from S − K by less
        // than the attainable-range slack used to collapse the bracket and
        // come back as `Ok(arbitrary vol)`; it must be `NoConvergence`.
        let p = OptionParams {
            spot: 10_000.0,
            strike: 1.0,
            dividend_yield: 0.3,
            ..OptionParams::paper_defaults()
        };
        let cfg = EngineConfig::default();
        let intrinsic = p.spot - p.strike;
        let got = american_call_bopm(&p, 64, intrinsic + 5e-10, &cfg);
        assert!(
            matches!(got, Err(PricingError::NoConvergence { .. })),
            "expected NoConvergence, got {got:?}"
        );
        // The exactly-attainable quote still inverts fine (residual 0).
        assert!(american_call_bopm(&p, 64, intrinsic, &cfg).is_ok());
    }

    #[test]
    fn no_stable_bracket_is_a_clear_invalid_params_error() {
        // R = 6 with one step: even V = VOL_HI = 5 gives e^{(R−Y)Δt} > u, so
        // p ∉ (0,1) everywhere in the bracket.  The old walk doubled past
        // VOL_HI (probing V ≈ 6.55 outside the search interval) and then
        // surfaced a raw UnstableDiscretisation from `price_at(hi)`.
        let p = OptionParams { rate: 6.0, dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let got = american_call_bopm(&p, 1, 10.0, &EngineConfig::default());
        assert!(
            matches!(got, Err(PricingError::InvalidParams { field: "steps", .. })),
            "expected InvalidParams, got {got:?}"
        );
    }

    #[test]
    fn stability_seed_sits_just_above_the_closed_form_floor() {
        // Binding floor: Y = 0.3 at 64 steps.
        let p = OptionParams { dividend_yield: 0.3, ..OptionParams::paper_defaults() };
        let seed = stability_seed(&p, 64);
        assert!(seed > VOL_LO);
        assert!(BopmModel::new(OptionParams { volatility: seed, ..p }, 64).is_ok());
        // Non-binding floor (R = Y ⇒ floor 0): the seed collapses to VOL_LO.
        let calm =
            OptionParams { rate: 0.02, dividend_yield: 0.02, ..OptionParams::paper_defaults() };
        assert_eq!(stability_seed(&calm, 252), VOL_LO);
        // Floor above the whole interval: clamped to VOL_HI, where the
        // no-stable-bracket error path takes over.
        let wild = OptionParams { rate: 6.0, dividend_yield: 0.0, ..calm };
        assert_eq!(stability_seed(&wild, 1), VOL_HI);
        // A quote whose true volatility sits barely above the floor still
        // round-trips through the seeded bracket.
        let true_vol = seed * 1.05;
        let cfg = EngineConfig::default();
        let m = BopmModel::new(OptionParams { volatility: true_vol, ..p }, 64).unwrap();
        let quoted = fast::price_american_call(&m, &cfg);
        let got = american_call_bopm(&p, 64, quoted, &cfg).unwrap();
        assert!((got - true_vol).abs() < 1e-6, "got {got} want {true_vol}");
    }

    #[test]
    fn bracket_walk_recovers_when_only_low_vols_are_unstable() {
        // Y = 0.3 makes volatilities below ≈ 0.0375 unstable at 64 steps;
        // the walk must clamp inside [VOL_LO, VOL_HI] and still invert.
        let p = OptionParams { dividend_yield: 0.3, ..OptionParams::paper_defaults() };
        let cfg = EngineConfig::default();
        let true_vol = 0.8;
        let m = BopmModel::new(OptionParams { volatility: true_vol, ..p }, 64).unwrap();
        let quoted = fast::price_american_call(&m, &cfg);
        let got = american_call_bopm(&p, 64, quoted, &cfg).unwrap();
        assert!((got - true_vol).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn monotone_in_market_price() {
        let p = OptionParams::paper_defaults();
        let q1 = european(&p, OptionType::Call, 5.0).unwrap();
        let q2 = european(&p, OptionType::Call, 9.0).unwrap();
        assert!(q2 > q1);
    }
}
