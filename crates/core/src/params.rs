//! Market and contract parameters (Table 1 of the paper).

use crate::error::{PricingError, Result};

/// Call or put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionType {
    /// Right to buy at the strike.
    Call,
    /// Right to sell at the strike.
    Put,
}

impl OptionType {
    /// Intrinsic (exercise) value at asset price `s` and strike `k`.
    #[inline]
    pub fn payoff(self, s: f64, k: f64) -> f64 {
        match self {
            OptionType::Call => (s - k).max(0.0),
            OptionType::Put => (k - s).max(0.0),
        }
    }
}

/// Exercise style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExerciseStyle {
    /// Exercisable only at expiry.
    European,
    /// Exercisable at any time up to expiry.
    American,
}

/// Market/contract parameters, following Table 1 of the paper.
///
/// All rates are annualised with continuous compounding; `expiry` is in
/// years.  The paper's experiments use `E = 252` trading days ≙ one year,
/// i.e. [`OptionParams::paper_defaults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionParams {
    /// Current asset price `S`.
    pub spot: f64,
    /// Strike price `K`.
    pub strike: f64,
    /// Risk-free rate `R`.
    pub rate: f64,
    /// Volatility `V`.
    pub volatility: f64,
    /// Continuous dividend yield `Y`.
    pub dividend_yield: f64,
    /// Time to expiry `E`, in years.
    pub expiry: f64,
}

impl OptionParams {
    /// Validates every field; returns `self` for chaining.
    pub fn validated(self) -> Result<Self> {
        fn positive(field: &'static str, v: f64) -> Result<()> {
            if !(v.is_finite() && v > 0.0) {
                return Err(PricingError::InvalidParams {
                    field,
                    reason: format!("must be a positive finite number, got {v}"),
                });
            }
            Ok(())
        }
        positive("spot", self.spot)?;
        positive("strike", self.strike)?;
        positive("volatility", self.volatility)?;
        positive("expiry", self.expiry)?;
        for (field, v) in [("rate", self.rate), ("dividend_yield", self.dividend_yield)] {
            if !v.is_finite() || v < 0.0 {
                return Err(PricingError::InvalidParams {
                    field,
                    reason: format!("must be a non-negative finite number, got {v}"),
                });
            }
        }
        Ok(self)
    }

    /// The fixed parameter set used throughout §5 of the paper:
    /// `E = 252` days (1 trading year), `K = 130`, `S = 127.62`,
    /// `R = 0.00163`, `V = 0.2`, `Y = 0.0163`.
    pub fn paper_defaults() -> Self {
        OptionParams {
            spot: 127.62,
            strike: 130.0,
            rate: 0.00163,
            volatility: 0.2,
            dividend_yield: 0.0163,
            expiry: 1.0,
        }
    }

    /// Per-step interval for a `steps`-step lattice.
    #[inline]
    pub fn dt(&self, steps: usize) -> f64 {
        self.expiry / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        assert!(OptionParams::paper_defaults().validated().is_ok());
    }

    #[test]
    fn rejects_nonpositive_spot() {
        let p = OptionParams { spot: 0.0, ..OptionParams::paper_defaults() };
        assert!(matches!(p.validated(), Err(PricingError::InvalidParams { field: "spot", .. })));
    }

    #[test]
    fn rejects_negative_rate() {
        let p = OptionParams { rate: -0.01, ..OptionParams::paper_defaults() };
        assert!(p.validated().is_err());
    }

    #[test]
    fn rejects_nan_vol() {
        let p = OptionParams { volatility: f64::NAN, ..OptionParams::paper_defaults() };
        assert!(p.validated().is_err());
    }

    #[test]
    fn payoff_call_put() {
        assert_eq!(OptionType::Call.payoff(110.0, 100.0), 10.0);
        assert_eq!(OptionType::Call.payoff(90.0, 100.0), 0.0);
        assert_eq!(OptionType::Put.payoff(90.0, 100.0), 10.0);
        assert_eq!(OptionType::Put.payoff(110.0, 100.0), 0.0);
    }

    #[test]
    fn dt_divides_expiry() {
        let p = OptionParams::paper_defaults();
        assert!((p.dt(252) - 1.0 / 252.0).abs() < 1e-15);
    }
}
