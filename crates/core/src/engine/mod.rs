//! Nonlinear-stencil solvers — the paper's primary contribution.
//!
//! A *nonlinear stencil* in the sense of the paper updates each cell with
//! `max(linear combination of the previous row, closed-form obstacle)`.
//! The space-time grid then splits into a **red** region (linear update wins)
//! and a **green** region (obstacle wins) separated by a monotone boundary
//! that drifts at most one column per step (Cor. 2.7 / Thm 4.3 / Cor. A.6).
//!
//! Three engines cover the geometries used by the pricing models:
//!
//! * [`right_cone`]: kernel anchored at offset 0 (cone opens rightward),
//!   green region on the *right*, boundary drifts left — BOPM (§2.3) and
//!   TOPM (§3, App. A.3) American **calls**;
//! * [`left_cone`]: the same anchor-0 kernels with the green region on the
//!   *left*, boundary drifting left — BOPM/TOPM American **puts**, the
//!   mirror geometry under the discrete put–call symmetry;
//! * [`centered`]: symmetric 3-point kernel, green region on the *left*,
//!   boundary drifts left — the BSM explicit finite difference (§4.3).
//!
//! All three advance a compressed row representation ([`RedRow`] /
//! [`left_cone::GreenPrefixRow`] / [`centered::GreenLeftRow`]) by `h` steps
//! in `O(h log² h)` work and `O(h)` span, calling the linear FFT advance of
//! `amopt-stencil` on regions whose redness is certified by the drift bound,
//! and recursing on a boundary-centred window of half height.  The call
//! engine works in premium space (`δ = G − green`, the affine-correction
//! trick below); the put engines work in raw value space, where the grid
//! values are bounded by the strike.

pub mod centered;
pub mod left_cone;
pub mod right_cone;

use amopt_stencil::{Backend, Segment, StencilKernel};

/// Times the enclosing scope as one kernel phase when the crate is built
/// with the `obs` feature; expands to nothing otherwise, so the default
/// build pays no cost — not even the `Instant::now` call.
macro_rules! kernel_scope {
    ($phase:ident) => {
        #[cfg(feature = "obs")]
        let _kernel_scope =
            amopt_obs::kernel::KernelScope::start(amopt_obs::kernel::KernelPhase::$phase);
    };
}
pub(crate) use kernel_scope;

/// Obstacle (green-region closed form) of the shape all three pricing models
/// share: `green(t, c) = α·φ(t, c) + β` where the *node function* `φ` is an
/// eigenfunction of one linear stencil step `L` (`L φ_t = λ·φ_{t+1}`) and the
/// constants have eigenvalue `μ = Σ kernel taps` (`L 1 = μ·1`).
///
/// This structure is what makes the **premium-space** formulation possible:
/// the engines store `δ(t,c) = G(t,c) − green(t,c) ≥ 0` instead of raw grid
/// values.  On green cells `δ = 0` *exactly*, so rows extend with exact
/// zeros, and `δ` is bounded by a constant independent of `T` — while raw
/// grid values grow like `u^T`, whose dynamic range would drown the FFT's
/// absolute error (a real failure we observed at `T ≈ 2×10⁴`).  After `h`
/// linear steps the decomposition gives the exact affine correction
///
/// `δ(t+h, c) = (L^h δ(t,·))(c) + α(λ^h − 1)·φ(t+h, c) + β(μ^h − 1)`.
pub struct ExpObstacle<P> {
    /// Node function `φ(t, c)` (e.g. the BOPM node price `S·u^{2c−(T−t)}`).
    pub phi: P,
    /// Eigenvalue of `φ`: `L φ_t = λ φ_{t+1}` (e.g. `e^{−YΔt}`).
    pub lambda: f64,
    /// Eigenvalue of constants: sum of kernel taps (e.g. `e^{−RΔt}`).
    pub mu: f64,
    /// Coefficient of `φ` in the obstacle.
    pub alpha: f64,
    /// Constant term of the obstacle.
    pub beta: f64,
}

impl<P: Fn(u64, i64) -> f64 + Sync> ExpObstacle<P> {
    /// Builds an obstacle spec.  `μ` is derived from the actual kernel taps
    /// so the scalar corrections match what repeated application of `L`
    /// computes numerically; `λ` is model-specific
    /// (`λ = Σ_m w_m φ(t, c+anchor+m) / φ(t+1, c)`, column-independent for
    /// exponential node functions) and supplied by the caller.
    pub fn new(phi: P, kernel: &StencilKernel, lambda: f64, alpha: f64, beta: f64) -> Self {
        let mu = kernel.weights().iter().sum();
        ExpObstacle { phi, lambda, mu, alpha, beta }
    }

    /// Obstacle value `green(t, c)`.
    #[inline]
    pub fn green(&self, t: u64, c: i64) -> f64 {
        self.alpha * (self.phi)(t, c) + self.beta
    }

    /// Coefficients `(a, b)` of the `h`-step drift
    /// `A_h(t+h, c) = a·φ(t+h, c) + b`.
    #[inline]
    pub fn drift_coeffs(&self, h: u64) -> (f64, f64) {
        let pow = |base: f64| -> f64 {
            debug_assert!(base > 0.0);
            (h as f64 * base.ln()).exp()
        };
        (self.alpha * (pow(self.lambda) - 1.0), self.beta * (pow(self.mu) - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_stencil::StencilKernel;

    fn obstacle() -> ExpObstacle<impl Fn(u64, i64) -> f64 + Sync> {
        // BOPM-like: φ = u^{2c−(T−t)}, λ = s0/u + s1·u with a 64-step grid.
        let u: f64 = 1.01;
        let (s0, s1) = (0.49_f64, 0.505_f64);
        let kernel = StencilKernel::new(vec![s0, s1], 0);
        let phi = move |t: u64, c: i64| u.powi((2 * c - (64 - t as i64)) as i32);
        ExpObstacle::new(phi, &kernel, s0 / u + s1 * u, 1.0, -2.5)
    }

    #[test]
    fn green_combines_phi_and_constant() {
        let ob = obstacle();
        let t = 3u64;
        let c = 7i64;
        assert!((ob.green(t, c) - ((ob.phi)(t, c) - 2.5)).abs() < 1e-15);
    }

    #[test]
    fn mu_is_kernel_tap_sum() {
        let ob = obstacle();
        assert!((ob.mu - (0.49 + 0.505)).abs() < 1e-15);
    }

    #[test]
    fn drift_coeffs_compose_like_the_stencil() {
        // A_h must equal the closed form α(λ^h − 1)φ + β(μ^h − 1); check the
        // one-step case against a direct application of L to green.
        let ob = obstacle();
        let (da, db) = ob.drift_coeffs(1);
        let (t, c) = (5u64, 9i64);
        // L green(t,·)(c) = s0·green(t,c) + s1·green(t,c+1)
        let lg = 0.49 * ob.green(t, c) + 0.505 * ob.green(t, c + 1);
        let want = lg - ob.green(t + 1, c);
        let got = da * (ob.phi)(t + 1, c) + db;
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn drift_is_zero_at_h_zero_and_grows_multiplicatively() {
        let ob = obstacle();
        let (a0, b0) = ob.drift_coeffs(0);
        assert_eq!((a0, b0), (0.0, 0.0));
        let (a1, _) = ob.drift_coeffs(1);
        let (a2, _) = ob.drift_coeffs(2);
        // α(λ²−1) = α(λ−1)(λ+1)
        assert!((a2 - a1 * (ob.lambda + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn red_row_accounting() {
        use amopt_stencil::Segment;
        let row = RedRow { t: 4, reds: Segment::new(3, vec![1.0, 2.0]), boundary: 4 };
        assert_eq!(row.red_count(), 2);
        assert!(!row.is_all_green());
        row.assert_consistent();
        let empty = RedRow { t: 0, reds: Segment::new(5, vec![]), boundary: 4 };
        assert!(empty.is_all_green());
        assert_eq!(empty.red_count(), 0);
    }
}

/// Tuning knobs shared by both engines.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Trapezoid height at or below which the naive loop runs
    /// (the paper found 8 empirically optimal; see §5.1).
    pub base_cutoff: u64,
    /// Heights below this run without fork-join (task overhead dominates).
    pub sequential_below: u64,
    /// Linear-advance backend for certified-red regions.
    pub backend: Backend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { base_cutoff: 8, sequential_below: 512, backend: Backend::Fft }
    }
}

/// A row of the space-time grid in compressed premium form for the
/// right-cone engine: red (continuation-valued) cells occupy
/// `[reds.start, boundary]` and store the **premium** `δ = G − green ≥ 0`;
/// every cell right of `boundary` is green with `δ = 0` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RedRow {
    /// Time index: steps elapsed from the known initial row (expiry).
    pub t: u64,
    /// Stored red premiums over `[reds.start, boundary]`; empty iff
    /// `boundary < reds.start`.
    pub reds: Segment,
    /// Last red column; `reds.start − 1` encodes an all-green window.
    pub boundary: i64,
}

impl RedRow {
    /// Number of stored red cells.
    #[inline]
    pub fn red_count(&self) -> i64 {
        (self.boundary - self.reds.start + 1).max(0)
    }

    /// True when no red cell remains in the window.
    #[inline]
    pub fn is_all_green(&self) -> bool {
        self.boundary < self.reds.start
    }

    /// Internal consistency between the segment extent and the boundary.
    pub fn assert_consistent(&self) {
        debug_assert_eq!(
            self.reds.len() as i64,
            self.red_count(),
            "red segment [{}..{}] disagrees with boundary {}",
            self.reds.start,
            self.reds.end(),
            self.boundary
        );
    }
}
