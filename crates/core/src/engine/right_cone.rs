//! Right-cone nonlinear stencil engine (§2.3 of the paper, generalised to
//! any kernel anchored at offset 0 — σ = 2 covers BOPM, σ = 3 covers TOPM).
//!
//! Grid conventions (`t` counts steps *from expiry*, increasing as pricing
//! walks backward in market time):
//!
//! * cell `(t+1, c)` depends on cells `(t, c), …, (t, c+σ−1)`;
//! * red cells (linear update wins) occupy a prefix `[a, j_t]` of the row,
//!   green cells (obstacle wins) the rest, and the boundary obeys
//!   `j_t − 1 ≤ j_{t+1} ≤ j_t` (drifts left at most one column per step —
//!   Cor. 2.7 / Cor. A.6).
//!
//! ### Premium space
//! The engine stores the premium `δ(t,c) = G(t,c) − green(t,c)`, which is
//! `0` exactly on green cells and bounded by a `T`-independent constant on
//! red cells — raw grid values grow like `u^T`, and feeding that dynamic
//! range to an FFT lets its *absolute* error (∝ the largest input) swamp the
//! answer.  Because the obstacle is `α·φ + β` with `φ` an eigenfunction of
//! the stencil (see [`super::ExpObstacle`]), advancing `h` purely linear
//! steps in premium space costs one correlation plus a closed-form affine
//! drift:
//!
//! `δ(t+h, c) = (L^h δ(t,·))(c) + a_h·φ(t+h, c) + b_h`.
//!
//! ### Certified-red prefix
//! After `h` steps from a row with boundary `j`, output cell `c` is
//! guaranteed red — with its entire dependency cone red as well, so the
//! update is purely linear — if `c ≤ j − guard(h)` where
//! `guard(h) = max(h, 1 + (σ−1)(h−1))` (`= h` for σ = 2, `= 2h−1` for σ = 3).
//! Proof sketch: the cone of `(t+h, c)` at depth `m` reaches right to
//! `c + (σ−1)(h−m)`, and the boundary at depth `m` is at least `j − m`;
//! minimising over `m ∈ [1, h]` gives the bound.
//!
//! The engine advances the certified prefix with one FFT correlation and
//! recurses on a boundary window of half height — the trapezoid
//! decomposition of Fig. 3(b) — for `O(h log² h)` work and `O(h)` span
//! (Theorem 2.8).

use super::{kernel_scope, EngineConfig, ExpObstacle, RedRow};
use amopt_parallel::join;
use amopt_stencil::{advance_values_with, with_scratch, Segment, StencilKernel};

/// Width of the certified-red guard band after `h` steps for a kernel of
/// span `σ−1`.
#[inline]
pub fn guard(span: usize, h: u64) -> i64 {
    let h = h as i64;
    let span = span as i64;
    h.max(1 + span * (h - 1))
}

/// Advances the premium values over absolute columns `[lo, hi]` (stored
/// reds up to `boundary`, exact zeros beyond) by `h` linear steps, staging
/// the padded input row in pooled scratch so batched pricings do not
/// reallocate it per trapezoid.
fn advance_premium_row(
    reds: &Segment,
    boundary: i64,
    lo: i64,
    hi: i64,
    kernel: &StencilKernel,
    h: u64,
    cfg: &EngineConfig,
) -> Segment {
    // amopt-lint: hot-path
    kernel_scope!(FftPass);
    debug_assert!(lo >= reds.start, "requested columns below the stored window");
    with_scratch(|s| {
        let staging = &mut s.staging;
        staging.clear();
        staging.reserve((hi - lo + 1).max(0) as usize);
        for c in lo..=hi {
            staging.push(if c <= boundary { reds.get(c) } else { 0.0 });
        }
        advance_values_with(staging, lo, kernel, h, cfg.backend, &mut s.fft)
    })
}

/// Naive base case: advances the premium window one step at a time; the
/// boundary is the last column whose linear candidate stays non-negative.
fn base_naive<P>(kernel: &StencilKernel, obstacle: &ExpObstacle<P>, row: &RedRow, h: u64) -> RedRow
where
    P: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    kernel_scope!(BaseCase);
    let a = row.reds.start;
    let weights = kernel.weights();
    let (da, db) = obstacle.drift_coeffs(1);
    // amopt-lint: allow(hot-path-alloc) -- one working copy per base case; per-step rows replace it in place
    let mut vals = row.reds.values.clone();
    let mut boundary = row.boundary;
    let mut t = row.t;
    for _ in 0..h {
        if boundary < a {
            // All-green window stays green under the monotone drift.
            t += 1;
            continue;
        }
        let t_next = t + 1;
        let mut next = Vec::with_capacity((boundary - a + 1) as usize);
        let mut new_boundary = a - 1;
        for c in a..=boundary {
            let mut lin = 0.0;
            for (m, &w) in weights.iter().enumerate() {
                let cc = c + m as i64;
                if cc <= boundary {
                    lin += w * vals[(cc - a) as usize];
                }
            }
            let cand = lin + da * (obstacle.phi)(t_next, c) + db;
            if cand >= 0.0 {
                new_boundary = c;
            }
            next.push(cand.max(0.0));
        }
        next.truncate((new_boundary - a + 1).max(0) as usize);
        vals = next;
        boundary = new_boundary;
        t = t_next;
    }
    RedRow { t, reds: Segment::new(a, vals), boundary }
}

/// Applies the closed-form drift to a freshly advanced premium segment.
fn apply_drift<P>(seg: &mut Segment, obstacle: &ExpObstacle<P>, h: u64, t_out: u64)
where
    P: Fn(u64, i64) -> f64 + Sync,
{
    let (da, db) = obstacle.drift_coeffs(h);
    let start = seg.start;
    for (k, v) in seg.values.iter_mut().enumerate() {
        *v += da * (obstacle.phi)(t_out, start + k as i64) + db;
    }
}

/// Advances a [`RedRow`] by `h` steps of the nonlinear stencil
/// `G_{t+1}[c] = max(Σ_m kernel[m]·G_t[c+m], green(t+1, c))`, working in
/// premium space throughout.
///
/// Work `O(h log² h)`, span `O(h)` (Theorem 2.8).
///
/// # Panics
/// If the kernel anchor is non-zero or it has fewer than two taps.
pub fn advance_red_row<P>(
    kernel: &StencilKernel,
    obstacle: &ExpObstacle<P>,
    row: &RedRow,
    h: u64,
    cfg: &EngineConfig,
) -> RedRow
where
    P: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    assert_eq!(kernel.anchor(), 0, "right-cone engine requires anchor 0");
    assert!(kernel.span() >= 1, "right-cone engine requires at least two taps");
    row.assert_consistent();

    let span = kernel.span();
    // amopt-lint: allow(hot-path-alloc) -- one working row per advance call; iterations replace it via the stitch
    let mut cur = row.clone();
    let mut remaining = h;

    while remaining > 0 {
        if cur.is_all_green() {
            // Green forever after (boundary never moves right).
            cur.t += remaining;
            break;
        }
        let a = cur.reds.start;
        let j = cur.boundary;
        let red_count = cur.red_count();

        if remaining <= cfg.base_cutoff {
            return base_naive(kernel, obstacle, &cur, remaining);
        }

        // Largest half-height whose boundary window still fits inside the
        // stored red prefix.
        let h1_cap = max_height_for_guard(span, red_count);
        let h1 = (remaining / 2).min(h1_cap);
        if h1 == 0 {
            // Red window too narrow to split — advance a small chunk naively.
            let step = remaining.min(cfg.base_cutoff.max(1));
            cur = base_naive(kernel, obstacle, &cur, step);
            remaining -= step;
            continue;
        }

        let g1 = guard(span, h1);
        let win_lo = j - g1 + 1;
        debug_assert!(win_lo > a, "window start {win_lo} must lie above segment start {a}");

        // Certified-red bulk: output [a, j − g1] needs input [a, j − g1 + (σ−1)h1].
        let bulk_hi_in = j - g1 + (span as u64 * h1) as i64;
        let sub_row = RedRow { t: cur.t, reds: cur.reds.extract(win_lo, j), boundary: j };

        let t_out = cur.t + h1;
        let parallel = remaining >= cfg.sequential_below;
        let bulk_task = || {
            let mut out = advance_premium_row(&cur.reds, j, a, bulk_hi_in, kernel, h1, cfg);
            apply_drift(&mut out, obstacle, h1, t_out);
            out
        };
        let sub_task = || {
            // Inclusive timing: nested window recursions (and the FFT/base
            // scopes inside them) each count their full extent.
            kernel_scope!(BoundaryWindow);
            advance_red_row(kernel, obstacle, &sub_row, h1, cfg)
        };
        let (bulk_out, sub_out) =
            if parallel { join(bulk_task, sub_task) } else { (bulk_task(), sub_task()) };

        debug_assert_eq!(bulk_out.start, a);
        debug_assert_eq!(bulk_out.last_col(), j - g1);
        debug_assert_eq!(sub_out.reds.start, win_lo);
        debug_assert!(sub_out.boundary >= win_lo - 1 && sub_out.boundary <= j);

        // Stitch: [a, j−g1] from the FFT bulk, (j−g1, j_mid] from the window.
        // An all-green window reports boundary win_lo − 1 = j − g1, exactly
        // the bulk's last column — consistent either way.
        let mut vals = bulk_out.values;
        vals.extend_from_slice(&sub_out.reds.values);
        let boundary = sub_out.boundary.max(j - g1).min(j);
        vals.truncate((boundary - a + 1).max(0) as usize);
        cur = RedRow { t: t_out, reds: Segment::new(a, vals), boundary };
        cur.assert_consistent();
        remaining -= h1;
    }
    cur
}

/// Largest `h` with `guard(h) < red_count` (so the boundary window
/// `[j − guard(h) + 1, j]` fits inside the stored red prefix).
fn max_height_for_guard(span: usize, red_count: i64) -> u64 {
    if red_count <= 1 {
        return 0;
    }
    let by_h = red_count - 1; // h < red_count
    let by_span = (red_count - 2) / span as i64 + 1; // 1 + span(h−1) ≤ red_count−1
    by_h.min(by_span).max(0) as u64
}

/// Drives the engine from the known expiry row to the root and returns the
/// **grid value** (premium + obstacle) of the cell `(total_steps, root_col)`.
pub fn solve_to_root<P>(
    kernel: &StencilKernel,
    obstacle: &ExpObstacle<P>,
    init: RedRow,
    total_steps: u64,
    root_col: i64,
    cfg: &EngineConfig,
) -> f64
where
    P: Fn(u64, i64) -> f64 + Sync,
{
    let remaining = total_steps - init.t;
    let final_row = advance_red_row(kernel, obstacle, &init, remaining, cfg);
    debug_assert_eq!(final_row.t, total_steps);
    let green = obstacle.green(total_steps, root_col);
    if root_col <= final_row.boundary && final_row.reds.contains(root_col) {
        final_row.reds.get(root_col) + green
    } else {
        green
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_stencil::Backend;

    /// Reference solver in raw grid space: dense rows, explicit max per cell.
    fn dense_solve<P: Fn(u64, i64) -> f64 + Sync>(
        kernel: &StencilKernel,
        obstacle: &ExpObstacle<P>,
        init: &[f64],
        steps: u64,
    ) -> Vec<f64> {
        let mut row = init.to_vec();
        let span = kernel.span();
        for t in 0..steps {
            let next_len = row.len() - span;
            let mut next = Vec::with_capacity(next_len);
            for c in 0..next_len {
                let lin: f64 =
                    kernel.weights().iter().enumerate().map(|(m, &w)| w * row[c + m]).sum();
                next.push(lin.max(obstacle.green(t + 1, c as i64)));
            }
            row = next;
        }
        row
    }

    /// A synthetic obstacle problem with provably monotone boundary drift:
    /// constants derived exactly like a genuine BOPM (span 1) or TOPM
    /// (span 2) American call, for which Corollaries 2.7/A.6 guarantee the
    /// red–green structure the engine relies on.
    #[allow(clippy::type_complexity)]
    fn synthetic_problem(
        steps: u64,
        span: usize,
    ) -> (StencilKernel, ExpObstacle<impl Fn(u64, i64) -> f64 + Sync + Clone>, Vec<f64>, i64) {
        let r_dt = 0.0005_f64;
        let y_dt = 0.0010_f64;
        let m = (-r_dt).exp();
        let (kernel, alpha_exp) = match span {
            1 => {
                let alpha = 0.02_f64;
                let u = alpha.exp();
                let p = ((r_dt - y_dt).exp() - 1.0 / u) / (u - 1.0 / u);
                assert!(p > 0.0 && p < 1.0);
                (StencilKernel::new(vec![m * (1.0 - p), m * p], 0), alpha)
            }
            2 => {
                let alpha = 0.04_f64;
                let su = (alpha / 2.0).exp();
                let sd = 1.0 / su;
                let b = ((r_dt - y_dt) / 2.0).exp();
                let pu = ((b - sd) / (su - sd)).powi(2);
                let pd = ((su - b) / (su - sd)).powi(2);
                let po = 1.0 - pu - pd;
                assert!(pu > 0.0 && pd > 0.0 && po > 0.0);
                (StencilKernel::new(vec![m * pd, m * po, m * pu], 0), alpha)
            }
            _ => unreachable!(),
        };
        // Node price in grid coordinates: u^{qc − i} with q = 2 (span 1)
        // or q = 1 (span 2) and i = steps − t.
        let q = if span == 1 { 2.0 } else { 1.0 };
        let strike = (alpha_exp * 8.0).exp();
        let phi = move |t: u64, c: i64| -> f64 {
            let i = (steps - t) as f64;
            (alpha_exp * (q * c as f64 - i)).exp()
        };
        // Eigenvalue: φ_t(c+m) = u^{q(c+m) − i}, φ_{t+1}(c) = u^{qc − i + 1},
        // so λ = (Σ_m w_m u^{q·m}) / u — for the BOPM instance this is
        // s0/u + s1·u = e^{−YΔt}, the identity from Lemma 2.2's proof.
        let u_q = (alpha_exp * q).exp();
        let lambda: f64 = kernel
            .weights()
            .iter()
            .enumerate()
            .map(|(mm, &w)| w * u_q.powi(mm as i32))
            .sum::<f64>()
            / alpha_exp.exp();
        let obstacle = ExpObstacle::new(phi, &kernel, lambda, 1.0, -strike);

        // Extended expiry row: value = max(0, green(0,c)); red prefix stores
        // the premium −green ≥ 0.
        let j0 = ((steps as f64 + 8.0) / q).floor() as i64;
        let width = j0.max(0) + steps as i64 * span as i64 + 1;
        let mut boundary = -1i64;
        let mut init = Vec::with_capacity(width as usize);
        for c in 0..width {
            let g = obstacle.green(0, c);
            if g <= 0.0 {
                boundary = c;
            }
            init.push(g.max(0.0));
        }
        assert!(boundary <= j0);
        (kernel, obstacle, init, boundary)
    }

    fn premium_row_from_init<P: Fn(u64, i64) -> f64 + Sync>(
        obstacle: &ExpObstacle<P>,
        init: &[f64],
        boundary: i64,
    ) -> RedRow {
        let premiums: Vec<f64> =
            (0..=boundary.max(-1)).map(|c| init[c as usize] - obstacle.green(0, c)).collect();
        RedRow { t: 0, reds: Segment::new(0, premiums), boundary }
    }

    fn check_matches_dense(steps: u64, span: usize, cfg: &EngineConfig) {
        let (kernel, obstacle, init, j0) = synthetic_problem(steps, span);
        let dense = dense_solve(&kernel, &obstacle, &init, steps);
        let row = premium_row_from_init(&obstacle, &init, j0);
        let got = solve_to_root(&kernel, &obstacle, row, steps, 0, cfg);
        assert!(
            (got - dense[0]).abs() < 1e-9 * dense[0].abs().max(1.0),
            "steps={steps} span={span}: fast {got} vs dense {}",
            dense[0]
        );
    }

    #[test]
    fn eigenvalue_identity_holds() {
        // λ must satisfy L φ_t = λ φ_{t+1} for both synthetic kernels.
        for span in [1usize, 2] {
            let (kernel, obstacle, _, _) = synthetic_problem(64, span);
            for (t, c) in [(0u64, 5i64), (3, 17), (10, 40)] {
                let lhs: f64 = kernel
                    .weights()
                    .iter()
                    .enumerate()
                    .map(|(m, &w)| w * (obstacle.phi)(t, c + m as i64))
                    .sum();
                let rhs = obstacle.lambda * (obstacle.phi)(t + 1, c);
                assert!(
                    (lhs - rhs).abs() < 1e-12 * rhs.abs().max(1e-12),
                    "span={span} t={t} c={c}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn binomial_like_matches_dense_across_sizes() {
        let cfg = EngineConfig::default();
        for steps in [1u64, 2, 5, 8, 9, 16, 33, 100, 257, 1000] {
            check_matches_dense(steps, 1, &cfg);
        }
    }

    #[test]
    fn trinomial_like_matches_dense_across_sizes() {
        let cfg = EngineConfig::default();
        for steps in [1u64, 3, 8, 21, 64, 200, 513] {
            check_matches_dense(steps, 2, &cfg);
        }
    }

    #[test]
    fn different_base_cutoffs_agree() {
        for cutoff in [1u64, 4, 8, 32, 100] {
            let cfg = EngineConfig { base_cutoff: cutoff, ..EngineConfig::default() };
            check_matches_dense(300, 1, &cfg);
            check_matches_dense(150, 2, &cfg);
        }
    }

    #[test]
    fn direct_taps_backend_agrees() {
        let cfg = EngineConfig { backend: Backend::DirectTaps, ..EngineConfig::default() };
        check_matches_dense(200, 1, &cfg);
    }

    #[test]
    fn guard_formulas() {
        assert_eq!(guard(1, 1), 1);
        assert_eq!(guard(1, 10), 10);
        assert_eq!(guard(2, 1), 1);
        assert_eq!(guard(2, 10), 19);
    }

    #[test]
    fn max_height_respects_guard() {
        for span in [1usize, 2] {
            for red_count in 1i64..200 {
                let h = max_height_for_guard(span, red_count);
                if h > 0 {
                    assert!(guard(span, h) < red_count, "span={span} rc={red_count} h={h}");
                    assert!(
                        guard(span, h + 1) >= red_count,
                        "span={span} rc={red_count}: h={h} not maximal"
                    );
                }
            }
        }
    }

    #[test]
    fn all_green_short_circuits() {
        let kernel = StencilKernel::new(vec![0.5, 0.5], 0);
        let obstacle = ExpObstacle::new(|_t: u64, c: i64| 100.0 + c as f64, &kernel, 1.0, 1.0, 0.0);
        let row = RedRow { t: 0, reds: Segment::new(0, vec![]), boundary: -1 };
        let v = solve_to_root(&kernel, &obstacle, row, 50, 0, &EngineConfig::default());
        assert_eq!(v, 100.0);
    }

    #[test]
    fn boundary_position_matches_dense_reference() {
        let steps = 120u64;
        let (kernel, obstacle, init, j0) = synthetic_problem(steps, 1);
        // Dense boundary tracking, asserting the ≤1 drift the engine needs.
        let mut row = init.clone();
        let mut dense_boundary = j0;
        for t in 0..steps {
            let mut next = Vec::with_capacity(row.len() - 1);
            let mut b = -1i64;
            for c in 0..row.len() - 1 {
                let lin = kernel.weights()[0] * row[c] + kernel.weights()[1] * row[c + 1];
                let ob = obstacle.green(t + 1, c as i64);
                if lin >= ob {
                    b = c as i64;
                }
                next.push(lin.max(ob));
            }
            row = next;
            assert!(b <= dense_boundary && b >= dense_boundary - 1, "drift violated at t={t}");
            dense_boundary = b;
        }
        let init_row = premium_row_from_init(&obstacle, &init, j0);
        let out = advance_red_row(&kernel, &obstacle, &init_row, steps, &EngineConfig::default());
        assert_eq!(out.t, steps);
        assert_eq!(out.boundary, dense_boundary);
    }

    #[test]
    fn premiums_stay_bounded_at_large_sizes() {
        // The whole point of premium space: values stay O(strike) even when
        // raw grid values reach u^steps ≫ 1e12.
        let steps = 4096u64;
        let (kernel, obstacle, init, j0) = synthetic_problem(steps, 1);
        let row = premium_row_from_init(&obstacle, &init, j0);
        let out = advance_red_row(&kernel, &obstacle, &row, steps, &EngineConfig::default());
        let bound = -obstacle.beta * 4.0; // a few strikes
        for &v in &out.reds.values {
            assert!(v.is_finite() && v >= -1e-9 && v < bound, "premium {v} out of range");
        }
    }
}
