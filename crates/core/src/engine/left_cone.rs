//! Left-cone nonlinear stencil engine — American **puts** under BOPM/TOPM.
//!
//! Same anchor-0 kernels as [`super::right_cone`] (σ = 2 covers BOPM, σ = 3
//! covers TOPM), mirrored obstacle geometry: the green (early-exercise)
//! region sits on the **left** of every row (low columns = low asset
//! prices), the red (continuation) region on the right, and the last green
//! column `f_t` drifts **left** by at most `σ − 1` columns per interior
//! step: `f_t − (σ−1) ≤ f_{t+1} ≤ f_t`.  The drift bound is the mirror of
//! Cor. 2.7 / Cor. A.6 under column reflection (`j ↦ i·(σ−1) − j` maps the
//! put's green-left triangle onto a call-type green-right one; for the
//! binomial lattice the reflection is the exact discrete put–call symmetry
//! `P(S, K, R, Y) = C(K, S, Y, R)`).  Note the asymmetry with the call
//! engine: a fixed column *gains* one factor of `u` per backward step, so
//! the put boundary drifts left up to `σ − 1 ≥ 1` columns per step (the
//! trinomial boundary typically drops 1–2 columns every step), while it
//! never moves right.
//!
//! Three structural differences from the right cone:
//!
//! * **Raw value space.**  Put grid values are bounded by the strike `K`
//!   everywhere, so there is no `u^T` dynamic-range hazard and rows store
//!   raw values (the premium trick of the call engine would in fact be
//!   *wrong* here: the put premium `G − green` diverges like `φ − K` on the
//!   deep-out-of-the-money right, exactly where the call's premium is zero).
//! * **Exact zero tail.**  At expiry the payoff `(K − φ)₊` vanishes right of
//!   the leaf boundary `f₀`, and an anchor-0 cone only looks right — so
//!   `G(t, c) = 0` *exactly* for every `c > f₀`, at every `t`.  Rows
//!   therefore store red values only up to the support edge and treat the
//!   tail as implicit zeros.
//! * **Whole-prefix certification.**  The boundary only moves left, so any
//!   cell right of the *current* boundary has an all-red dependency cone at
//!   every depth: the entire stored red region advances with one FFT
//!   correlation, no guard band.  The nonlinear work concentrates in the
//!   trapezoid of freshly exposed columns `(f_{t+h}, f_t]` — a window of
//!   width `O(σh)` that recurses at half height, giving `O(h log² h)` work
//!   and `O(h)` span like the other two engines.
//!
//! Rows also carry the cone edge `hi` (the triangle hypotenuse in engine
//! coordinates: `hi = σ'·(T − t)` with σ' the kernel span), which shrinks by
//! the span each step; the recursion windows are genuinely truncated rows of
//! the same type.

use super::{kernel_scope, EngineConfig};
use amopt_parallel::join;
use amopt_stencil::{advance_values_with, with_scratch, Segment, StencilKernel};

/// A row in compressed green-prefix form: cells `[?, boundary]` are green
/// (obstacle closed form), cells `(boundary, hi]` are red with the prefix
/// `(boundary, reds.end())` stored and the tail `[reds.end(), hi]` an
/// implicit *exact* zero (see the module docs on the zero tail).
#[derive(Debug, Clone, PartialEq)]
pub struct GreenPrefixRow {
    /// Steps elapsed from the known initial row (expiry).
    pub t: u64,
    /// Last green column `f`; `< reds.start` of the cone means no green cell
    /// is in view, `≥ hi` means every cone cell is green.
    pub boundary: i64,
    /// Last valid column of the row (the cone's right edge).
    pub hi: i64,
    /// Stored red values starting at `boundary + 1`; columns from
    /// `reds.end()` through `hi` are exact zeros.
    pub reds: Segment,
}

impl GreenPrefixRow {
    /// Number of red cells in view (stored plus implicit zeros).
    #[inline]
    pub fn red_count(&self) -> i64 {
        (self.hi - self.boundary).max(0)
    }

    /// True when every cone cell is green.
    #[inline]
    pub fn is_all_green(&self) -> bool {
        self.boundary >= self.hi
    }

    /// Internal consistency between segment extent, boundary and `hi`.
    pub fn assert_consistent(&self) {
        debug_assert_eq!(self.reds.start, self.boundary + 1, "red segment must start after f");
        debug_assert!(
            self.reds.end() - 1 <= self.hi,
            "red segment [{}, {}) exceeds cone edge {}",
            self.reds.start,
            self.reds.end(),
            self.hi
        );
    }

    /// Row value at column `c ∈ [boundary', hi]` (green closed form at or
    /// below the boundary, stored red or implicit zero above it).
    pub fn value_at<G: Fn(u64, i64) -> f64>(&self, green: &G, c: i64) -> f64 {
        if c <= self.boundary {
            green(self.t, c)
        } else if self.reds.contains(c) {
            self.reds.get(c)
        } else {
            0.0
        }
    }

    /// Copy of the red cells over `[lo, hi]` (inclusive), materialising the
    /// implicit zero tail.  `lo` must sit above the boundary and `hi` within
    /// the cone.
    fn extract_reds(&self, lo: i64, hi: i64) -> Segment {
        debug_assert!(lo > self.boundary && hi <= self.hi);
        let mut values = Vec::with_capacity((hi - lo + 1).max(0) as usize);
        for c in lo..=hi {
            values.push(if self.reds.contains(c) { self.reds.get(c) } else { 0.0 });
        }
        Segment::new(lo, values)
    }
}

/// Locates the last green column of a single-crossing row: `green(j)` must
/// be monotone (true up to some column, false beyond), and column `−1` acts
/// as a virtual green sentinel (returned when no column is green).
///
/// Gallops to a green/red bracket from the `start` hint and binary-searches
/// the crossing — `O(log)` predicate evaluations however far the true
/// boundary sits from the hint.  Shared by the BOPM and TOPM put drivers,
/// which materialise row `T−1` with an honestly located boundary (the
/// expiry transition is the one step the interior drift lemmas do not
/// cover).
pub fn last_green_from(start: i64, green: impl Fn(i64) -> bool) -> i64 {
    let start = start.max(0);
    let (mut lo, mut hi); // invariant: lo green or −1, hi red
    if green(start) {
        lo = start;
        hi = start + 1;
        let mut step = 1i64;
        while green(hi) {
            lo = hi;
            hi += step;
            step *= 2;
        }
    } else {
        hi = start;
        lo = start - 1;
        let mut step = 1i64;
        while lo >= 0 && !green(lo) {
            hi = lo;
            lo -= step;
            step *= 2;
        }
        lo = lo.max(-1);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if green(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One naive step.  Cells right of the old boundary are certified red (pure
/// linear update); the new boundary is located by scanning *down* from the
/// old one until the obstacle wins — single crossing makes the first green
/// hit the last green column.  The scan length is the boundary's actual
/// drift, which totals `O(σT)` over a whole pricing, so the base case stays
/// linear-time regardless of how fast the boundary moves.
fn step_once<G>(kernel: &StencilKernel, green: &G, row: &GreenPrefixRow) -> GreenPrefixRow
where
    G: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    kernel_scope!(BaseCase);
    let span = kernel.span() as i64;
    let f = row.boundary;
    let hi1 = row.hi - span;
    let t1 = row.t + 1;
    debug_assert!(hi1 >= 0, "stepped past the cone apex");
    let w = kernel.weights();
    let val = |c: i64| row.value_at(green, c);
    let lin = |c: i64| -> f64 {
        let mut acc = 0.0;
        for (m, &wm) in w.iter().enumerate() {
            acc += wm * val(c + m as i64);
        }
        acc
    };
    // Certified-red tail (f, hi1]: the boundary never moves right.
    let mut tail = Vec::with_capacity((hi1 - f).max(0) as usize);
    for c in (f + 1)..=hi1 {
        tail.push(lin(c));
    }
    // Downward scan from the last in-view boundary candidate.
    // amopt-lint: allow(hot-path-alloc) -- scan buffer sized by the boundary's actual drift, O(σT) summed over a pricing
    let mut head: Vec<f64> = Vec::new(); // cells (boundary, min(f, hi1)], reversed
    let mut boundary = -1i64;
    let mut c = f.min(hi1);
    while c >= 0 {
        let lin_c = lin(c);
        let g_c = green(t1, c);
        if g_c >= lin_c {
            boundary = c;
            break;
        }
        head.push(lin_c.max(g_c));
        c -= 1;
    }
    let mut values = Vec::with_capacity(head.len() + tail.len());
    values.extend(head.into_iter().rev());
    values.extend(tail);
    GreenPrefixRow { t: t1, boundary, hi: hi1, reds: Segment::new(boundary + 1, values) }
}

/// Pure linear advance of a row with no green cell left (`boundary < 0`):
/// the boundary never returns, so the remaining problem is one correlation.
fn advance_all_red(
    kernel: &StencilKernel,
    row: &GreenPrefixRow,
    h: u64,
    cfg: &EngineConfig,
) -> GreenPrefixRow {
    // amopt-lint: hot-path
    kernel_scope!(FftPass);
    debug_assert!(row.boundary < 0);
    let span = kernel.span() as i64;
    let hi1 = row.hi - span * h as i64;
    let t1 = row.t + h;
    if row.reds.is_empty() {
        return GreenPrefixRow {
            t: t1,
            boundary: row.boundary,
            hi: hi1,
            // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
            reds: Segment::new(row.reds.start, vec![]),
        };
    }
    let mut out = with_scratch(|s| {
        let staging = &mut s.staging;
        staging.clear();
        staging.extend_from_slice(&row.reds.values);
        staging.resize(row.reds.len() + span as usize * h as usize, 0.0);
        advance_values_with(staging, row.reds.start, kernel, h, cfg.backend, &mut s.fft)
    });
    if out.end() - 1 > hi1 {
        out.values.truncate((hi1 - out.start + 1).max(0) as usize);
    }
    GreenPrefixRow { t: t1, boundary: row.boundary, hi: hi1, reds: out }
}

/// Advances the certified-red region `(f, hi − σ'h]` by `h` purely linear
/// steps: only the non-zero support prefix is computed (one correlation);
/// the zero tail stays implicit.
fn advance_certified(
    kernel: &StencilKernel,
    row: &GreenPrefixRow,
    h: u64,
    hi_new: i64,
    cfg: &EngineConfig,
) -> Segment {
    // amopt-lint: hot-path
    kernel_scope!(FftPass);
    let span = kernel.span() as i64;
    let f = row.boundary;
    let support_end = row.reds.end() - 1; // last stored column; f when empty
    let out_hi = support_end.min(hi_new);
    if out_hi < f + 1 {
        // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
        return Segment::new(f + 1, vec![]);
    }
    let in_hi = out_hi + span * h as i64;
    with_scratch(|s| {
        let staging = &mut s.staging;
        staging.clear();
        staging.reserve((in_hi - f) as usize);
        for c in (f + 1)..=in_hi {
            // Columns beyond the stored support are exact zeros (module
            // docs); in windows the storage always reaches the cone edge.
            staging.push(if row.reds.contains(c) { row.reds.get(c) } else { 0.0 });
        }
        advance_values_with(staging, f + 1, kernel, h, cfg.backend, &mut s.fft)
    })
}

/// Advances a [`GreenPrefixRow`] by `h` steps of the nonlinear stencil
/// `G_{t+1}[c] = max(Σ_m kernel[m]·G_t[c+m], green(t+1, c))`, in raw value
/// space.
///
/// Work `O(h log² h)`, span `O(h)` — the mirror of Theorem 2.8 under the
/// discrete put–call symmetry.
///
/// # Panics
/// If the kernel anchor is non-zero or it has fewer than two taps.
pub fn advance_green_prefix<G>(
    kernel: &StencilKernel,
    green: &G,
    row: &GreenPrefixRow,
    h: u64,
    cfg: &EngineConfig,
) -> GreenPrefixRow
where
    G: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    assert_eq!(kernel.anchor(), 0, "left-cone engine requires anchor 0");
    assert!(kernel.span() >= 1, "left-cone engine requires at least two taps");
    row.assert_consistent();

    let span = kernel.span() as i64;
    // amopt-lint: allow(hot-path-alloc) -- one working row per advance call; iterations replace it via the stitch
    let mut cur = row.clone();
    let mut remaining = h;
    while remaining > 0 {
        let f = cur.boundary;
        let hi = cur.hi;
        if cur.is_all_green() {
            // Green absorbs: the boundary drops at most σ−1 ≤ span per step
            // while the cone edge drops exactly span, so an all-green view
            // stays all-green.  The reported boundary is the conservative
            // drift lower bound `f − span·r`; it stays at or above the
            // shrunken cone edge, so the all-green classification of the
            // result is exact.
            let r = remaining as i64;
            return GreenPrefixRow {
                t: cur.t + remaining,
                boundary: f - span * r,
                hi: hi - span * r,
                // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
                reds: Segment::new(f - span * r + 1, vec![]),
            };
        }
        if f < 0 {
            return advance_all_red(kernel, &cur, remaining, cfg);
        }
        if remaining <= cfg.base_cutoff {
            for _ in 0..remaining {
                cur = step_once(kernel, green, &cur);
            }
            return cur;
        }

        // Half height, capped so the boundary window's red context fits the
        // cone: the window needs input columns (f, f + σ'·h1].
        let h1 = (remaining / 2).min(((hi - f) / span).max(0) as u64);
        if h1 == 0 {
            // Cone edge hugs the boundary — advance a small chunk naively.
            let steps = remaining.min(cfg.base_cutoff.max(1));
            for _ in 0..steps {
                cur = step_once(kernel, green, &cur);
            }
            remaining -= steps;
            continue;
        }

        let win_hi = f + span * h1 as i64;
        let hi_new = hi - span * h1 as i64;
        let sub_row = GreenPrefixRow {
            t: cur.t,
            boundary: f,
            hi: win_hi,
            reds: cur.extract_reds(f + 1, win_hi),
        };
        let parallel = remaining >= cfg.sequential_below;
        let bulk_task = || advance_certified(kernel, &cur, h1, hi_new, cfg);
        let sub_task = || {
            // Inclusive timing: nested window recursions count in full.
            kernel_scope!(BoundaryWindow);
            advance_green_prefix(kernel, green, &sub_row, h1, cfg)
        };
        let (bulk_out, sub_out) =
            if parallel { join(bulk_task, sub_task) } else { (bulk_task(), sub_task()) };

        debug_assert_eq!(sub_out.t, cur.t + h1);
        debug_assert_eq!(sub_out.hi, f);
        debug_assert!(sub_out.boundary >= f - span * h1 as i64 && sub_out.boundary <= f);
        debug_assert_eq!(bulk_out.start, f + 1);

        // Stitch: window covers (f1, f] (zero-filled up to its cone edge if
        // its support ended early), bulk covers [f+1, support edge], zeros
        // beyond stay implicit.
        let f1 = sub_out.boundary;
        let mut values = sub_out.reds.values;
        values.resize((f - f1) as usize, 0.0);
        values.extend_from_slice(&bulk_out.values);
        let mut reds = Segment::new(f1 + 1, values);
        if reds.end() - 1 > hi_new {
            reds.values.truncate((hi_new - reds.start + 1).max(0) as usize);
        }
        cur = GreenPrefixRow { t: cur.t + h1, boundary: f1, hi: hi_new, reds };
        cur.assert_consistent();
        remaining -= h1;
    }
    cur
}

/// Drives the engine from `init` to the apex and returns the grid value of
/// the root cell `(total_steps, 0)`.
pub fn solve_to_root<G>(
    kernel: &StencilKernel,
    green: &G,
    init: GreenPrefixRow,
    total_steps: u64,
    cfg: &EngineConfig,
) -> f64
where
    G: Fn(u64, i64) -> f64 + Sync,
{
    let remaining = total_steps - init.t;
    let final_row = advance_green_prefix(kernel, green, &init, remaining, cfg);
    debug_assert_eq!(final_row.t, total_steps);
    debug_assert!(final_row.hi >= 0, "initial row's cone must contain the root");
    final_row.value_at(green, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_stencil::Backend;

    /// Dense reference on the triangle: full rows, explicit max everywhere.
    /// Returns the root value and the per-step last-green boundary.
    fn dense_solve<G: Fn(u64, i64) -> f64>(
        kernel: &StencilKernel,
        green: &G,
        init: &[f64],
        steps: u64,
    ) -> (f64, Vec<i64>) {
        let span = kernel.span();
        let mut row = init.to_vec();
        let mut boundaries = Vec::with_capacity(steps as usize);
        for t in 0..steps {
            let next_len = row.len() - span;
            let mut next = Vec::with_capacity(next_len);
            let mut f = -1i64;
            for c in 0..next_len {
                let lin: f64 =
                    kernel.weights().iter().enumerate().map(|(m, &w)| w * row[c + m]).sum();
                let ob = green(t + 1, c as i64);
                if ob >= lin {
                    f = c as i64;
                }
                next.push(lin.max(ob));
            }
            boundaries.push(f);
            row = next;
        }
        (row[0], boundaries)
    }

    /// A genuine BOPM-put (span 1) or TOPM-put (span 2) instance, for which
    /// the mirrored drift lemmas hold.  `strike_off` shifts moneyness.
    #[allow(clippy::type_complexity)]
    fn synthetic_problem(
        steps: u64,
        span: usize,
        strike_off: f64,
    ) -> (StencilKernel, impl Fn(u64, i64) -> f64 + Sync + Clone, Vec<f64>) {
        let r_dt = 0.0010_f64;
        let y_dt = 0.0004_f64;
        let m = (-r_dt).exp();
        let (kernel, alpha_exp) = match span {
            1 => {
                let alpha = 0.02_f64;
                let u = alpha.exp();
                let p = ((r_dt - y_dt).exp() - 1.0 / u) / (u - 1.0 / u);
                assert!(p > 0.0 && p < 1.0);
                (StencilKernel::new(vec![m * (1.0 - p), m * p], 0), alpha)
            }
            2 => {
                let alpha = 0.04_f64;
                let su = (alpha / 2.0).exp();
                let sd = 1.0 / su;
                let b = ((r_dt - y_dt) / 2.0).exp();
                let pu = ((b - sd) / (su - sd)).powi(2);
                let pd = ((su - b) / (su - sd)).powi(2);
                let po = 1.0 - pu - pd;
                assert!(pu > 0.0 && pd > 0.0 && po > 0.0);
                (StencilKernel::new(vec![m * pd, m * po, m * pu], 0), alpha)
            }
            _ => unreachable!(),
        };
        // Node price in grid coordinates: u^{qc − i} with i = steps − t;
        // q = 2 for the binomial layout, 1 for the trinomial one.
        let q = if span == 1 { 2.0 } else { 1.0 };
        let strike = (alpha_exp * (steps as f64 * q / 2.0 + strike_off)).exp();
        let phi = move |t: u64, c: i64| -> f64 {
            let i = (steps - t) as f64;
            (alpha_exp * (q * c as f64 - i)).exp()
        };
        let green = move |t: u64, c: i64| strike - phi(t, c);
        let width = steps as usize * span + 1;
        let init: Vec<f64> = (0..width as i64).map(|c| green(0, c).max(0.0)).collect();
        (kernel, green, init)
    }

    /// Engine row at `t = 1`: one honest dense step from the payoff row
    /// (the expiry transition may break the unit drift bound — exactly why
    /// the production drivers materialise row `T−1` explicitly).
    fn first_step_row<G: Fn(u64, i64) -> f64>(
        kernel: &StencilKernel,
        green: &G,
        init: &[f64],
    ) -> GreenPrefixRow {
        let span = kernel.span();
        let hi = (init.len() - 1 - span) as i64;
        let mut f = -1i64;
        let mut values = Vec::new();
        for c in 0..=hi {
            let lin: f64 =
                kernel.weights().iter().enumerate().map(|(m, &w)| w * init[c as usize + m]).sum();
            let ob = green(1, c);
            if ob >= lin {
                f = c;
                values.clear();
            } else {
                values.push(lin);
            }
        }
        GreenPrefixRow { t: 1, boundary: f, hi, reds: Segment::new(f + 1, values) }
    }

    fn check_matches_dense(steps: u64, span: usize, strike_off: f64, cfg: &EngineConfig) {
        let (kernel, green, init) = synthetic_problem(steps, span, strike_off);
        let (want, _) = dense_solve(&kernel, &green, &init, steps);
        let row = first_step_row(&kernel, &green, &init);
        let got = solve_to_root(&kernel, &green, row, steps, cfg);
        assert!(
            (got - want).abs() < 1e-9 * want.abs().max(1.0),
            "steps={steps} span={span} off={strike_off}: fast {got} vs dense {want}"
        );
    }

    #[test]
    fn binomial_like_matches_dense_across_sizes() {
        let cfg = EngineConfig::default();
        for steps in [2u64, 3, 5, 8, 9, 16, 33, 100, 257, 1000] {
            check_matches_dense(steps, 1, 0.0, &cfg);
        }
    }

    #[test]
    fn trinomial_like_matches_dense_across_sizes() {
        let cfg = EngineConfig::default();
        for steps in [2u64, 3, 8, 21, 64, 200, 513] {
            check_matches_dense(steps, 2, 0.0, &cfg);
        }
    }

    #[test]
    fn matches_dense_across_moneyness() {
        let cfg = EngineConfig::default();
        for off in [-40.0, -10.0, -1.0, 1.0, 10.0, 40.0] {
            check_matches_dense(300, 1, off, &cfg);
            check_matches_dense(150, 2, off, &cfg);
        }
    }

    #[test]
    fn different_base_cutoffs_agree() {
        for cutoff in [1u64, 4, 8, 32, 100] {
            let cfg = EngineConfig { base_cutoff: cutoff, ..EngineConfig::default() };
            check_matches_dense(300, 1, 0.0, &cfg);
            check_matches_dense(150, 2, 0.0, &cfg);
        }
    }

    #[test]
    fn direct_taps_backend_agrees() {
        let cfg = EngineConfig { backend: Backend::DirectTaps, ..EngineConfig::default() };
        check_matches_dense(200, 1, 0.0, &cfg);
    }

    #[test]
    fn boundary_position_matches_dense_reference() {
        let steps = 240u64;
        let (kernel, green, init) = synthetic_problem(steps, 1, 0.0);
        let (_, dense_b) = dense_solve(&kernel, &green, &init, steps);
        // Interior rows obey the unit drift the engine relies on.
        for w in dense_b.windows(2) {
            assert!(w[1] <= w[0] && w[1] >= w[0] - 1, "drift violated: {w:?}");
        }
        let row = first_step_row(&kernel, &green, &init);
        assert_eq!(row.boundary, dense_b[0]);
        let half = steps / 2;
        let mid = advance_green_prefix(&kernel, &green, &row, half - 1, &EngineConfig::default());
        assert_eq!(mid.boundary, dense_b[half as usize - 1]);
        let out =
            advance_green_prefix(&kernel, &green, &mid, steps - half, &EngineConfig::default());
        assert_eq!(out.t, steps);
        assert_eq!(out.boundary, dense_b[steps as usize - 1]);
    }

    #[test]
    fn values_stay_bounded_by_the_strike() {
        // The raw-space justification: every put value is in [0, K].
        let steps = 4096u64;
        let (kernel, green, init) = synthetic_problem(steps, 1, 0.0);
        let strike = green(0, -1_000_000); // φ vanishes far left: green ≈ K
        let row = first_step_row(&kernel, &green, &init);
        let out = advance_green_prefix(&kernel, &green, &row, steps - 1, &EngineConfig::default());
        for &v in &out.reds.values {
            assert!(v.is_finite() && v >= -1e-12 && v <= strike, "value {v} out of [0, K]");
        }
    }

    #[test]
    fn deep_itm_goes_all_green() {
        // Strike far above every node: exercise everywhere, price = green.
        let steps = 64u64;
        let (kernel, green, init) = synthetic_problem(steps, 1, 500.0);
        let row = first_step_row(&kernel, &green, &init);
        assert!(row.is_all_green());
        let got = solve_to_root(&kernel, &green, row, steps, &EngineConfig::default());
        assert_eq!(got, green(steps, 0));
    }

    #[test]
    fn deep_otm_is_exactly_zero() {
        // Strike below every node: payoff row identically zero, price 0.
        let steps = 64u64;
        let (kernel, green, init) = synthetic_problem(steps, 1, -500.0);
        assert!(init.iter().all(|&v| v == 0.0));
        let row = first_step_row(&kernel, &green, &init);
        assert_eq!(row.boundary, -1);
        let got = solve_to_root(&kernel, &green, row, steps, &EngineConfig::default());
        assert_eq!(got, 0.0);
    }

    #[test]
    fn last_green_from_finds_the_crossing_regardless_of_hint() {
        for boundary in [-1i64, 0, 1, 7, 100, 1_000_000] {
            for hint in [0i64, 1, 5, 64, 2_000_000] {
                let got = last_green_from(hint, |j| j <= boundary);
                assert_eq!(got, boundary, "boundary {boundary} hint {hint}");
            }
        }
    }

    #[test]
    fn chunked_advance_composes() {
        // advance(h1) ∘ advance(h2) == advance(h1 + h2) — what the
        // boundary-sampling drivers rely on.
        let steps = 200u64;
        let (kernel, green, init) = synthetic_problem(steps, 1, 0.0);
        let cfg = EngineConfig::default();
        let row = first_step_row(&kernel, &green, &init);
        let once = advance_green_prefix(&kernel, &green, &row, steps - 1, &cfg);
        let mut chunked = row;
        for h in [30u64, 70, 50, 49] {
            chunked = advance_green_prefix(&kernel, &green, &chunked, h, &cfg);
        }
        assert_eq!(chunked.t, once.t);
        assert_eq!(chunked.boundary, once.boundary);
        assert_eq!(chunked.hi, once.hi);
        for c in (chunked.boundary + 1)..=chunked.hi {
            let a = chunked.value_at(&green, c);
            let b = once.value_at(&green, c);
            assert!((a - b).abs() < 1e-10 * b.abs().max(1.0), "col {c}: {a} vs {b}");
        }
    }
}
