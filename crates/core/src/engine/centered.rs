//! Centered nonlinear stencil engine — the BSM explicit-FD geometry of §4.3.
//!
//! Differences from [`super::right_cone`]:
//!
//! * the kernel is a symmetric 3-point stencil (anchor −1), so the valid
//!   cone shrinks by one column on *both* sides per step;
//! * the green (early-exercise) zone sits on the **left** and its boundary
//!   `f_t` (last green column) moves left at most one column per step
//!   (Thm 4.3): `f_t − 1 ≤ f_{t+1} ≤ f_t`;
//! * rows are stored in **raw** value space: the put value is bounded
//!   (`∈ [0, 1]` dimensionless), so there is no dynamic-range hazard, while
//!   the obstacle `1 − e^{s}` diverges on the right — harmless because the
//!   right side is red and never materialises the obstacle.
//!
//! ### Certified-red suffix
//! After `h` steps from a row with boundary `f`, output cell `c ≥ f + h` is
//! red with an all-red dependency cone: the cone of `(t+h, c)` at depth `m`
//! reaches left to `c − (h − m)`, and the boundary at depth `m` is at most
//! `f`, so `c − (h−m) > f` for all `m ≥ 1` iff `c ≥ f + h`.  Those cells
//! advance with one FFT correlation over `[f, hi]` (column `f` itself is
//! green — closed form); the boundary window `(f, f+2h₁]` of half height
//! recurses (Fig. 4(a)), green cells left of the window are pure closed
//! form.  Work `O(h log² h)`, span `O(h)` (Theorem 4.4).

use super::{kernel_scope, EngineConfig};
use amopt_parallel::join;
use amopt_stencil::{advance, Segment, StencilKernel};

/// A row in compressed green-left form: cells `≤ boundary` are green
/// (obstacle closed form), cells `(boundary, hi]` are red and stored.
#[derive(Debug, Clone, PartialEq)]
pub struct GreenLeftRow {
    /// Steps elapsed from the known initial row (expiry).
    pub t: u64,
    /// Last green column `f`; may lie below the cone (no green in view).
    pub boundary: i64,
    /// Last valid column of the row (the cone's right edge).
    pub hi: i64,
    /// Stored red values over `[boundary + 1, hi]`; empty iff `boundary ≥ hi`.
    pub reds: Segment,
}

impl GreenLeftRow {
    /// Number of stored red cells.
    #[inline]
    pub fn red_count(&self) -> i64 {
        (self.hi - self.boundary).max(0)
    }

    /// True when every cone cell is green.
    #[inline]
    pub fn is_all_green(&self) -> bool {
        self.boundary >= self.hi
    }

    /// Internal consistency between segment extent, boundary and `hi`.
    pub fn assert_consistent(&self) {
        debug_assert_eq!(self.reds.start, self.boundary + 1, "red segment must start after f");
        debug_assert_eq!(
            self.reds.len() as i64,
            self.red_count(),
            "red segment length disagrees with [f+1, hi]"
        );
    }

    /// Row value at column `c` (red from storage, green via `green`).
    pub fn value_at<G: Fn(u64, i64) -> f64>(&self, green: &G, c: i64) -> f64 {
        if c <= self.boundary {
            green(self.t, c)
        } else {
            self.reds.get(c)
        }
    }
}

/// One naive step: candidates `[f, hi−1]`, boundary decided at column `f`
/// (the only ambiguous cell per Thm 4.3's unit drift).
fn step_once<G>(kernel: &StencilKernel, green: &G, row: &GreenLeftRow) -> GreenLeftRow
where
    G: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    kernel_scope!(BaseCase);
    let f = row.boundary;
    let hi = row.hi;
    let t_next = row.t + 1;
    if row.is_all_green() {
        return GreenLeftRow {
            t: t_next,
            boundary: f - 1,
            hi: hi - 1,
            // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
            reds: Segment::new(f, vec![]),
        };
    }
    let w = kernel.weights();
    debug_assert_eq!(kernel.anchor(), -1);
    let val = |c: i64| row.value_at(green, c);
    let lin = |c: i64| w[0] * val(c - 1) + w[1] * val(c) + w[2] * val(c + 1);

    // Boundary: cell f stays green iff its obstacle beats the linear update.
    let lin_f = lin(f);
    let new_boundary = if green(t_next, f) >= lin_f { f } else { f - 1 };
    let mut values = Vec::with_capacity((hi - 1 - new_boundary).max(0) as usize);
    if new_boundary < f {
        values.push(lin_f.max(green(t_next, f)));
    }
    for c in (f + 1)..hi {
        values.push(lin(c));
    }
    GreenLeftRow {
        t: t_next,
        boundary: new_boundary,
        hi: hi - 1,
        reds: Segment::new(new_boundary + 1, values),
    }
}

/// Advances a [`GreenLeftRow`] by `h` steps of the obstacle scheme
/// `v_{t+1}[c] = max(Σ kernel·v_t, green(t+1, c))`.
///
/// Work `O(h log² h)`, span `O(h)` (Theorem 4.4).
///
/// # Panics
/// If the kernel is not a 3-point stencil anchored at −1.
pub fn advance_green_left<G>(
    kernel: &StencilKernel,
    green: &G,
    row: &GreenLeftRow,
    h: u64,
    cfg: &EngineConfig,
) -> GreenLeftRow
where
    G: Fn(u64, i64) -> f64 + Sync,
{
    // amopt-lint: hot-path
    assert_eq!(kernel.anchor(), -1, "centered engine requires anchor -1");
    assert_eq!(kernel.span(), 2, "centered engine requires a 3-point kernel");
    row.assert_consistent();

    // amopt-lint: allow(hot-path-alloc) -- one working row per advance call; iterations replace it via the stitch
    let mut cur = row.clone();
    let mut remaining = h;
    while remaining > 0 {
        if cur.is_all_green() {
            // The gap f − hi never shrinks (f drifts ≤ 1 left per step while
            // hi shrinks exactly 1), so the cone stays green; report the
            // conservative lower bound for the final boundary.
            let r = remaining as i64;
            return GreenLeftRow {
                t: cur.t + remaining,
                boundary: cur.boundary - r,
                hi: cur.hi - r,
                // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
                reds: Segment::new(cur.boundary - r + 1, vec![]),
            };
        }
        let f = cur.boundary;
        let hi = cur.hi;

        if remaining <= cfg.base_cutoff {
            for _ in 0..remaining {
                cur = step_once(kernel, green, &cur);
            }
            return cur;
        }

        // Half-height limited by the red context to the right of f.
        let h1 = (remaining / 2).min(((hi - f) / 2).max(0) as u64);
        if h1 == 0 {
            // Boundary hugs the cone edge: almost everything is green —
            // advance naively a few rows.
            let steps = remaining.min(cfg.base_cutoff.max(1));
            for _ in 0..steps {
                cur = step_once(kernel, green, &cur);
            }
            remaining -= steps;
            continue;
        }

        // Boundary window (f, f + 2h1], height h1 — the trapezoid of
        // Fig. 4(a); its own right context is exactly 2·h1.
        let sub_row = GreenLeftRow {
            t: cur.t,
            boundary: f,
            hi: f + 2 * h1 as i64,
            reds: cur.reds.extract(f + 1, f + 2 * h1 as i64),
        };
        // Certified-red bulk (f + h1, hi − h1] advances from the *stored*
        // reds alone — the cone of output cell c ≥ f + h1 + 1 never reaches
        // column f, so the obstacle is not evaluated on the FFT path at all
        // (cells ≥ f + h1 are certified; the seam cell f + h1 itself comes
        // from the window recursion).  The bulk may be empty when the window
        // covers everything (2h1 = hi − f).
        let parallel = remaining >= cfg.sequential_below;
        let bulk_len = (hi - f) - 2 * h1 as i64;
        let bulk_task = || {
            if bulk_len >= 1 {
                kernel_scope!(FftPass);
                advance(&cur.reds, kernel, h1, cfg.backend)
            } else {
                // amopt-lint: allow(hot-path-alloc) -- empty-support result; `vec![]` never touches the heap
                Segment::new(f + h1 as i64 + 1, vec![])
            }
        };
        let sub_task = || {
            // Inclusive timing: nested window recursions count in full.
            kernel_scope!(BoundaryWindow);
            advance_green_left(kernel, green, &sub_row, h1, cfg)
        };
        let (bulk_out, sub_out) =
            if parallel { join(bulk_task, sub_task) } else { (bulk_task(), sub_task()) };

        debug_assert_eq!(bulk_out.start, f + h1 as i64 + 1);
        debug_assert_eq!(bulk_out.len() as i64, bulk_len.max(0));
        debug_assert_eq!(sub_out.hi, f + h1 as i64);
        debug_assert!(sub_out.boundary >= f - h1 as i64 && sub_out.boundary <= f);

        // Stitch: sub covers (f1, f+h1], bulk covers (f+h1, hi−h1] — exactly
        // adjacent.
        let f1 = sub_out.boundary;
        let mut values = sub_out.reds.values;
        values.extend_from_slice(&bulk_out.values);
        cur = GreenLeftRow {
            t: cur.t + h1,
            boundary: f1,
            hi: hi - h1 as i64,
            reds: Segment::new(f1 + 1, values),
        };
        cur.assert_consistent();
        remaining -= h1;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference over the full cone, max at every cell.
    fn dense_solve<G: Fn(u64, i64) -> f64>(
        kernel: &StencilKernel,
        green: &G,
        payoff: &dyn Fn(i64) -> f64,
        t: i64,
    ) -> f64 {
        let w = kernel.weights().to_vec();
        let mut cur: Vec<f64> = (-t..=t).map(payoff).collect();
        for n in 1..=t {
            let half = t - n;
            let mut next = Vec::with_capacity((2 * half + 1) as usize);
            for k in -half..=half {
                let idx = (k + half + 1) as usize;
                let lin = w[0] * cur[idx - 1] + w[1] * cur[idx] + w[2] * cur[idx + 1];
                next.push(lin.max(green(n as u64, k)));
            }
            cur = next;
        }
        cur[0]
    }

    /// A genuine BSM-put instance (guarantees Thm 4.3's drift bound).
    fn synthetic(
        steps: i64,
        s_base: f64,
    ) -> (StencilKernel, impl Fn(u64, i64) -> f64 + Sync + Clone, impl Fn(i64) -> f64 + Clone) {
        let sigma2 = 0.04_f64; // sigma = 0.2
        let rate = 0.03_f64;
        let omega = 2.0 * rate / sigma2;
        let tau_max = 0.5 * sigma2;
        let d_tau = tau_max / steps as f64;
        let d_s = (d_tau / 0.4).sqrt();
        let diff = d_tau / (d_s * d_s);
        let drift = (omega - 1.0) * d_tau / (2.0 * d_s);
        let (a, b, c) = (diff + drift, diff - drift, 1.0 - omega * d_tau - 2.0 * diff);
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0);
        let kernel = StencilKernel::new(vec![b, c, a], -1);
        let green = move |_t: u64, k: i64| 1.0 - (s_base + k as f64 * d_s).exp();
        let payoff = move |k: i64| (1.0 - (s_base + k as f64 * d_s).exp()).max(0.0);
        (kernel, green, payoff)
    }

    fn initial_row<G: Fn(u64, i64) -> f64>(
        green: &G,
        payoff: &dyn Fn(i64) -> f64,
        t: i64,
    ) -> GreenLeftRow {
        // Boundary: last k with exercise >= 0 (green zone at expiry).
        let mut f = -t - 1;
        for k in -t..=t {
            if green(0, k) >= 0.0 {
                f = k;
            }
        }
        let reds: Vec<f64> = ((f + 1)..=t).map(payoff).collect();
        GreenLeftRow { t: 0, boundary: f, hi: t, reds: Segment::new(f + 1, reds) }
    }

    fn check(steps: i64, s_base: f64, cfg: &EngineConfig) {
        let (kernel, green, payoff) = synthetic(steps, s_base);
        let want = dense_solve(&kernel, &green, &payoff, steps);
        let row = initial_row(&green, &payoff, steps);
        let out = advance_green_left(&kernel, &green, &row, steps as u64, cfg);
        assert_eq!(out.t, steps as u64);
        assert_eq!(out.hi, 0);
        let got = out.value_at(&green, 0);
        assert!(
            (got - want).abs() < 1e-10 * want.abs().max(1.0),
            "steps={steps} s_base={s_base}: fast {got} vs dense {want}"
        );
    }

    #[test]
    fn matches_dense_at_the_money() {
        let cfg = EngineConfig::default();
        for steps in [1i64, 2, 5, 8, 9, 16, 33, 100, 257, 600] {
            check(steps, 0.01, &cfg);
        }
    }

    #[test]
    fn matches_dense_in_and_out_of_the_money() {
        let cfg = EngineConfig::default();
        for s_base in [-0.6, -0.05, 0.0, 0.05, 0.6] {
            check(300, s_base, &cfg);
        }
    }

    #[test]
    fn different_base_cutoffs_agree() {
        for cutoff in [1u64, 4, 16, 64] {
            let cfg = EngineConfig { base_cutoff: cutoff, ..EngineConfig::default() };
            check(200, 0.02, &cfg);
        }
    }

    #[test]
    fn deep_itm_goes_all_green() {
        // s_base << 0: exercise everywhere in the cone.
        let (kernel, green, payoff) = synthetic(64, -50.0);
        let row = initial_row(&green, &payoff, 64);
        assert!(row.is_all_green());
        let out = advance_green_left(&kernel, &green, &row, 64, &EngineConfig::default());
        assert!(out.is_all_green());
        assert_eq!(out.value_at(&green, 0), green(64, 0));
    }

    #[test]
    fn moderately_otm_boundary_at_cone_edge() {
        // Boundary just inside the cone: green values remain bounded, the
        // engine contract holds, and the result matches the dense sweep.
        let steps = 128i64;
        let (kernel, green, payoff) = synthetic(steps, 0.4);
        let row = initial_row(&green, &payoff, steps);
        assert!(row.boundary >= -steps && row.boundary < 0);
        let want = dense_solve(&kernel, &green, &payoff, steps);
        let out = advance_green_left(&kernel, &green, &row, steps as u64, &EngineConfig::default());
        let got = out.value_at(&green, 0);
        assert!((got - want).abs() < 1e-10 * want.abs().max(1.0), "{got} vs {want}");
    }

    #[test]
    fn boundary_matches_dense_tracking() {
        let steps = 150i64;
        // Compare mid-way: at the apex the cone has shrunk past the true
        // boundary and the dense tracker can no longer see it.
        let half_steps = (steps / 2) as u64;
        let (kernel, green, payoff) = synthetic(steps, 0.015);
        // Dense sweep tracking the last green column each row.
        let w = kernel.weights().to_vec();
        let mut cur: Vec<f64> = (-steps..=steps).map(&payoff).collect();
        let mut dense_f = i64::MIN;
        for n in 1..=half_steps as i64 {
            let half = steps - n;
            let mut next = Vec::with_capacity((2 * half + 1) as usize);
            let mut fb = i64::MIN;
            for k in -half..=half {
                let idx = (k + half + 1) as usize;
                let lin = w[0] * cur[idx - 1] + w[1] * cur[idx] + w[2] * cur[idx + 1];
                let ex = green(n as u64, k);
                if ex >= lin {
                    fb = fb.max(k);
                }
                next.push(lin.max(ex));
            }
            cur = next;
            dense_f = fb;
        }
        let row = initial_row(&green, &payoff, steps);
        let out = advance_green_left(&kernel, &green, &row, half_steps, &EngineConfig::default());
        assert_eq!(out.boundary, dense_f);
    }
}
