//! # amopt-core — American option pricing via nonlinear stencils
//!
//! Rust reproduction of *Fast American Option Pricing using Nonlinear
//! Stencils* (Ahmad, Browne, Chowdhury, Das, Huang, Zhu — PPoPP 2024).
//!
//! Three pricing problems, each with a `Θ(T²)`-work reference family and the
//! paper's `O(T log² T)`-work / `O(T)`-span FFT trapezoid algorithm:
//!
//! * [`bopm`] — American **call**, binomial lattice (§2);
//! * [`topm`] — American **call**, trinomial lattice (§3, App. A);
//! * [`bsm`]  — American **put**, Black–Scholes–Merton explicit finite
//!   difference (§4).
//!
//! The shared machinery lives in [`engine`] (the nonlinear-stencil trapezoid
//! decomposition) on top of `amopt-stencil`/`amopt-fft` (the linear FFT
//! stencil substrate).  [`analytic`] provides closed-form European oracles.
//!
//! Portfolio-scale workloads enter through [`batch`]: heterogeneous books
//! via [`BatchPricer`], finite-difference greeks via [`batch::greeks`], and
//! implied-volatility surfaces via [`batch::surface`] — all sharing one
//! sharded memo and one fork-join fan-out.  See the repository's
//! `ARCHITECTURE.md` for the full paper-section → module map and the batch
//! request lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod batch;
pub mod bermudan;
pub mod bopm;
pub mod bsm;
pub mod engine;
pub mod error;
pub mod exercise_boundary;
pub mod greeks;
pub mod implied_vol;
pub mod params;
pub mod topm;

pub use batch::surface::VolQuote;
pub use batch::{BatchPricer, MemoStats, ModelKind, PricingRequest};
pub use engine::EngineConfig;
pub use error::{PricingError, Result};
pub use greeks::Greeks;
pub use params::{ExerciseStyle, OptionParams, OptionType};
