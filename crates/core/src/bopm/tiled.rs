//! Cache-aware tiled binomial pricer — the `zb-bopm` baseline (Zubair &
//! Mukkamala-style blocking, as packaged by Par-bin-ops; "Tiled Loop" row of
//! Table 2).
//!
//! The backward induction is banded into groups of `band` rows.  Within a
//! band, the new row is partitioned into column blocks; each block pulls the
//! `width + band` cells of the band's top row it depends on into a local
//! scratch buffer and sweeps the whole band inside L1, so each band reads
//! main memory once instead of `band` times.  Work stays `Θ(T²)`; blocks are
//! independent, giving `Θ(T²/p + T·B + …)` parallel time.

use super::BopmModel;
use crate::params::{ExerciseStyle, OptionType};
use amopt_parallel::for_each_chunk_mut;

/// Tile geometry.
#[derive(Debug, Clone, Copy)]
pub struct TileConfig {
    /// Rows per band.  The default (128) keeps the per-block working set
    /// `(width + 2·band)·8 B` within a 32 KiB L1 at the default width.
    pub band: usize,
    /// Columns per block.
    pub width: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig { band: 128, width: 2048 }
    }
}

/// American/European call or put price by cache-aware tiled induction.
pub fn price(model: &BopmModel, opt: OptionType, style: ExerciseStyle, tile: TileConfig) -> f64 {
    let t = model.steps();
    let (s0, s1) = (model.s0(), model.s1());
    let band_rows = tile.band.max(1);
    let block_width = tile.width.max(band_rows + 1);

    let exercise = |i: usize, j: i64| -> f64 {
        match opt {
            OptionType::Call => model.exercise_call(i, j),
            OptionType::Put => model.exercise_put(i, j),
        }
    };

    // Row T (expiry) values.
    let mut top: Vec<f64> = (0..=t as i64).map(|j| exercise(t, j).max(0.0)).collect();
    let mut bottom = vec![0.0; t + 1];

    let mut i_hi = t; // top row index of the current band
    while i_hi > 0 {
        let band = band_rows.min(i_hi);
        let i_lo = i_hi - band; // bottom row index (exclusive top)
        let out_len = i_lo + 1; // row i_lo has columns 0..=i_lo
        {
            let read: &[f64] = &top;
            for_each_chunk_mut(&mut bottom[..out_len], block_width, |offset, chunk| {
                // This block needs top-row columns [offset, offset+len+band).
                let need = chunk.len() + band;
                let mut scratch = Vec::with_capacity(need);
                scratch.extend_from_slice(&read[offset..offset + need]);
                // Sweep the band fully inside the scratch buffer.
                for (step, i) in (i_lo..i_hi).rev().enumerate() {
                    let rows_left = band - step; // cells still meaningful
                    let valid = chunk.len() + rows_left - 1;
                    for x in 0..valid {
                        let cont = s0 * scratch[x] + s1 * scratch[x + 1];
                        scratch[x] = match style {
                            ExerciseStyle::European => cont,
                            ExerciseStyle::American => cont.max(exercise(i, (offset + x) as i64)),
                        };
                    }
                }
                chunk.copy_from_slice(&scratch[..chunk.len()]);
            });
        }
        std::mem::swap(&mut top, &mut bottom);
        i_hi = i_lo;
    }
    top[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bopm::naive::{self, ExecMode};
    use crate::params::OptionParams;

    #[test]
    fn matches_naive_across_sizes_and_styles() {
        for steps in [1usize, 2, 7, 127, 128, 129, 500, 1111] {
            let m = BopmModel::new(OptionParams::paper_defaults(), steps).unwrap();
            for opt in [OptionType::Call, OptionType::Put] {
                for style in [ExerciseStyle::European, ExerciseStyle::American] {
                    let want = naive::price(&m, opt, style, ExecMode::Serial);
                    let got = price(&m, opt, style, TileConfig::default());
                    assert!(
                        (got - want).abs() < 1e-9 * want.abs().max(1.0),
                        "steps={steps} {opt:?} {style:?}: tiled {got} vs naive {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn odd_tile_geometries_agree() {
        let m = BopmModel::new(OptionParams::paper_defaults(), 700).unwrap();
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        for (band, width) in [(1, 8), (3, 5), (64, 64), (200, 4096), (1000, 10)] {
            let got =
                price(&m, OptionType::Call, ExerciseStyle::American, TileConfig { band, width });
            assert!((got - want).abs() < 1e-9 * want, "band={band} width={width}: {got} vs {want}");
        }
    }
}
