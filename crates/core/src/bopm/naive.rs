//! The standard nested-loop binomial pricer (Fig. 1 of the paper).
//!
//! `Θ(T²)` work; the parallel variant sweeps each row with fork-join chunks
//! for `Θ(T²/p + T log T)` time.  This is the `ql-bopm` baseline of the
//! paper's evaluation (Par-bin-ops' QuantLib-equivalent loop nest).

use super::BopmModel;
use crate::params::{ExerciseStyle, OptionType};
use amopt_parallel::{for_each_chunk_mut, DEFAULT_GRAIN};

/// Execution strategy for the loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, single rolling buffer (cache-friendliest loop).
    Serial,
    /// Row-parallel with double buffering.
    #[default]
    Parallel,
}

/// Prices any (type, style) combination by backward induction.
pub fn price(model: &BopmModel, opt: OptionType, style: ExerciseStyle, mode: ExecMode) -> f64 {
    match mode {
        ExecMode::Serial => price_serial(model, opt, style),
        ExecMode::Parallel => price_parallel(model, opt, style),
    }
}

/// Exercise value of `(i, j)` for the requested option type (no floor).
#[inline]
fn exercise(model: &BopmModel, opt: OptionType, i: usize, j: i64) -> f64 {
    match opt {
        OptionType::Call => model.exercise_call(i, j),
        OptionType::Put => model.exercise_put(i, j),
    }
}

/// Fills `out` with the expiry-row payoffs — the single source of truth for
/// the serial, scratch-reusing, and parallel sweeps.
fn fill_leaf_values(model: &BopmModel, opt: OptionType, out: &mut Vec<f64>) {
    let t = model.steps();
    out.clear();
    out.extend((0..=t as i64).map(|j| exercise(model, opt, t, j).max(0.0)));
}

fn leaf_values(model: &BopmModel, opt: OptionType) -> Vec<f64> {
    let mut out = Vec::new();
    fill_leaf_values(model, opt, &mut out);
    out
}

fn price_serial(model: &BopmModel, opt: OptionType, style: ExerciseStyle) -> f64 {
    price_with_scratch(model, opt, style, &mut Vec::new())
}

/// [`price`] with [`ExecMode::Serial`], reusing a caller-provided lattice
/// buffer so repeated pricings (e.g. a batch hot loop or finite-difference
/// bumps) allocate nothing once the buffer has grown to `T + 1` slots.
///
/// Bitwise identical to `price(model, opt, style, ExecMode::Serial)`.
pub fn price_with_scratch(
    model: &BopmModel,
    opt: OptionType,
    style: ExerciseStyle,
    scratch: &mut Vec<f64>,
) -> f64 {
    let t = model.steps();
    let (s0, s1) = (model.s0(), model.s1());
    fill_leaf_values(model, opt, scratch);
    let g = &mut scratch[..];
    for i in (0..t).rev() {
        // In-place ascending sweep: g[j] is consumed before it is overwritten.
        match style {
            ExerciseStyle::European => {
                for j in 0..=i {
                    g[j] = s0 * g[j] + s1 * g[j + 1];
                }
            }
            ExerciseStyle::American => {
                for j in 0..=i {
                    let cont = s0 * g[j] + s1 * g[j + 1];
                    g[j] = cont.max(exercise(model, opt, i, j as i64));
                }
            }
        }
    }
    g[0]
}

fn price_parallel(model: &BopmModel, opt: OptionType, style: ExerciseStyle) -> f64 {
    let t = model.steps();
    let (s0, s1) = (model.s0(), model.s1());
    let mut cur = leaf_values(model, opt);
    let mut next = vec![0.0; t + 1];
    for i in (0..t).rev() {
        {
            let read: &[f64] = &cur;
            for_each_chunk_mut(&mut next[..=i], DEFAULT_GRAIN, |offset, chunk| {
                for (k, out) in chunk.iter_mut().enumerate() {
                    let j = offset + k;
                    let cont = s0 * read[j] + s1 * read[j + 1];
                    *out = match style {
                        ExerciseStyle::European => cont,
                        ExerciseStyle::American => cont.max(exercise(model, opt, i, j as i64)),
                    };
                }
            });
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur[0]
}

/// Serial backward induction that also records, for every row `i`, the
/// red–green boundary `j_i` = largest `j` with continuation ≥ exercise
/// (−1 when the whole row is green).  Used by boundary-extraction APIs and
/// by the tests of Corollary 2.7.
pub fn price_american_with_boundary(model: &BopmModel, opt: OptionType) -> (f64, Vec<i64>) {
    let t = model.steps();
    let (s0, s1) = (model.s0(), model.s1());
    let mut g = leaf_values(model, opt);
    let mut boundary = vec![0i64; t + 1];
    // Expiry row: red cells are those whose exercise value is non-positive
    // (their lattice value is 0 = the degenerate continuation).
    boundary[t] = {
        let mut b = -1;
        for j in 0..=t as i64 {
            if exercise(model, opt, t, j) <= 0.0 {
                b = b.max(j);
            } else if matches!(opt, OptionType::Call) {
                break;
            }
        }
        b
    };
    for i in (0..t).rev() {
        let mut b = -1i64;
        for j in 0..=i {
            let cont = s0 * g[j] + s1 * g[j + 1];
            let ex = exercise(model, opt, i, j as i64);
            if cont >= ex {
                b = b.max(j as i64);
            }
            g[j] = cont.max(ex);
        }
        boundary[i] = b;
    }
    (g[0], boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OptionParams;

    fn model(steps: usize) -> BopmModel {
        BopmModel::new(OptionParams::paper_defaults(), steps).unwrap()
    }

    #[test]
    fn two_step_tree_by_hand() {
        // Tiny tree checked against a hand computation.
        let p = OptionParams {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            volatility: 0.3,
            dividend_yield: 0.0,
            expiry: 1.0,
        };
        let m = BopmModel::new(p, 2).unwrap();
        let (u, s0, s1) = (m.up(), m.s0(), m.s1());
        // Leaves: prices 100u², 100, 100/u².
        let leaf =
            [(100.0 / (u * u) - 100.0f64).max(0.0), 0.0, (100.0 * u * u - 100.0f64).max(0.0)];
        let mid = [
            (s0 * leaf[0] + s1 * leaf[1]).max(100.0 / u - 100.0),
            (s0 * leaf[1] + s1 * leaf[2]).max(100.0 * u - 100.0),
        ];
        let want = (s0 * mid[0] + s1 * mid[1]).max(0.0);
        let got = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn serial_and_parallel_agree() {
        for steps in [1usize, 2, 3, 17, 252, 1000] {
            let m = model(steps);
            for opt in [OptionType::Call, OptionType::Put] {
                for style in [ExerciseStyle::European, ExerciseStyle::American] {
                    let a = price(&m, opt, style, ExecMode::Serial);
                    let b = price(&m, opt, style, ExecMode::Parallel);
                    assert!(
                        (a - b).abs() < 1e-9 * a.abs().max(1.0),
                        "steps={steps} {opt:?} {style:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn american_dominates_european() {
        let m = model(500);
        for opt in [OptionType::Call, OptionType::Put] {
            let eu = price(&m, opt, ExerciseStyle::European, ExecMode::Serial);
            let am = price(&m, opt, ExerciseStyle::American, ExecMode::Serial);
            assert!(am >= eu - 1e-12, "{opt:?}: am={am} eu={eu}");
        }
    }

    #[test]
    fn american_call_without_dividends_equals_european() {
        // Merton: early exercise of a call is never optimal when Y = 0.
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let m = BopmModel::new(p, 600).unwrap();
        let eu = price(&m, OptionType::Call, ExerciseStyle::European, ExecMode::Serial);
        let am = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((am - eu).abs() < 1e-10 * eu.max(1.0), "am={am} eu={eu}");
    }

    #[test]
    fn converges_to_black_scholes_european() {
        let p = OptionParams::paper_defaults();
        let bs = crate::analytic::black_scholes_price(&p, OptionType::Call).unwrap();
        let mut prev_err = f64::INFINITY;
        for steps in [100usize, 400, 1600] {
            let m = BopmModel::new(p, steps).unwrap();
            let v = price(&m, OptionType::Call, ExerciseStyle::European, ExecMode::Serial);
            let err = (v - bs).abs();
            assert!(err < prev_err * 0.6, "steps={steps}: err {err} vs prev {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 5e-3);
    }

    #[test]
    fn boundary_satisfies_corollary_2_7() {
        // All red cells left of all green cells, and the boundary moves left
        // by at most one per step: j_{i+1} − 1 ≤ j_i ≤ j_{i+1}.
        let m = model(800);
        let (_, b) = price_american_with_boundary(&m, OptionType::Call);
        for i in 0..m.steps() {
            assert!(b[i] <= b[i + 1], "i={i}: {} > {}", b[i], b[i + 1]);
            assert!(b[i] >= b[i + 1] - 1, "i={i}: {} < {} - 1", b[i], b[i + 1]);
        }
    }

    #[test]
    fn boundary_price_matches_plain_price() {
        let m = model(300);
        let (v, _) = price_american_with_boundary(&m, OptionType::Call);
        let want = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((v - want).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        let mut scratch = Vec::new();
        for steps in [7usize, 252, 100] {
            let m = model(steps);
            for opt in [OptionType::Call, OptionType::Put] {
                let want = price(&m, opt, ExerciseStyle::American, ExecMode::Serial);
                let got = price_with_scratch(&m, opt, ExerciseStyle::American, &mut scratch);
                assert_eq!(got.to_bits(), want.to_bits(), "steps={steps} {opt:?}");
            }
        }
    }

    #[test]
    fn single_step_tree() {
        let m = model(1);
        let v = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        let s0 = m.s0();
        let s1 = m.s1();
        let leaf0 = m.exercise_call(1, 0).max(0.0);
        let leaf1 = m.exercise_call(1, 1).max(0.0);
        let want = (s0 * leaf0 + s1 * leaf1).max(m.exercise_call(0, 0));
        assert!((v - want).abs() < 1e-12);
    }
}
