//! The paper's fast BOPM pricer: American call in `O(T log² T)` work and
//! `O(T)` span via the right-cone nonlinear-stencil engine (§2.3).
//!
//! ## Extended grid and the first backward step
//!
//! The engine runs on the column-*unbounded* extension of the lattice (the
//! red–green lemmas' algebra never uses the hypotenuse, and the root's
//! dependency cone only reaches column `T`, so the answer is unchanged).
//! On the extension the "boundary drifts left" invariant (Cor. 2.7) holds
//! for every *interior* transition — Lemma 2.3 applies to any row that has
//! children — but **not necessarily** for the expiry → `T−1` transition:
//! when `(1 − e^{−RΔt}) > (1 − e^{−YΔt})·u²` a cell right of the expiry
//! boundary can turn red, i.e. the boundary jumps *right* exactly once.
//! (The paper avoids this by working inside the triangle, where the
//! hypotenuse truncates the red region.)  The driver therefore materialises
//! row `T−1` explicitly — every cell there has a closed form in the payoff —
//! finds its honest boundary by bracketed binary search over the single
//! crossing (Lemma 2.2 holds at `T−1` regardless), and starts the engine
//! from `t = 1`.
//!
//! The `Y = 0` contract is the degenerate limit: no interior cell is ever
//! green (Merton — early exercise of a call on a non-dividend stock never
//! pays), so pricing collapses to the `O(T log T)` European FFT pass.
//!
//! Rows are stored as **premiums** `δ = G − exercise ≥ 0` (see
//! [`crate::engine`]): at expiry `δ = (0 − ex)₊ = (K − S·u^{2j−T})₊`, bounded
//! by `K`, which keeps FFT inputs in a `T`-independent dynamic range.

use super::european::price_european_fft;
use super::BopmModel;
use crate::engine::left_cone::{self, GreenPrefixRow};
use crate::engine::right_cone::{advance_red_row, solve_to_root};
use crate::engine::{EngineConfig, ExpObstacle, RedRow};
use crate::params::OptionType;
use amopt_stencil::Segment;

/// Obstacle spec for the American call: `green(t, c) = φ(t, c) − K` with
/// `φ(t, c) = S·u^{2c − (T−t)}` and `L φ_t = e^{−YΔt} φ_{t+1}`
/// (the identity `s0/u + s1·u = e^{−YΔt}` from Lemma 2.2's proof).
fn call_obstacle(model: &BopmModel) -> ExpObstacle<impl Fn(u64, i64) -> f64 + Sync + '_> {
    let t_total = model.steps();
    let phi = move |t: u64, c: i64| model.node_price(t_total - t as usize, c);
    let lambda = model.s0() / model.up() + model.s1() * model.up();
    ExpObstacle::new(phi, &model.kernel(), lambda, 1.0, -model.params().strike)
}

/// Continuation value of a row-`T−1` cell, straight from the payoff row.
#[inline]
fn first_step_continuation(model: &BopmModel, j: i64) -> f64 {
    let t = model.steps();
    let p0 = model.exercise_call(t, j).max(0.0);
    let p1 = model.exercise_call(t, j + 1).max(0.0);
    model.s0() * p0 + model.s1() * p1
}

/// Premium (continuation − exercise) of cell `(T−1, j)`; red iff `≥ 0`.
#[inline]
fn first_step_premium(model: &BopmModel, j: i64) -> f64 {
    first_step_continuation(model, j) - model.exercise_call(model.steps() - 1, j)
}

#[inline]
fn first_step_red(model: &BopmModel, j: i64) -> bool {
    first_step_premium(model, j) >= 0.0
}

/// Builds row `T−1` (engine time `t = 1`) with an honestly located boundary,
/// immune to the one-off rightward jump described in the module docs.
///
/// Single crossing holds at row `T−1` (Lemma 2.2's induction starts at the
/// payoff row), so the boundary is found by galloping to a red/green bracket
/// from the expiry boundary and binary-searching the crossing.
fn first_step_row(model: &BopmModel) -> RedRow {
    let start = model.leaf_call_boundary().max(0);
    let (mut lo, mut hi); // invariant: lo red or −1, hi green
    if first_step_red(model, start) {
        lo = start;
        hi = start + 1;
        let mut step = 1i64;
        while first_step_red(model, hi) {
            lo = hi;
            hi += step;
            step *= 2;
        }
    } else {
        hi = start;
        lo = start - 1;
        let mut step = 1i64;
        while lo >= 0 && !first_step_red(model, lo) {
            hi = lo;
            lo -= step;
            step *= 2;
        }
        lo = lo.max(-1); // −1 acts as a virtual red sentinel
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if first_step_red(model, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let premiums: Vec<f64> = (0..=lo).map(|j| first_step_premium(model, j)).collect();
    RedRow { t: 1, reds: Segment::new(0, premiums), boundary: lo }
}

/// American call price via the FFT trapezoid decomposition
/// (`fft-bopm` in the paper's plots).
pub fn price_american_call(model: &BopmModel, cfg: &EngineConfig) -> f64 {
    // amopt-lint: allow(float-eq) -- Y = 0.0 exactly routes calls to the European fast path (Merton); any nonzero yield prices American
    if model.params().dividend_yield == 0.0 {
        // Merton: American call on a non-dividend stock ≡ European.
        return price_european_fft(model, OptionType::Call);
    }
    let t_total = model.steps() as u64;
    let row = first_step_row(model);
    if row.is_all_green() {
        // All green at T−1 stays green to the root (interior monotonicity).
        return model.exercise_call(0, 0);
    }
    let obstacle = call_obstacle(model);
    solve_to_root(&model.kernel(), &obstacle, row, t_total, 0, cfg)
}

/// American call price plus the early-exercise boundary sampled at `rows`
/// roughly equally spaced time steps (the red–green divider of §2.2).
///
/// Returns `(price, samples)`; each sample is `(i, j_i)` with grid row `i`
/// (market time step) and *extended-grid* boundary column `j_i` (−1 = all
/// green; values above the row width `i` mean the triangle row is all red).
pub fn price_with_boundary_samples(
    model: &BopmModel,
    cfg: &EngineConfig,
    rows: usize,
) -> (f64, Vec<(usize, i64)>) {
    let t_total = model.steps() as u64;
    let mut samples = Vec::with_capacity(rows + 2);
    samples.push((model.steps(), model.leaf_call_boundary()));
    // amopt-lint: allow(float-eq) -- Y = 0.0 exactly is the Merton no-dividend sentinel, not a tolerance check
    if model.params().dividend_yield == 0.0 || t_total == 1 {
        let price = price_american_call(model, cfg);
        return (price, samples);
    }
    let kernel = model.kernel();
    let obstacle = call_obstacle(model);
    let mut cur = first_step_row(model);
    samples.push((model.steps() - 1, cur.boundary));
    let chunk = (t_total / rows.max(1) as u64).max(1);
    while cur.t < t_total && !cur.is_all_green() {
        let h = chunk.min(t_total - cur.t);
        cur = advance_red_row(&kernel, &obstacle, &cur, h, cfg);
        samples.push((model.steps() - cur.t as usize, cur.boundary));
    }
    let green_root = model.exercise_call(0, 0);
    let price = if cur.t == t_total && cur.boundary >= 0 && cur.reds.contains(0) {
        cur.reds.get(0) + green_root
    } else {
        green_root
    };
    (price, samples)
}

// ---------------------------------------------------------------------------
// American put — the left-cone engine (green region on the low-price side).
// ---------------------------------------------------------------------------

/// Obstacle closure for the American put: `green(t, c) = K − φ(t, c)`, i.e.
/// the exercise value at grid row `i = T − t`, column `c`.
fn put_green(model: &BopmModel) -> impl Fn(u64, i64) -> f64 + Sync + '_ {
    let t_total = model.steps();
    move |t: u64, c: i64| model.exercise_put(t_total - t as usize, c)
}

/// Continuation value of a row-`T−1` cell, straight from the payoff row.
#[inline]
fn first_step_put_continuation(model: &BopmModel, j: i64) -> f64 {
    let t = model.steps();
    model.s0() * model.exercise_put(t, j).max(0.0)
        + model.s1() * model.exercise_put(t, j + 1).max(0.0)
}

/// Whether cell `(T−1, j)` is green (exercise beats continuation).
#[inline]
fn first_step_put_green(model: &BopmModel, j: i64) -> bool {
    model.exercise_put(model.steps() - 1, j) >= first_step_put_continuation(model, j)
}

/// Builds row `T−1` (engine time `t = 1`) with an honestly located last
/// green column.  Like the call driver, the expiry → `T−1` transition is the
/// one step the interior drift lemmas do not cover (the boundary can jump
/// further left than the interior bound), so the row is materialised from
/// the payoff closed form and its boundary found by a bracketed search
/// (single crossing holds at `T−1` by the mirror of Lemma 2.2).
fn first_step_put_row(model: &BopmModel) -> GreenPrefixRow {
    let t = model.steps() as i64;
    // Leaf boundary: last column with K ≥ S·u^{2j−T}; identical to the
    // call's leaf boundary (the call is out of the money exactly where the
    // put is in the money).
    let leaf = model.leaf_call_boundary();
    let lo = left_cone::last_green_from(leaf, |j| first_step_put_green(model, j));
    // Stored reds reach the non-zero support edge: continuation vanishes
    // exactly right of the leaf boundary (both children pay zero).
    let row_hi = t - 1;
    let support_end = leaf.min(row_hi);
    let values: Vec<f64> =
        ((lo + 1)..=support_end).map(|j| first_step_put_continuation(model, j)).collect();
    GreenPrefixRow { t: 1, boundary: lo, hi: row_hi, reds: Segment::new(lo + 1, values) }
}

/// American put price via the left-cone FFT trapezoid decomposition —
/// `O(T log² T)` work and `O(T)` span, same complexity class as the calls.
pub fn price_american_put(model: &BopmModel, cfg: &EngineConfig) -> f64 {
    // amopt-lint: allow(float-eq) -- R = 0.0 exactly routes puts to the European fast path; any nonzero rate prices American
    if model.params().rate == 0.0 {
        // With no interest on the strike, early exercise of a put never
        // pays: continuation ≥ K·e^{−RΔt} − S·e^{−YΔt} = K − S·e^{−YΔt}
        // ≥ K − S at every node (the put-side mirror of Merton's Y = 0
        // call), so the American put collapses to the European FFT pass.
        return price_european_fft(model, OptionType::Put);
    }
    let t_total = model.steps() as u64;
    let row = first_step_put_row(model);
    if row.is_all_green() {
        // All green at T−1 stays green to the root (interior monotonicity).
        return model.exercise_put(0, 0);
    }
    let green = put_green(model);
    left_cone::solve_to_root(&model.kernel(), &green, row, t_total, cfg)
}

/// American put price plus the early-exercise boundary sampled at `rows`
/// roughly equally spaced time steps.
///
/// Returns `(price, samples)`; each sample is `(i, f_i)` with grid row `i`
/// (market time step) and the last green (exercise-optimal) column `f_i`:
/// `−1` means no exercise region in the row, values at or above the row
/// width `i` mean the whole row exercises.
pub fn price_put_with_boundary_samples(
    model: &BopmModel,
    cfg: &EngineConfig,
    rows: usize,
) -> (f64, Vec<(usize, i64)>) {
    let t_total = model.steps() as u64;
    let mut samples = Vec::with_capacity(rows + 2);
    samples.push((model.steps(), model.leaf_call_boundary()));
    // amopt-lint: allow(float-eq) -- R = 0.0 exactly is the no-early-exercise sentinel for puts, not a tolerance check
    if model.params().rate == 0.0 || t_total == 1 {
        let price = price_american_put(model, cfg);
        return (price, samples);
    }
    let kernel = model.kernel();
    let green = put_green(model);
    let mut cur = first_step_put_row(model);
    samples.push((model.steps() - 1, cur.boundary));
    let chunk = (t_total / rows.max(1) as u64).max(1);
    while cur.t < t_total && !cur.is_all_green() {
        let h = chunk.min(t_total - cur.t);
        cur = left_cone::advance_green_prefix(&kernel, &green, &cur, h, cfg);
        samples.push((model.steps() - cur.t as usize, cur.boundary));
    }
    let price = if cur.t < t_total {
        // Green absorbs through the apex.
        model.exercise_put(0, 0)
    } else {
        cur.value_at(&green, 0)
    };
    (price, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bopm::naive::{self, ExecMode};
    use crate::params::{ExerciseStyle, OptionParams, OptionType};

    fn assert_matches_naive(params: OptionParams, steps: usize, tol: f64) {
        let m = BopmModel::new(params, steps).unwrap();
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_call(&m, &EngineConfig::default());
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "steps={steps}: fft {got} vs naive {want}"
        );
    }

    #[test]
    fn matches_naive_paper_params() {
        for steps in [1usize, 2, 3, 7, 8, 9, 50, 252, 1000, 4001] {
            assert_matches_naive(OptionParams::paper_defaults(), steps, 1e-9);
        }
    }

    #[test]
    fn matches_naive_at_large_t() {
        // The premium-space formulation must stay accurate where raw-value
        // FFTs lose absolute precision (u^T ≈ 1e12 at this size).
        assert_matches_naive(OptionParams::paper_defaults(), 20_000, 1e-9);
    }

    #[test]
    fn matches_naive_across_moneyness() {
        let base = OptionParams::paper_defaults();
        for spot in [60.0, 100.0, 129.0, 131.0, 200.0, 400.0] {
            assert_matches_naive(OptionParams { spot, ..base }, 500, 1e-9);
        }
    }

    #[test]
    fn matches_naive_across_vol_and_rates() {
        let base = OptionParams::paper_defaults();
        for vol in [0.05, 0.2, 0.6] {
            for (rate, div) in [(0.0, 0.0163), (0.05, 0.02), (0.001, 0.08), (0.08, 0.001)] {
                let p = OptionParams { volatility: vol, rate, dividend_yield: div, ..base };
                assert_matches_naive(p, 300, 1e-8);
            }
        }
    }

    #[test]
    fn deep_itm_immediate_exercise() {
        let p = OptionParams {
            spot: 10_000.0,
            strike: 1.0,
            dividend_yield: 0.3,
            ..OptionParams::paper_defaults()
        };
        assert_matches_naive(p, 64, 1e-9);
    }

    #[test]
    fn deep_otm_all_red() {
        let p = OptionParams { spot: 1.0, strike: 1000.0, ..OptionParams::paper_defaults() };
        let m = BopmModel::new(p, 400).unwrap();
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_call(&m, &EngineConfig::default());
        // The true price is astronomically small; premium space recovers it
        // as (δ + green) with δ ≈ −green ≈ K, so the achievable absolute
        // accuracy is ε·K — compare at that scale.
        assert!((got - want).abs() < 1e-12 * p.strike, "fft {got} vs naive {want}");
    }

    #[test]
    fn boundary_samples_match_naive_boundary() {
        let m = BopmModel::new(OptionParams::paper_defaults(), 512).unwrap();
        let (_, dense) = naive::price_american_with_boundary(&m, OptionType::Call);
        let (price, samples) = price_with_boundary_samples(&m, &EngineConfig::default(), 16);
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((price - want).abs() < 1e-9 * want.max(1.0));
        for (i, j) in samples {
            if j <= i as i64 {
                assert_eq!(j, dense[i], "row {i}");
            } else {
                // Extended boundary beyond the hypotenuse ⇒ triangle row all red.
                assert_eq!(dense[i], i as i64, "row {i}");
            }
        }
    }

    #[test]
    fn zero_dividend_equals_european_fft() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        assert_matches_naive(p, 777, 1e-9);
        let m = BopmModel::new(p, 777).unwrap();
        let eu = super::price_european_fft(&m, OptionType::Call);
        let am = price_american_call(&m, &EngineConfig::default());
        assert_eq!(am, eu);
    }

    #[test]
    fn rightward_expiry_jump_is_handled() {
        // R ≫ Y with modest vol triggers the one-off rightward boundary jump
        // at the first backward step (see module docs).
        let p = OptionParams {
            rate: 0.06,
            dividend_yield: 0.005,
            volatility: 0.08,
            ..OptionParams::paper_defaults()
        };
        let m = BopmModel::new(p, 256).unwrap();
        let row = super::first_step_row(&m);
        assert!(
            row.boundary > m.leaf_call_boundary(),
            "expected a rightward jump: {} vs {}",
            row.boundary,
            m.leaf_call_boundary()
        );
        assert_matches_naive(p, 256, 1e-9);
    }

    #[test]
    fn tiny_dividend_stays_consistent() {
        let p = OptionParams { dividend_yield: 1e-6, ..OptionParams::paper_defaults() };
        assert_matches_naive(p, 300, 1e-8);
    }

    // --- American put (left-cone engine) ---

    fn assert_put_matches_naive(params: OptionParams, steps: usize, tol: f64) {
        let m = BopmModel::new(params, steps).unwrap();
        let want = naive::price(&m, OptionType::Put, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_put(&m, &EngineConfig::default());
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "steps={steps}: fft put {got} vs naive {want}"
        );
    }

    #[test]
    fn put_matches_naive_paper_params() {
        for steps in [1usize, 2, 3, 7, 8, 9, 50, 252, 1000, 4001] {
            assert_put_matches_naive(OptionParams::paper_defaults(), steps, 1e-9);
        }
    }

    #[test]
    fn put_matches_naive_at_large_t() {
        // Raw value space: put values stay O(K) even where node prices reach
        // u^T ≈ 1e12, so the FFT keeps full precision at this size.
        assert_put_matches_naive(OptionParams::paper_defaults(), 20_000, 1e-9);
    }

    #[test]
    fn put_matches_naive_across_moneyness() {
        let base = OptionParams::paper_defaults();
        for spot in [60.0, 100.0, 129.0, 131.0, 200.0, 400.0] {
            assert_put_matches_naive(OptionParams { spot, ..base }, 500, 1e-9);
        }
    }

    #[test]
    fn put_matches_naive_across_vol_and_rates() {
        let base = OptionParams::paper_defaults();
        for vol in [0.05, 0.2, 0.6] {
            for (rate, div) in [(0.0163, 0.0), (0.05, 0.02), (0.001, 0.08), (0.08, 0.001)] {
                let p = OptionParams { volatility: vol, rate, dividend_yield: div, ..base };
                assert_put_matches_naive(p, 300, 1e-8);
            }
        }
    }

    #[test]
    fn deep_itm_put_immediate_exercise() {
        let p = OptionParams {
            spot: 1.0,
            strike: 10_000.0,
            rate: 0.3,
            ..OptionParams::paper_defaults()
        };
        assert_put_matches_naive(p, 64, 1e-9);
        let m = BopmModel::new(p, 64).unwrap();
        let got = price_american_put(&m, &EngineConfig::default());
        assert_eq!(got, m.exercise_put(0, 0), "deep ITM put must exercise at once");
    }

    #[test]
    fn deep_otm_put_is_tiny_but_accurate() {
        let p = OptionParams { spot: 1000.0, strike: 1.0, ..OptionParams::paper_defaults() };
        let m = BopmModel::new(p, 400).unwrap();
        let want = naive::price(&m, OptionType::Put, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_put(&m, &EngineConfig::default());
        // Absolute accuracy at the FFT's ε·K scale, like the deep-OTM call.
        assert!((got - want).abs() < 1e-12 * p.strike, "fft {got} vs naive {want}");
    }

    #[test]
    fn zero_rate_put_equals_european_fft() {
        let p = OptionParams { rate: 0.0, ..OptionParams::paper_defaults() };
        assert_put_matches_naive(p, 777, 1e-9);
        let m = BopmModel::new(p, 777).unwrap();
        let eu = super::price_european_fft(&m, OptionType::Put);
        let am = price_american_put(&m, &EngineConfig::default());
        assert_eq!(am, eu);
    }

    #[test]
    fn put_boundary_samples_match_dense_tracking() {
        let m = BopmModel::new(OptionParams::paper_defaults(), 512).unwrap();
        // Dense last-green tracking: largest j with exercise ≥ continuation.
        let t = m.steps();
        let mut row: Vec<f64> = (0..=t as i64).map(|j| m.exercise_put(t, j).max(0.0)).collect();
        let mut dense = vec![-1i64; t]; // dense[i] = boundary of row i
        for i in (0..t).rev() {
            let mut f = -1i64;
            let mut next = Vec::with_capacity(i + 1);
            for j in 0..=i as i64 {
                let cont = m.s0() * row[j as usize] + m.s1() * row[j as usize + 1];
                let ex = m.exercise_put(i, j);
                if ex >= cont {
                    f = j;
                }
                next.push(cont.max(ex));
            }
            dense[i] = f;
            row = next;
        }
        let (price, samples) = price_put_with_boundary_samples(&m, &EngineConfig::default(), 16);
        let want = naive::price(&m, OptionType::Put, ExerciseStyle::American, ExecMode::Serial);
        assert!((price - want).abs() < 1e-9 * want.max(1.0));
        assert!(samples.len() > 10, "expected a sampled frontier");
        for &(i, f) in &samples[1..] {
            // Expiry sample (index 0) uses the leaf formula; engine rows are
            // compared against the dense tracker directly.
            assert_eq!(f, dense[i], "row {i}");
        }
    }

    #[test]
    fn put_boundary_drifts_left_by_at_most_one_interior_step() {
        // The mirrored Cor. 2.7: on the binomial lattice the last green
        // column moves down monotonically, at most one column per interior
        // step.  (The expiry transition is excluded — the drivers
        // materialise row T−1 explicitly for exactly that reason.)
        let m = BopmModel::new(OptionParams::paper_defaults(), 600).unwrap();
        let t = m.steps();
        let mut row: Vec<f64> = (0..=t as i64).map(|j| m.exercise_put(t, j).max(0.0)).collect();
        let mut prev: Option<i64> = None;
        for i in (0..t).rev() {
            let mut f = -1i64;
            let mut next = Vec::with_capacity(i + 1);
            for j in 0..=i as i64 {
                let cont = m.s0() * row[j as usize] + m.s1() * row[j as usize + 1];
                let ex = m.exercise_put(i, j);
                if ex >= cont {
                    f = j;
                }
                next.push(cont.max(ex));
            }
            if let Some(p) = prev {
                assert!(f <= p && f >= p - 1, "row {i}: boundary {f} after {p}");
            }
            prev = Some(f);
            row = next;
        }
    }
}
