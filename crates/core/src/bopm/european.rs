//! European binomial pricing in `O(T log T)`: with no early exercise the
//! whole lattice is a *linear* stencil, so the root value is a single
//! correlation of the payoff row with `kernel^{⊛T}` (cf. the paper's remark
//! that dropping the `max` reduces Fig. 1 to a linear stencil).
//!
//! Calls are priced through put–call parity: the *put* payoff is bounded by
//! `K`, whereas the call payoff grows like `u^T` — at `T ≳ 10⁴` that dynamic
//! range would let the FFT's absolute error (∝ the largest input) swamp the
//! price.  Parity is exact on the risk-neutral lattice:
//! `C − P = S·λ^T − K·μ^T` with `λ = s0/u + s1·u = e^{−YΔt}` and
//! `μ = s0 + s1 = e^{−RΔt}` (the eigenvalue identities of Lemma 2.2).

use super::BopmModel;
use crate::params::OptionType;
use amopt_fft::correlate_power_valid;

/// European option price via one FFT pass over the payoff row.
pub fn price_european_fft(model: &BopmModel, opt: OptionType) -> f64 {
    let t = model.steps();
    let put = price_put(model);
    match opt {
        OptionType::Put => put,
        OptionType::Call => {
            // Exact lattice parity, using the kernel's own eigenvalues so the
            // identity matches backward induction to rounding.
            let lambda = model.s0() / model.up() + model.s1() * model.up();
            let mu = model.s0() + model.s1();
            let fwd = model.params().spot * pow_u(lambda, t as u64)
                - model.params().strike * pow_u(mu, t as u64);
            put + fwd
        }
    }
}

/// `base^h` via exp/ln — relative error `O(ε)` independent of `h`.
#[inline]
fn pow_u(base: f64, h: u64) -> f64 {
    debug_assert!(base > 0.0);
    (h as f64 * base.ln()).exp()
}

fn price_put(model: &BopmModel) -> f64 {
    let t = model.steps();
    let strike = model.params().strike;
    let payoff: Vec<f64> =
        (0..=t as i64).map(|j| OptionType::Put.payoff(model.node_price(t, j), strike)).collect();
    if t == 0 {
        return payoff[0];
    }
    let kernel = model.kernel();
    let out = correlate_power_valid(&payoff, kernel.weights(), t as u64);
    debug_assert_eq!(out.len(), 1);
    out[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::black_scholes_price;
    use crate::bopm::naive::{self, ExecMode};
    use crate::params::{ExerciseStyle, OptionParams};

    #[test]
    fn matches_naive_european() {
        for steps in [1usize, 2, 13, 252, 2000] {
            let m = BopmModel::new(OptionParams::paper_defaults(), steps).unwrap();
            for opt in [OptionType::Call, OptionType::Put] {
                let want = naive::price(&m, opt, ExerciseStyle::European, ExecMode::Serial);
                let got = price_european_fft(&m, opt);
                assert!(
                    (got - want).abs() < 1e-9 * want.abs().max(1.0),
                    "steps={steps} {opt:?}: fft {got} vs naive {want}"
                );
            }
        }
    }

    #[test]
    fn converges_to_black_scholes() {
        let p = OptionParams::paper_defaults();
        for opt in [OptionType::Call, OptionType::Put] {
            let bs = black_scholes_price(&p, opt).unwrap();
            let m = BopmModel::new(p, 20_000).unwrap();
            let v = price_european_fft(&m, opt);
            assert!((v - bs).abs() < 2e-3, "{opt:?}: lattice {v} vs closed form {bs}");
        }
    }

    #[test]
    fn put_call_parity_on_the_lattice() {
        let p = OptionParams::paper_defaults();
        let m = BopmModel::new(p, 4096).unwrap();
        let call = price_european_fft(&m, OptionType::Call);
        let put = price_european_fft(&m, OptionType::Put);
        // Lattice parity: C − P = S·e^{−YT} − K·e^{−RT} holds exactly in the
        // risk-neutral tree (up to FFT rounding).
        let rhs =
            p.spot * (-p.dividend_yield * p.expiry).exp() - p.strike * (-p.rate * p.expiry).exp();
        assert!((call - put - rhs).abs() < 1e-8, "{} vs {}", call - put, rhs);
    }
}
