//! Binomial Option Pricing Model (Cox–Ross–Rubinstein lattice), §2 of the
//! paper.
//!
//! A `T`-step binomial tree is embedded in a `(T+1)×(T+1)` grid: row `i` holds
//! time step `i` (row `T` = expiry), and the node `(i, j)` carries asset price
//! `S·u^{2j−i}`.  Children of `(i,j)` are `(i+1, j)` (down move, factor
//! `d = 1/u`) and `(i+1, j+1)` (up move, factor `u`).
//!
//! Backward induction weights: the continuation value of `(i,j)` is
//! `s0·G[i+1][j] + s1·G[i+1][j+1]` with `s0 = e^{−RΔt}(1−p)` on the *down*
//! child and `s1 = e^{−RΔt}p` on the *up* child, where
//! `p = (e^{(R−Y)Δt} − d)/(u − d)`.  (Fig. 1 of the paper swaps `s0`/`s1`
//! relative to its own §2.1 — we follow §2.1, the financially correct
//! assignment; see DESIGN.md "errata".)

pub mod european;
pub mod fast;
pub mod naive;
pub mod oblivious;
pub mod term_structure;
pub mod tiled;

use crate::error::{PricingError, Result};
use crate::params::OptionParams;
use amopt_stencil::StencilKernel;

/// A fully derived binomial lattice model.
#[derive(Debug, Clone)]
pub struct BopmModel {
    params: OptionParams,
    steps: usize,
    dt: f64,
    up: f64,
    ln_up: f64,
    p_up: f64,
    /// Discounted weight on the down child `G[i+1][j]`: `e^{−RΔt}(1−p)`.
    s0: f64,
    /// Discounted weight on the up child `G[i+1][j+1]`: `e^{−RΔt}·p`.
    s1: f64,
    discount: f64,
}

impl BopmModel {
    /// Derives lattice quantities for a `steps`-step tree.
    ///
    /// Fails if parameters are invalid or the risk-neutral probability falls
    /// outside `(0, 1)` (an arbitrageable discretisation).
    pub fn new(params: OptionParams, steps: usize) -> Result<Self> {
        let params = params.validated()?;
        if steps == 0 {
            return Err(PricingError::InvalidParams {
                field: "steps",
                reason: "need at least one time step".into(),
            });
        }
        let dt = params.dt(steps);
        let up = (params.volatility * dt.sqrt()).exp();
        let down = 1.0 / up;
        let growth = ((params.rate - params.dividend_yield) * dt).exp();
        let p_up = (growth - down) / (up - down);
        if !(p_up > 0.0 && p_up < 1.0) {
            return Err(PricingError::UnstableDiscretisation {
                reason: format!(
                    "risk-neutral probability p = {p_up:.6} outside (0,1); \
                     increase steps or reduce |R−Y|·Δt relative to V·√Δt"
                ),
            });
        }
        let discount = (-params.rate * dt).exp();
        Ok(BopmModel {
            params,
            steps,
            dt,
            up,
            ln_up: params.volatility * dt.sqrt(),
            p_up,
            s0: discount * (1.0 - p_up),
            s1: discount * p_up,
            discount,
        })
    }

    /// The market/contract parameters this lattice was built from.
    #[inline]
    pub fn params(&self) -> &OptionParams {
        &self.params
    }

    /// Number of time steps `T`.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Per-step interval `Δt`.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Up factor `u = e^{V√Δt}`.
    #[inline]
    pub fn up(&self) -> f64 {
        self.up
    }

    /// Risk-neutral up probability `p`.
    #[inline]
    pub fn p_up(&self) -> f64 {
        self.p_up
    }

    /// Discounted down-child weight `s0 = e^{−RΔt}(1−p)`.
    #[inline]
    pub fn s0(&self) -> f64 {
        self.s0
    }

    /// Discounted up-child weight `s1 = e^{−RΔt}·p`.
    #[inline]
    pub fn s1(&self) -> f64 {
        self.s1
    }

    /// Per-step discount factor `m = e^{−RΔt}`.
    #[inline]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Asset price at node `(i, j)`: `S·u^{2j−i}`.
    #[inline]
    pub fn node_price(&self, i: usize, j: i64) -> f64 {
        self.params.spot * ((2 * j - i as i64) as f64 * self.ln_up).exp()
    }

    /// Call exercise value at node `(i, j)`: `S·u^{2j−i} − K`
    /// (the paper's `G^green`, *without* the floor at zero).
    #[inline]
    pub fn exercise_call(&self, i: usize, j: i64) -> f64 {
        self.node_price(i, j) - self.params.strike
    }

    /// Put exercise value at node `(i, j)`: `K − S·u^{2j−i}`.
    #[inline]
    pub fn exercise_put(&self, i: usize, j: i64) -> f64 {
        self.params.strike - self.node_price(i, j)
    }

    /// The one-step linear stencil `[s0, s1]` with anchor 0
    /// (continuation value of `(i,j)` reads `(i+1, j)` and `(i+1, j+1)`).
    pub fn kernel(&self) -> StencilKernel {
        StencilKernel::new(vec![self.s0, self.s1], 0)
    }

    /// Closed-form stability floor of the CRR discretisation: the lattice
    /// admits a risk-neutral probability `p ∈ (0, 1)` iff
    /// `V·√Δt > |R − Y|·Δt`, i.e. iff the volatility exceeds
    /// `|R − Y|·√(E/steps)`.
    ///
    /// Volatilities at or below the returned floor make [`BopmModel::new`]
    /// fail with [`PricingError::UnstableDiscretisation`]; anything strictly
    /// above it (modulo a few ulps of rounding in the lattice exponentials)
    /// constructs.  Root-finders that sweep volatility — the implied-vol
    /// drivers — seed their lower bracket here instead of probe-walking up
    /// from zero.
    pub fn min_stable_volatility(params: &OptionParams, steps: usize) -> f64 {
        if steps == 0 {
            return f64::INFINITY;
        }
        (params.rate - params.dividend_yield).abs() * params.dt(steps).sqrt()
    }

    /// Largest leaf column whose call exercise value is non-positive, i.e.
    /// the red–green boundary `j_T` of the expiry row; `-1` when every leaf
    /// is in the money.
    ///
    /// Deliberately **not** clamped to the triangle width `T`: the paper's
    /// red–green lemmas hold on the column-unbounded extension of the grid
    /// (their algebra never uses the hypotenuse), and the fast engine works
    /// on that extension — the root's dependency cone only reaches column
    /// `T`, so extended and triangular grids agree on the answer, while the
    /// extension keeps the boundary drift exactly `≤ 1` per step even for
    /// deep out-of-the-money contracts whose boundary exceeds `T`.
    pub fn leaf_call_boundary(&self) -> i64 {
        let t = self.steps as i64;
        // S·u^{2j−T} ≤ K  ⇔  j ≤ (T + ln(K/S)/ln u)/2
        let est = (t as f64 + (self.params.strike / self.params.spot).ln() / self.ln_up) / 2.0;
        let mut j = est.floor() as i64;
        j = j.max(-1);
        // Float-exact adjustment around the estimate.
        while self.exercise_call(self.steps, j + 1) <= 0.0 {
            j += 1;
        }
        while j >= 0 && self.exercise_call(self.steps, j) > 0.0 {
            j -= 1;
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(steps: usize) -> BopmModel {
        BopmModel::new(OptionParams::paper_defaults(), steps).unwrap()
    }

    #[test]
    fn weights_are_probability_like() {
        let m = model(252);
        assert!(m.p_up() > 0.0 && m.p_up() < 1.0);
        assert!(m.s0() > 0.0 && m.s1() > 0.0);
        // s0 + s1 = e^{−RΔt} < 1 for positive rates.
        assert!((m.s0() + m.s1() - m.discount()).abs() < 1e-15);
        assert!(m.discount() < 1.0);
    }

    #[test]
    fn node_prices_follow_tree_structure() {
        let m = model(100);
        let s = m.params().spot;
        assert!((m.node_price(0, 0) - s).abs() < 1e-12);
        // Up child multiplies by u, down child divides by u.
        assert!((m.node_price(5, 3) * m.up() - m.node_price(6, 4)).abs() < 1e-9);
        assert!((m.node_price(5, 3) / m.up() - m.node_price(6, 3)).abs() < 1e-9);
        // Martingale-ish check: E[price next] = price·e^{(R−Y)Δt}.
        let expected = m.p_up() * m.node_price(1, 1) + (1.0 - m.p_up()) * m.node_price(1, 0);
        let growth = ((m.params().rate - m.params().dividend_yield) * m.dt()).exp();
        assert!((expected - s * growth).abs() < 1e-9);
    }

    #[test]
    fn leaf_boundary_is_exact_crossover() {
        for steps in [1usize, 2, 10, 252, 1001] {
            let m = model(steps);
            let j = m.leaf_call_boundary();
            if j >= 0 {
                assert!(m.exercise_call(steps, j) <= 0.0, "steps={steps} j={j}");
            }
            assert!(m.exercise_call(steps, j + 1) > 0.0, "steps={steps} j={j}");
        }
    }

    #[test]
    fn leaf_boundary_deep_itm_is_negative_one() {
        let p = OptionParams { spot: 1_000_000.0, strike: 1.0, ..OptionParams::paper_defaults() };
        let m = BopmModel::new(p, 16).unwrap();
        assert_eq!(m.leaf_call_boundary(), -1);
    }

    #[test]
    fn leaf_boundary_deep_otm_extends_beyond_triangle() {
        // On the unbounded column extension the boundary exceeds T for deep
        // out-of-the-money contracts (see leaf_call_boundary docs).
        let p = OptionParams { spot: 1.0, strike: 1_000_000.0, ..OptionParams::paper_defaults() };
        let m = BopmModel::new(p, 16).unwrap();
        let j = m.leaf_call_boundary();
        assert!(j > 16, "extended boundary {j} should pass the triangle edge");
        assert!(m.exercise_call(16, j) <= 0.0 && m.exercise_call(16, j + 1) > 0.0);
    }

    #[test]
    fn rejects_zero_steps() {
        assert!(BopmModel::new(OptionParams::paper_defaults(), 0).is_err());
    }

    #[test]
    fn rejects_arbitrage_discretisation() {
        // Enormous drift per step with tiny volatility pushes p outside (0,1).
        let p = OptionParams {
            rate: 5.0,
            volatility: 0.01,
            dividend_yield: 0.0,
            ..OptionParams::paper_defaults()
        };
        assert!(matches!(BopmModel::new(p, 1), Err(PricingError::UnstableDiscretisation { .. })));
    }

    #[test]
    fn min_stable_volatility_is_the_exact_threshold() {
        for (rate, div, steps) in [(0.05, 0.0163, 64usize), (0.3, 0.0, 16), (0.001, 0.2, 128)] {
            let p = OptionParams { rate, dividend_yield: div, ..OptionParams::paper_defaults() };
            let floor = BopmModel::min_stable_volatility(&p, steps);
            assert!(floor > 0.0);
            let above = OptionParams { volatility: floor * (1.0 + 1e-6), ..p };
            assert!(BopmModel::new(above, steps).is_ok(), "just above the floor must be stable");
            let below = OptionParams { volatility: floor * (1.0 - 1e-6), ..p };
            assert!(
                matches!(
                    BopmModel::new(below, steps),
                    Err(PricingError::UnstableDiscretisation { .. })
                ),
                "just below the floor must be unstable"
            );
        }
    }

    #[test]
    fn kernel_matches_weights() {
        let m = model(64);
        let k = m.kernel();
        assert_eq!(k.weights(), &[m.s0(), m.s1()]);
        assert_eq!(k.anchor(), 0);
    }
}
