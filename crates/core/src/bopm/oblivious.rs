//! Cache-oblivious recursive binomial pricer — the "Recursive Tiling" row of
//! Table 2 (Frigo–Strumpen space-time trapezoidal decomposition, specialised
//! to the one-sided binomial stencil).
//!
//! The space-time region is a trapezoid
//! `{(t, x) : t0 ≤ t < t1, x0 + dx0·(t−t0) ≤ x < x1 + dx1·(t−t0)}` with edge
//! slopes `dx ∈ {0, −1}` (the stencil reads `x, x+1` at the earlier time, so
//! a right edge of slope −1 makes a region self-contained, and a left edge
//! of slope −1 consumes values the piece to its left wrote at intermediate
//! times — which is exactly what the in-place buffer provides when the left
//! piece runs first).  Wide trapezoids are cut by a slope −1 line through
//! the bottom-row midpoint (left piece first, then right); tall ones are cut
//! in time.  Every level halves the working set, so the recursion reaches
//! cache-sized subproblems without knowing cache parameters — `Θ(T²)` work
//! with `Θ(T²/(B·M))`-ish misses.
//!
//! The cut order is a *true dependency* for a one-sided stencil (the right
//! piece reads the left piece's intermediate rows), so this baseline is
//! serial; the paper's parallel `zb-bopm` corresponds to the tiled variant
//! in [`super::tiled`].

use super::BopmModel;
use crate::params::{ExerciseStyle, OptionType};

/// Recursion context.
struct Walk<'a> {
    s0: f64,
    s1: f64,
    model: &'a BopmModel,
    opt: OptionType,
    style: ExerciseStyle,
    t_total: usize,
    base_height: usize,
}

impl Walk<'_> {
    #[inline]
    fn exercise(&self, i: usize, j: i64) -> f64 {
        match self.opt {
            OptionType::Call => self.model.exercise_call(i, j),
            OptionType::Put => self.model.exercise_put(i, j),
        }
    }

    /// One row update in place: `buf[x] ← max(s0·buf[x] + s1·buf[x+1], ex)`
    /// for `x ∈ [x0, x1)`, producing time `t` (grid row `T − t`).
    #[inline]
    fn row(&self, buf: &mut [f64], t: usize, x0: i64, x1: i64) {
        let i = self.t_total - t;
        for x in x0..x1 {
            let xu = x as usize;
            let cont = self.s0 * buf[xu] + self.s1 * buf[xu + 1];
            buf[xu] = match self.style {
                ExerciseStyle::European => cont,
                ExerciseStyle::American => cont.max(self.exercise(i, x)),
            };
        }
    }

    /// Recursive trapezoid walk; see module docs for the region definition.
    #[allow(clippy::too_many_arguments)] // trapezoid geometry: two cuts × (position, slope)
    fn walk(&self, buf: &mut [f64], t0: usize, t1: usize, x0: i64, dx0: i64, x1: i64, dx1: i64) {
        let h = (t1 - t0) as i64;
        debug_assert!(h >= 1);
        if h as usize <= self.base_height {
            for t in t0 + 1..=t1 {
                let dt = (t - t0) as i64;
                self.row(buf, t, x0 + dx0 * dt, x1 + dx1 * dt);
            }
            return;
        }
        let xb0 = x0 + dx0 * h; // bottom-left
        let xb1 = x1 + dx1 * h; // bottom-right (exclusive)
        if xb1 - xb0 >= 2 * h + 2 {
            // Space cut: slope −1 line hitting the bottom-row midpoint.
            let xm_bot = (xb0 + xb1) / 2;
            let xc = xm_bot + h; // top coordinate of the cut line
            debug_assert!(xc < x1 && xm_bot > xb0);
            self.walk(buf, t0, t1, x0, dx0, xc, -1);
            self.walk(buf, t0, t1, xc, -1, x1, dx1);
        } else {
            // Time cut.
            let tm = t0 + (t1 - t0) / 2;
            let dt = (tm - t0) as i64;
            self.walk(buf, t0, tm, x0, dx0, x1, dx1);
            self.walk(buf, tm, t1, x0 + dx0 * dt, dx0, x1 + dx1 * dt, dx1);
        }
    }
}

/// Price by the cache-oblivious recursive decomposition.
pub fn price(model: &BopmModel, opt: OptionType, style: ExerciseStyle) -> f64 {
    let t = model.steps();
    let payoff = |j: i64| -> f64 {
        match opt {
            OptionType::Call => model.exercise_call(t, j).max(0.0),
            OptionType::Put => model.exercise_put(t, j).max(0.0),
        }
    };
    let mut buf: Vec<f64> = (0..=t as i64).map(payoff).collect();
    if t == 0 {
        return buf[0];
    }
    let walk =
        Walk { s0: model.s0(), s1: model.s1(), model, opt, style, t_total: t, base_height: 8 };
    walk.walk(&mut buf, 0, t, 0, 0, t as i64 + 1, -1);
    buf[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bopm::naive::{self, ExecMode};
    use crate::params::OptionParams;

    #[test]
    fn matches_naive_across_sizes_and_styles() {
        for steps in [1usize, 2, 3, 8, 9, 17, 64, 333, 1024] {
            let m = BopmModel::new(OptionParams::paper_defaults(), steps).unwrap();
            for opt in [OptionType::Call, OptionType::Put] {
                for style in [ExerciseStyle::European, ExerciseStyle::American] {
                    let want = naive::price(&m, opt, style, ExecMode::Serial);
                    let got = price(&m, opt, style);
                    assert!(
                        (got - want).abs() < 1e-9 * want.abs().max(1.0),
                        "steps={steps} {opt:?} {style:?}: oblivious {got} vs naive {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_fast_pricer() {
        let m = BopmModel::new(OptionParams::paper_defaults(), 2048).unwrap();
        let fast = crate::bopm::fast::price_american_call(&m, &crate::EngineConfig::default());
        let got = price(&m, OptionType::Call, ExerciseStyle::American);
        assert!((got - fast).abs() < 1e-9 * fast);
    }
}
