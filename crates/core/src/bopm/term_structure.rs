//! Piecewise-constant volatility term structure — the "time dependent
//! volatility model" future-work item of the paper's §6, for European
//! contracts.
//!
//! A CRR tree with per-step `u` changing over time stops recombining, so we
//! fix the *grid* spacing from a reference volatility and let each time
//! segment carry its own risk-neutral weights on that common grid (the
//! standard fixed-grid trick: the per-segment probability
//! `p_k = (e^{(R−Y)Δt} − 1/u)/(u − 1/u)` absorbs the vol change through the
//! segment's own `Δt`-scaled drift... more precisely we pick the grid `u`
//! from the *largest* segment volatility so every segment's `p_k ∈ (0, 1)`).
//!
//! Because each segment is a *linear* stencil with a constant kernel, the
//! whole evolution is a product of kernel powers in the spectral domain:
//! `FFT(payoff) · Π_k FFT(kernel_k)^{h_k}` — one transform pair total,
//! `O(T log T)` regardless of the number of segments.

use super::BopmModel;
use crate::error::{PricingError, Result};
use crate::params::{OptionParams, OptionType};
use amopt_fft::{fft_real, ifft_real, next_pow2, Complex64};

/// One segment of the volatility term structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolSegment {
    /// Number of lattice steps in this segment (from the expiry backward).
    pub steps: usize,
    /// Annualised volatility over the segment.
    pub volatility: f64,
}

/// European price under a piecewise-constant volatility term structure.
///
/// `segments` are ordered from the valuation date toward expiry and their
/// step counts must sum to the lattice size `T`.  Uses put pricing plus
/// exact parity for calls (dynamic-range safety; see `bopm::european`).
pub fn price_european_term_fft(
    params: &OptionParams,
    segments: &[VolSegment],
    opt: OptionType,
) -> Result<f64> {
    let params = params.validated()?;
    if segments.is_empty() {
        return Err(PricingError::InvalidParams {
            field: "segments",
            reason: "need at least one volatility segment".into(),
        });
    }
    let t: usize = segments.iter().map(|s| s.steps).sum();
    if t == 0 {
        return Err(PricingError::InvalidParams {
            field: "segments",
            reason: "segments must contain at least one step in total".into(),
        });
    }
    // Common grid from the largest volatility (guarantees p ∈ (0,1) for the
    // quieter segments as long as each segment model validates).
    let v_max = segments.iter().map(|s| s.volatility).fold(0.0, f64::max);
    let grid = BopmModel::new(OptionParams { volatility: v_max, ..params }, t)?;
    let dt = params.dt(t);
    let u = grid.up();
    let growth = ((params.rate - params.dividend_yield) * dt).exp();
    let discount = (-params.rate * dt).exp();

    // Per-segment kernels on the shared grid: only p changes.
    let mut kernels = Vec::with_capacity(segments.len());
    for seg in segments {
        if seg.volatility > v_max + 1e-15 || seg.volatility <= 0.0 {
            return Err(PricingError::InvalidParams {
                field: "segments",
                reason: "segment volatilities must be positive".into(),
            });
        }
        // Match the segment's variance on the fixed grid: the price takes a
        // ±1 grid step with probability q, stays via a 2-step split…  On a
        // binomial grid the only freedom is p; matching the first moment
        // exactly keeps the tree risk-neutral, and the vol enters through
        // the *effective* variance p(1−p)(2 ln u)² ≤ (V_max √Δt·…)².  For
        // segments quieter than the grid this under-disperses, so we blend
        // an identity component: kernel = (1−θ)·δ + θ·[1−p, p] with
        // θ = (V_seg/V_max)² chosen to reproduce the segment variance
        // (E and Var of log-price per step match the CRR segment to O(Δt)).
        let theta = (seg.volatility / v_max).powi(2);
        if !(0.0 < theta && theta <= 1.0) {
            return Err(PricingError::InvalidParams {
                field: "segments",
                reason: format!("volatility {} exceeds the grid volatility", seg.volatility),
            });
        }
        // Drift: (1−θ)·1 + θ·((1−p)/u + p·u) = e^{(R−Y)Δt} ⇒ solve for p.
        let target = (growth - 1.0) / theta + 1.0;
        let p = (target - 1.0 / u) / (u - 1.0 / u);
        if !(p > 0.0 && p < 1.0) {
            return Err(PricingError::UnstableDiscretisation {
                reason: format!(
                    "term-structure segment with V={} needs p={p:.4} outside (0,1)",
                    seg.volatility
                ),
            });
        }
        // 3-tap kernel on offsets {0,1,2} of the *doubled* grid: to keep the
        // cone arithmetic simple we express the blended kernel on a 2-step
        // composite lattice: identity maps to the middle offset.
        let k0 = discount * theta * (1.0 - p);
        let k1 = discount * (1.0 - theta);
        let k2 = discount * theta * p;
        kernels.push(([k0, k1, k2], seg.steps));
    }

    // Payoff on the doubled-resolution expiry row: columns 0..=2T carry
    // price S·u^{(j − T)}  (offset {0,1,2} per step ⇒ trinomial-like grid).
    let payoff_at = |j: i64| -> f64 {
        let price = params.spot * ((j - t as i64) as f64 * u.ln()).exp();
        OptionType::Put.payoff(price, params.strike)
    };
    let payoff: Vec<f64> = (0..=2 * t as i64).map(payoff_at).collect();

    // Spectral chain: one forward transform, per-segment pointwise powers,
    // one inverse.
    let n = next_pow2(payoff.len());
    let sx = fft_real(&payoff, n);
    let mut spec = sx;
    for (taps, steps) in &kernels {
        if *steps == 0 {
            continue;
        }
        let sk = kernel_spectrum(taps, n);
        for (x, k) in spec.iter_mut().zip(&sk) {
            *x *= k.conj().powu(*steps as u64);
        }
    }
    let out = ifft_real(spec, 1);
    let put = out[0];
    Ok(match opt {
        OptionType::Put => put,
        OptionType::Call => {
            // Parity: Σ weights of the full chain acting on (price − K).
            let lambda: f64 = kernels
                .iter()
                .map(|(taps, steps)| {
                    let per = taps[0] / u + taps[1] + taps[2] * u;
                    per.ln() * *steps as f64
                })
                .sum::<f64>()
                .exp();
            let mu: f64 = kernels
                .iter()
                .map(|(taps, steps)| (taps[0] + taps[1] + taps[2]).ln() * *steps as f64)
                .sum::<f64>()
                .exp();
            put + params.spot * lambda - params.strike * mu
        }
    })
}

fn kernel_spectrum(taps: &[f64; 3], n: usize) -> Vec<Complex64> {
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (m, &w) in taps.iter().enumerate() {
                acc += Complex64::cis(step * (k * m % n) as f64) * w;
            }
            acc
        })
        .collect()
}

/// Reference: dense backward induction with the same per-segment kernels.
pub fn price_european_term_naive(
    params: &OptionParams,
    segments: &[VolSegment],
    opt: OptionType,
) -> Result<f64> {
    // Reuse the fast path's kernel construction by recomputing it here.
    let params = params.validated()?;
    let t: usize = segments.iter().map(|s| s.steps).sum();
    let v_max = segments.iter().map(|s| s.volatility).fold(0.0, f64::max);
    let grid = BopmModel::new(OptionParams { volatility: v_max, ..params }, t)?;
    let dt = params.dt(t);
    let u = grid.up();
    let growth = ((params.rate - params.dividend_yield) * dt).exp();
    let discount = (-params.rate * dt).exp();
    let payoff_at = |j: i64| -> f64 {
        let price = params.spot * ((j - t as i64) as f64 * u.ln()).exp();
        OptionType::Put.payoff(price, params.strike)
    };
    let mut row: Vec<f64> = (0..=2 * t as i64).map(payoff_at).collect();
    // Walk segments backward from expiry: the *last* listed segment is the
    // one adjacent to expiry.
    for seg in segments.iter().rev() {
        let theta = (seg.volatility / v_max).powi(2);
        let target = (growth - 1.0) / theta + 1.0;
        let p = (target - 1.0 / u) / (u - 1.0 / u);
        let (k0, k1, k2) =
            (discount * theta * (1.0 - p), discount * (1.0 - theta), discount * theta * p);
        for _ in 0..seg.steps {
            row = (0..row.len() - 2)
                .map(|j| k0 * row[j] + k1 * row[j + 1] + k2 * row[j + 2])
                .collect();
        }
    }
    debug_assert_eq!(row.len(), 1);
    let put = row[0];
    Ok(match opt {
        OptionType::Put => put,
        OptionType::Call => {
            let fwd = params.spot * (-params.dividend_yield * params.expiry).exp()
                - params.strike * (-params.rate * params.expiry).exp();
            put + fwd
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;

    fn params() -> OptionParams {
        OptionParams::paper_defaults()
    }

    #[test]
    fn fft_matches_naive_reference() {
        let segs = [
            VolSegment { steps: 100, volatility: 0.15 },
            VolSegment { steps: 80, volatility: 0.30 },
            VolSegment { steps: 120, volatility: 0.22 },
        ];
        for opt in [OptionType::Put, OptionType::Call] {
            let fast = price_european_term_fft(&params(), &segs, opt).unwrap();
            let slow = price_european_term_naive(&params(), &segs, opt).unwrap();
            assert!(
                (fast - slow).abs() < 1e-7 * slow.abs().max(1.0),
                "{opt:?}: fft {fast} vs naive {slow}"
            );
        }
    }

    #[test]
    fn flat_term_structure_matches_black_scholes() {
        // One segment at constant vol must converge to plain Black–Scholes.
        let p = params();
        let segs = [VolSegment { steps: 4000, volatility: p.volatility }];
        let got = price_european_term_fft(&p, &segs, OptionType::Put).unwrap();
        let bs = analytic::black_scholes_price(&p, OptionType::Put).unwrap();
        assert!((got - bs).abs() < 2e-2, "term {got} vs BS {bs}");
    }

    #[test]
    fn matches_root_variance_flat_equivalent() {
        // A two-segment structure prices like a flat lattice at the
        // root-mean-square volatility (exactly true in the continuous limit).
        let p = params();
        let segs = [
            VolSegment { steps: 2000, volatility: 0.10 },
            VolSegment { steps: 2000, volatility: 0.28 },
        ];
        let rms = ((0.10f64.powi(2) + 0.28f64.powi(2)) / 2.0).sqrt();
        let term = price_european_term_fft(&p, &segs, OptionType::Put).unwrap();
        let flat =
            analytic::black_scholes_price(&OptionParams { volatility: rms, ..p }, OptionType::Put)
                .unwrap();
        assert!((term - flat).abs() < 5e-2 * flat, "term {term} vs flat-RMS {flat}");
    }

    #[test]
    fn more_volatile_tail_is_worth_more() {
        let p = params();
        let quiet = [VolSegment { steps: 400, volatility: 0.15 }];
        let loud = [
            VolSegment { steps: 200, volatility: 0.15 },
            VolSegment { steps: 200, volatility: 0.4 },
        ];
        let a = price_european_term_fft(&p, &quiet, OptionType::Put).unwrap();
        let b = price_european_term_fft(&p, &loud, OptionType::Put).unwrap();
        assert!(b > a, "extra vol must add value: {b} vs {a}");
    }

    #[test]
    fn rejects_empty_and_degenerate_segments() {
        assert!(price_european_term_fft(&params(), &[], OptionType::Put).is_err());
        let zero = [VolSegment { steps: 0, volatility: 0.2 }];
        assert!(price_european_term_fft(&params(), &zero, OptionType::Put).is_err());
        let neg = [VolSegment { steps: 10, volatility: -0.1 }];
        assert!(price_european_term_fft(&params(), &neg, OptionType::Put).is_err());
    }
}
