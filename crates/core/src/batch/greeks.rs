//! Batch-native finite-difference greeks.
//!
//! A full set of greeks is 8–9 repricings of *near-identical* contracts —
//! exactly the workload the batch layer is built for.  This module expresses
//! each contract's bump stencil (spot ±h and base for delta/gamma, vol ±h
//! for vega, rate bumps for rho, expiry ±h for theta) as
//! [`PricingRequest`]s, fans **all bumps for all contracts** through one
//! [`BatchPricer::price_batch`] call, and reassembles per-contract
//! [`Greeks`] from the returned prices:
//!
//! * every bump prices in parallel over the fork-join pool (a book of `n`
//!   contracts is one batch of `~9n` requests, not `n` serial ladders);
//! * ladders share the dedup/memo machinery — the base-parameter request of
//!   the rho fallback is the same request as gamma's centre point, bumped
//!   requests repeated across calls hit the memo, and two contracts that
//!   share a bumped neighbour price it once;
//! * the arithmetic is identical to the serial path, so
//!   [`crate::greeks::greeks_by_fd`] — now a batch-of-one facade over this
//!   module — returns bitwise-identical greeks.
//!
//! ```
//! use amopt_core::batch::{greeks, BatchPricer, ModelKind, PricingRequest};
//! use amopt_core::{EngineConfig, OptionParams, OptionType};
//!
//! let pricer = BatchPricer::new(EngineConfig::default());
//! let base = OptionParams::paper_defaults();
//! let book: Vec<PricingRequest> = (0..4)
//!     .map(|i| OptionParams { strike: 110.0 + 10.0 * i as f64, ..base })
//!     .map(|p| PricingRequest::american(ModelKind::Bopm, OptionType::Call, p, 256))
//!     .collect();
//! for g in greeks::greeks(&pricer, &book) {
//!     let g = g.unwrap();
//!     assert!(g.delta > 0.0 && g.delta < 1.0 && g.vega > 0.0);
//! }
//! ```

use crate::batch::{BatchPricer, PricingRequest};
use crate::error::Result;
use crate::greeks::{Greeks, BUMP_RATE, BUMP_SPOT, BUMP_TIME, BUMP_VOL, VOL_BUMP_FLOOR};
use crate::params::OptionParams;

/// The bump ladder of one contract: where its requests start in the fanned
/// batch, the bump widths, and whether rho got a symmetric down bump.
struct Ladder {
    start: usize,
    hs: f64,
    hv: f64,
    ht: f64,
    /// `false` when `rate < BUMP_RATE`: the down bump would leave the
    /// admissible domain, so rho is the documented one-sided forward
    /// difference against the base price.
    central_rho: bool,
}

impl Ladder {
    /// Number of requests the ladder occupies (base + 2 spot + 2 vol +
    /// 2 expiry + 1 or 2 rate).
    fn len(&self) -> usize {
        if self.central_rho {
            9
        } else {
            8
        }
    }
}

/// Builds the bump requests for `req` in the serial path's evaluation order:
/// spot up, base, spot down, vol up, vol down, rate up, (rate down), expiry
/// up, expiry down.
fn push_ladder(req: &PricingRequest, start: usize, out: &mut Vec<PricingRequest>) -> Ladder {
    let p = req.params;
    let bump = |params: OptionParams| PricingRequest { params, ..req.clone() };
    let hs = p.spot * BUMP_SPOT;
    let hv = p.volatility.max(VOL_BUMP_FLOOR) * BUMP_VOL;
    let ht = p.expiry * BUMP_TIME;
    let central_rho = p.rate >= BUMP_RATE;
    out.push(bump(OptionParams { spot: p.spot + hs, ..p }));
    out.push(req.clone());
    out.push(bump(OptionParams { spot: p.spot - hs, ..p }));
    out.push(bump(OptionParams { volatility: p.volatility + hv, ..p }));
    out.push(bump(OptionParams { volatility: p.volatility - hv, ..p }));
    out.push(bump(OptionParams { rate: p.rate + BUMP_RATE, ..p }));
    if central_rho {
        out.push(bump(OptionParams { rate: p.rate - BUMP_RATE, ..p }));
    }
    out.push(bump(OptionParams { expiry: p.expiry + ht, ..p }));
    out.push(bump(OptionParams { expiry: p.expiry - ht, ..p }));
    Ladder { start, hs, hv, ht, central_rho }
}

/// Reassembles one contract's [`Greeks`] from its ladder's prices,
/// propagating the first error in the serial path's evaluation order.
fn assemble(ladder: &Ladder, prices: &[Result<f64>]) -> Result<Greeks> {
    let at = |i: usize| -> Result<f64> { prices[ladder.start + i].clone() };
    let s_up = at(0)?;
    let mid = at(1)?;
    let s_dn = at(2)?;
    let delta = (s_up - s_dn) / (2.0 * ladder.hs);
    let gamma = (s_up - 2.0 * mid + s_dn) / (ladder.hs * ladder.hs);
    let v_up = at(3)?;
    let v_dn = at(4)?;
    let vega = (v_up - v_dn) / (2.0 * ladder.hv);
    let r_up = at(5)?;
    let (rho, time_base) = if ladder.central_rho {
        ((r_up - at(6)?) / (2.0 * BUMP_RATE), 7)
    } else {
        // One-sided forward difference against the base price — which the
        // batch deduplicated onto gamma's centre request, exactly the value
        // the serial path recomputes.  See `Greeks::rho`.
        ((r_up - mid) / BUMP_RATE, 6)
    };
    let e_up = at(time_base)?;
    let e_dn = at(time_base + 1)?;
    let theta = -(e_up - e_dn) / (2.0 * ladder.ht);
    debug_assert_eq!(time_base + 2, ladder.len());
    Ok(Greeks { delta, gamma, theta, vega, rho })
}

/// Finite-difference greeks for every contract in `requests`, all bumps
/// fanned through `pricer` as **one batch**.
///
/// Returns one `Result` per input contract, order-preserving.  A contract
/// with invalid base parameters, or whose bumped neighbours fail to price
/// (e.g. an unstable discretisation at `volatility − h`), gets the error in
/// its own slot; the rest of the book is unaffected.  Works for any
/// [`PricingRequest`] the batch layer routes — model × call/put × exercise
/// style — since the ladder only rewrites `params`.
pub fn greeks(pricer: &BatchPricer, requests: &[PricingRequest]) -> Vec<Result<Greeks>> {
    // Build every ladder first (validation errors short-circuit without
    // submitting bumps), then price all of them in a single batch.
    let mut bumps: Vec<PricingRequest> = Vec::with_capacity(9 * requests.len());
    let ladders: Vec<Result<Ladder>> = requests
        .iter()
        .map(|req| {
            req.params.validated()?;
            Ok(push_ladder(req, bumps.len(), &mut bumps))
        })
        .collect();
    let prices = pricer.price_batch(&bumps);
    ladders.into_iter().map(|ladder| assemble(&ladder?, &prices)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ModelKind;
    use crate::engine::EngineConfig;
    use crate::params::{OptionParams, OptionType};

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    #[test]
    fn batch_of_one_matches_the_serial_facade_bitwise() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let req = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 400);
        let batch = greeks(&pricer, std::slice::from_ref(&req)).pop().unwrap().unwrap();
        let serial =
            crate::greeks::american_call_bopm(&p(), 400, &EngineConfig::default()).unwrap();
        for (a, b) in [
            (batch.delta, serial.delta),
            (batch.gamma, serial.gamma),
            (batch.theta, serial.theta),
            (batch.vega, serial.vega),
            (batch.rho, serial.rho),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{batch:?} vs {serial:?}");
        }
    }

    #[test]
    fn rate_below_bump_takes_the_shorter_one_sided_ladder() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let zero_rate = OptionParams { rate: 0.0, ..p() };
        let book = vec![
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, zero_rate, 200),
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 200),
        ];
        let out = greeks(&pricer, &book);
        assert!(out.iter().all(Result::is_ok));
        // 8 bumps for the zero-rate ladder + 9 for the central one, all
        // distinct (different rates everywhere).
        assert_eq!(pricer.memo_stats().misses, 17);
        assert!(out[0].as_ref().unwrap().rho.is_finite());
    }

    #[test]
    fn invalid_contract_gets_its_own_error_and_prices_nothing() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let bad = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { spot: -3.0, ..p() },
            64,
        );
        let good = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 64);
        let out = greeks(&pricer, &[bad, good]);
        assert!(out[0].is_err());
        assert!(out[1].is_ok());
        // Only the good contract's 9 bumps were submitted.
        assert_eq!(pricer.memo_stats().misses, 9);
    }

    #[test]
    fn ladders_share_bumped_neighbours_through_dedup() {
        // Two contracts whose spot bumps collide: 100*(1+1e-2) == 102*(1-1e-2)
        // would need matching spots; instead just submit the same contract
        // twice — the whole second ladder must dedup onto the first.
        let pricer = BatchPricer::new(EngineConfig::default());
        let req = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 128);
        let out = greeks(&pricer, &[req.clone(), req]);
        assert_eq!(pricer.memo_stats().misses, 9);
        let (a, b) = (out[0].as_ref().unwrap(), out[1].as_ref().unwrap());
        assert_eq!(a.delta.to_bits(), b.delta.to_bits());
        assert_eq!(a.gamma.to_bits(), b.gamma.to_bits());
    }
}
