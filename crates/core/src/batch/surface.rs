//! Batch-native implied-volatility surface inversion.
//!
//! A K-strike × T-maturity quote surface is `K·T` independent root-finding
//! problems, each probing the lattice pricer a dozen-plus times.  The serial
//! path ([`crate::implied_vol::american_call_bopm`]) inverts one quote at a
//! time, one probe at a time; this module drives **all quotes' bracketing
//! and root rounds in lockstep**, submitting the current probe of every
//! unresolved quote as one [`BatchPricer::price_batch`] call per round:
//!
//! * every probe in a round prices in parallel over the fork-join pool and
//!   through the sharded memo, so the surface inverts with full
//!   parallelism instead of quote-at-a-time;
//! * identical quotes (bid/ask pairs, the same contract quoted across
//!   accounts) advance through identical probe sequences, so their probes
//!   deduplicate in-batch and re-quoted surfaces are served from the memo;
//! * per quote, the root phase runs **Newton with a lattice vega**: each
//!   round prices the candidate volatility *and* a bumped neighbour (the
//!   greeks ladder's finite-difference vega, one extra pricing), and the
//!   Newton step `σ − f/vega` replaces the next probe whenever it lands
//!   strictly inside the bracket.  The **bracket-guarded Illinois
//!   (false-position) iteration** remains as the fallback — flat vega, a
//!   Newton step outside the bracket, or a failed bump probe all degrade
//!   gracefully to the previous behaviour.  Same bracketing walk, same
//!   attainability checks, same `|price − quote| < PRICE_TOL` acceptance as
//!   the serial inversion, but quadratic convergence: fewer root rounds and
//!   fewer total lattice pricings per quote than Illinois alone;
//! * quotes may be **calls or puts**: puts invert over the fast left-cone
//!   engine (`bopm::fast::price_american_put`) under the identical search
//!   interval, tolerance, and error contract;
//! * every quote gets its own `Result`: an unattainable or zero-vega quote
//!   errors in its own slot exactly like the serial inversion
//!   (`InvalidParams` / `NoConvergence`) and never poisons the surface.
//!
//! ```
//! use amopt_core::batch::{surface, BatchPricer};
//! use amopt_core::bopm::{fast, BopmModel};
//! use amopt_core::{EngineConfig, OptionParams};
//!
//! let cfg = EngineConfig::default();
//! let base = OptionParams::paper_defaults();
//! // Quote two strikes off a known 25%-vol market.
//! let quotes: Vec<surface::VolQuote> = [120.0, 140.0]
//!     .iter()
//!     .map(|&strike| {
//!         let p = OptionParams { strike, volatility: 0.25, ..base };
//!         let market = fast::price_american_call(&BopmModel::new(p, 256).unwrap(), &cfg);
//!         surface::VolQuote::new(p, 256, market)
//!     })
//!     .collect();
//! let pricer = BatchPricer::new(cfg);
//! for vol in surface::implied_vol_surface(&pricer, &quotes) {
//!     assert!((vol.unwrap() - 0.25).abs() < 1e-6);
//! }
//! ```

use crate::batch::{BatchPricer, ModelKind, PricingRequest};
use crate::error::{PricingError, Result};
use crate::greeks::{BUMP_VOL, VOL_BUMP_FLOOR};
use crate::implied_vol::{stability_seed, MAX_ITERS, PRICE_TOL, VOL_HI, VOL_LO};
use crate::params::{OptionParams, OptionType};

/// Attainability slack on the bracket endpoints, matching the serial
/// inversion: quotes within this of the zero-/huge-vol limits are accepted
/// into the root search rather than rejected outright.
const RANGE_SLACK: f64 = 1e-9;

/// Bracket width below which the search is declared collapsed (serial
/// inversion's `hi - lo < 1e-12`).
const BRACKET_EPS: f64 = 1e-12;

/// One implied-volatility quote: the contract, call or put, its lattice
/// resolution, and the observed market price to invert.
///
/// The driver prices American contracts under the binomial lattice — calls
/// through the same pricer the serial
/// [`crate::implied_vol::american_call_bopm`] bisects over, puts through
/// the fast left-cone engine.  The `volatility` field of `params` is *not*
/// used as data (every probe overwrites it); it only has to be positive so
/// the parameters validate.
#[derive(Debug, Clone, PartialEq)]
pub struct VolQuote {
    /// Contract/market parameters; `volatility` is ignored (see above).
    pub params: OptionParams,
    /// Call or put (both invert over their fast American BOPM pricer).
    pub option_type: OptionType,
    /// Lattice time steps for every probe pricing.
    pub steps: usize,
    /// Observed market price to invert.
    pub market_price: f64,
}

impl VolQuote {
    /// A quote for the American BOPM **call** at `params` priced on a
    /// `steps`-step lattice.
    pub fn new(params: OptionParams, steps: usize, market_price: f64) -> Self {
        VolQuote { params, option_type: OptionType::Call, steps, market_price }
    }

    /// A quote for the American BOPM **put** at `params` priced on a
    /// `steps`-step lattice.
    pub fn put(params: OptionParams, steps: usize, market_price: f64) -> Self {
        VolQuote { params, option_type: OptionType::Put, steps, market_price }
    }
}

/// Volatility bump width of the per-round lattice vega: the greeks ladder's
/// policy (relative bump, floored so deep-low-vol candidates still get a
/// resolvable width).
fn vega_bump(vol: f64) -> f64 {
    vol.max(VOL_BUMP_FLOOR) * BUMP_VOL
}

/// Residual magnitude below which the driver stops buying vega bumps: with
/// `|price − quote|` this small the last probe sits within a few Newton
/// digits of the root, the bracket endpoint it replaced *is* that probe, and
/// the Illinois secant through the endpoints converges as fast as Newton
/// would — so the extra pricing per round no longer pays.
const NEWTON_ENDGAME: f64 = 1e-5;

/// Live bracket of one quote's root iteration (Newton with a lattice vega,
/// Illinois as the bracket-guarded fallback).
#[derive(Debug, Clone, Copy)]
struct Bracket {
    lo: f64,
    hi: f64,
    /// Residual `price(lo) − market` (≤ 0 for monotone attainable quotes).
    f_lo: f64,
    /// Residual `price(hi) − market`.
    f_hi: f64,
    /// Volatility probed this round.
    pending: f64,
    /// Root probes spent so far.
    iters: usize,
    /// Which endpoint the previous probe replaced: −1 = `lo`, +1 = `hi`,
    /// 0 = none yet.  Two consecutive same-side replacements trigger the
    /// Illinois halving of the stale endpoint's residual.
    last_side: i8,
    /// `|price − quote|` of the most recent probe (∞ before the first);
    /// gates the vega bump via [`NEWTON_ENDGAME`].
    last_abs_f: f64,
}

impl Bracket {
    /// Next probe volatility: the false-position point when it falls
    /// strictly inside the bracket, the midpoint otherwise (degenerate or
    /// flat residuals make the secant step useless, and the midpoint
    /// fallback recovers plain bisection's robustness).
    fn candidate(&self) -> f64 {
        let x = (self.lo * self.f_hi - self.hi * self.f_lo) / (self.f_hi - self.f_lo);
        if x.is_finite() && x > self.lo && x < self.hi {
            x
        } else {
            0.5 * (self.lo + self.hi)
        }
    }
}

/// Per-quote state machine; each non-`Done` state probes exactly one
/// volatility per round.
#[derive(Debug)]
enum State {
    /// Walking the lower bracket endpoint up past unstable discretisations.
    /// Seeded at the closed-form stability floor
    /// ([`crate::bopm::BopmModel::min_stable_volatility`]), so the walk is
    /// normally a single probe, with the doubling fallback covering
    /// edge-of-threshold rounding.  Unstable outcomes are shared across a
    /// strike ladder *by construction*: stability depends only on
    /// `(rate, dividend, expiry, steps, vol)`, the seed is a pure function
    /// of that key, so every same-key quote walks the identical vol
    /// sequence in lockstep — each round's probes collapse to one lattice
    /// pricing in-batch, and one quote's `UnstableDiscretisation` advances
    /// all of them together.  No cross-quote cache is needed.
    WalkLo { lo: f64 },
    /// Lower endpoint priced; probing the upper endpoint `VOL_HI`.
    ProbeHi { lo: f64, p_lo: f64 },
    /// Bracket established; Illinois iteration in progress.
    Root(Bracket),
    /// Resolved (volatility or error).
    Done(Result<f64>),
}

impl State {
    /// The volatility this state wants priced this round, if any.
    fn probe_vol(&self) -> Option<f64> {
        match self {
            State::WalkLo { lo } => Some(*lo),
            State::ProbeHi { .. } => Some(VOL_HI),
            State::Root(b) => Some(b.pending),
            State::Done(_) => None,
        }
    }

    /// The bumped companion volatility for this round's lattice vega, if
    /// the state is in the root phase and still far enough from the root
    /// that a Newton step beats the Illinois secant (the bracketing walk
    /// needs no vega; the endgame spends one pricing per round, not two).
    fn bump_vol(&self) -> Option<f64> {
        match self {
            State::Root(b) if b.last_abs_f >= NEWTON_ENDGAME => {
                Some(b.pending + vega_bump(b.pending))
            }
            _ => None,
        }
    }
}

fn no_bracket_error(steps: usize, reason: &str) -> PricingError {
    PricingError::InvalidParams {
        field: "steps",
        reason: format!(
            "no stable lattice discretisation for any volatility in [{VOL_LO}, {VOL_HI}] at \
             steps = {steps}: {reason}"
        ),
    }
}

fn unattainable_error(market_price: f64, p_lo: f64, p_hi: f64) -> PricingError {
    PricingError::InvalidParams {
        field: "market_price",
        reason: format!("price {market_price} outside attainable range [{p_lo:.6}, {p_hi:.6}]"),
    }
}

/// Enters the root phase once both bracket endpoints are priced, resolving
/// immediately when an endpoint already reproduces the quote or the quote
/// is unattainable.
fn enter_root(quote: &VolQuote, lo: f64, p_lo: f64, hi: f64, p_hi: f64) -> State {
    let m = quote.market_price;
    if m < p_lo - RANGE_SLACK || m > p_hi + RANGE_SLACK {
        return State::Done(Err(unattainable_error(m, p_lo, p_hi)));
    }
    if (p_lo - m).abs() < PRICE_TOL {
        return State::Done(Ok(lo));
    }
    if (p_hi - m).abs() < PRICE_TOL {
        return State::Done(Ok(hi));
    }
    if hi - lo < BRACKET_EPS {
        // Degenerate bracket (the stability walk consumed the whole
        // interval) with residual above tolerance: nothing to iterate on.
        return State::Done(Err(PricingError::NoConvergence {
            what: "American implied volatility (bracket collapsed with residual above \
                   tolerance: near-zero vega)",
            iterations: 0,
        }));
    }
    let mut bracket = Bracket {
        lo,
        hi,
        f_lo: p_lo - m,
        f_hi: p_hi - m,
        pending: 0.0,
        iters: 0,
        last_side: 0,
        last_abs_f: f64::INFINITY,
    };
    bracket.pending = bracket.candidate();
    State::Root(bracket)
}

/// Advances one quote's state with this round's probe result(s).  `bump` is
/// the bumped companion probe (root phase only); a failed or missing bump
/// never kills the quote — it only forfeits the Newton step for this round.
fn advance(state: State, quote: &VolQuote, probe: Result<f64>, bump: Option<Result<f64>>) -> State {
    match state {
        State::WalkLo { lo } => match probe {
            Ok(p_lo) if lo >= VOL_HI => enter_root(quote, lo, p_lo, lo, p_lo),
            Ok(p_lo) => State::ProbeHi { lo, p_lo },
            Err(PricingError::UnstableDiscretisation { reason }) => {
                if lo >= VOL_HI {
                    // Even the top of the search interval is unstable: no
                    // bracket exists at these parameters and step count.
                    State::Done(Err(no_bracket_error(quote.steps, &reason)))
                } else {
                    State::WalkLo { lo: (lo * 2.0).min(VOL_HI) }
                }
            }
            Err(e) => State::Done(Err(e)),
        },
        State::ProbeHi { lo, p_lo } => match probe {
            Ok(p_hi) => enter_root(quote, lo, p_lo, VOL_HI, p_hi),
            Err(e) => State::Done(Err(e)),
        },
        State::Root(mut b) => {
            let p = match probe {
                Ok(p) => p,
                Err(e) => return State::Done(Err(e)),
            };
            let f = p - quote.market_price;
            if f.abs() < PRICE_TOL {
                return State::Done(Ok(b.pending));
            }
            b.last_abs_f = f.abs();
            b.iters += 1;
            if b.iters >= MAX_ITERS {
                return State::Done(Err(PricingError::NoConvergence {
                    what: "American implied volatility (surface)",
                    iterations: MAX_ITERS,
                }));
            }
            // Width check *before* the bracket update, mirroring the serial
            // bisection: give up only once a probe *inside* an
            // already-collapsed bracket has missed the tolerance.  (Checking
            // the post-update width instead would abandon quotes whose
            // bracket shrinks straight past the threshold in one step —
            // acceptance needs a probe within ~PRICE_TOL/vega of the root,
            // which for liquid contracts is only a few times BRACKET_EPS.)
            if b.hi - b.lo < BRACKET_EPS {
                // The bracket is exhausted but the residual is still above
                // tolerance — the quote sits where the price barely responds
                // to volatility, so answering a point of the flat region
                // would be arbitrary.
                return State::Done(Err(PricingError::NoConvergence {
                    what: "American implied volatility (bracket collapsed with residual above \
                           tolerance: near-zero vega)",
                    iterations: b.iters,
                }));
            }
            // Prices are nondecreasing in volatility: a positive residual
            // means the root lies below the probe.
            if f > 0.0 {
                if b.last_side == 1 {
                    b.f_lo *= 0.5;
                }
                b.hi = b.pending;
                b.f_hi = f;
                b.last_side = 1;
            } else {
                if b.last_side == -1 {
                    b.f_hi *= 0.5;
                }
                b.lo = b.pending;
                b.f_lo = f;
                b.last_side = -1;
            }
            // Newton step from the lattice vega when the bump probe priced
            // and the step lands strictly inside the updated bracket;
            // otherwise the Illinois/bisection candidate (flat vega, an
            // out-of-bracket step, and a failed bump all fall back here).
            let newton = bump.and_then(|r| r.ok()).and_then(|p_up| {
                let vega = (p_up - p) / vega_bump(b.pending);
                let x = b.pending - f / vega;
                (vega > 0.0 && x.is_finite() && x > b.lo && x < b.hi).then_some(x)
            });
            b.pending = newton.unwrap_or_else(|| b.candidate());
            State::Root(b)
        }
        State::Done(_) => state,
    }
}

/// The lattice pricing behind one probe: the quote's contract with the
/// probe volatility substituted in.
fn probe_request(quote: &VolQuote, vol: f64) -> PricingRequest {
    PricingRequest::american(
        ModelKind::Bopm,
        quote.option_type,
        OptionParams { volatility: vol, ..quote.params },
        quote.steps,
    )
}

/// Inverts every quote of an implied-volatility surface through `pricer`,
/// one batch per lockstep round.
///
/// Returns one `Result` per quote, order-preserving: the volatility whose
/// American BOPM call (or put) price reproduces `market_price` to within
/// the serial inversion's tolerance, or the same error classes the serial
/// [`crate::implied_vol::american_call_bopm`] reports (`InvalidParams` for
/// bad contracts and unattainable quotes, `NoConvergence` for zero-vega
/// quotes).  Each round submits the current probe of every unresolved quote
/// (plus a bumped companion for the lattice-vega Newton step once a bracket
/// exists) as a single batch, so probes price in parallel and shared probes
/// deduplicate across quotes.
pub fn implied_vol_surface(pricer: &BatchPricer, quotes: &[VolQuote]) -> Vec<Result<f64>> {
    let mut states: Vec<State> = quotes
        .iter()
        .map(|q| match q.params.validated() {
            Ok(_) => State::WalkLo { lo: stability_seed(&q.params, q.steps) },
            Err(e) => State::Done(Err(e)),
        })
        .collect();
    loop {
        // Gather this round's probes: one per unresolved quote, plus the
        // bumped vega companion for quotes in the root phase.
        let mut who: Vec<(usize, bool)> = Vec::new();
        let mut probes: Vec<PricingRequest> = Vec::new();
        for (i, state) in states.iter().enumerate() {
            if let Some(vol) = state.probe_vol() {
                probes.push(probe_request(&quotes[i], vol));
                let bump = state.bump_vol();
                if let Some(bv) = bump {
                    probes.push(probe_request(&quotes[i], bv));
                }
                who.push((i, bump.is_some()));
            }
        }
        if probes.is_empty() {
            break;
        }
        let mut prices = pricer.price_batch(&probes).into_iter();
        for (i, has_bump) in who {
            let main = prices.next().expect("one result per probe");
            let bump = has_bump.then(|| prices.next().expect("one result per probe"));
            let state = std::mem::replace(&mut states[i], State::Done(Ok(f64::NAN)));
            states[i] = advance(state, &quotes[i], main, bump);
        }
    }
    states
        .into_iter()
        .map(|s| match s {
            State::Done(r) => r,
            _ => unreachable!("loop exits only when every quote is resolved"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bopm::{fast, BopmModel};
    use crate::engine::EngineConfig;
    use crate::implied_vol;

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    fn quote_at(params: OptionParams, true_vol: f64, steps: usize) -> VolQuote {
        let cfg = EngineConfig::default();
        let priced = OptionParams { volatility: true_vol, ..params };
        let market = fast::price_american_call(&BopmModel::new(priced, steps).unwrap(), &cfg);
        VolQuote::new(params, steps, market)
    }

    #[test]
    fn surface_roundtrips_and_agrees_with_the_serial_inversion() {
        let cfg = EngineConfig::default();
        let pricer = BatchPricer::new(cfg);
        let mut quotes = Vec::new();
        let mut true_vols = Vec::new();
        for (i, &strike) in [110.0, 130.0, 150.0].iter().enumerate() {
            for (j, &expiry) in [0.5, 1.0].iter().enumerate() {
                let vol = 0.15 + 0.05 * i as f64 + 0.03 * j as f64;
                quotes.push(quote_at(OptionParams { strike, expiry, ..p() }, vol, 200));
                true_vols.push(vol);
            }
        }
        let got = implied_vol_surface(&pricer, &quotes);
        for ((q, res), want) in quotes.iter().zip(&got).zip(&true_vols) {
            let vol = res.as_ref().unwrap();
            assert!(
                (vol - want).abs() < 1e-6,
                "K={} E={}: {vol} vs {want}",
                q.params.strike,
                q.params.expiry
            );
            let serial =
                implied_vol::american_call_bopm(&q.params, q.steps, q.market_price, &cfg).unwrap();
            assert!((vol - serial).abs() < 1e-6, "surface {vol} vs serial {serial}");
        }
    }

    #[test]
    fn surface_uses_far_fewer_probes_than_serial_bisection() {
        // The memo-miss count *is* the number of lattice pricings.  Serial
        // bisection spends ~50 per quote; Illinois alone took ~14; the
        // Newton-with-vega driver (2 pricings per root round, quadratic
        // convergence) must land well below Illinois even counting its bump
        // probes.
        let pricer = BatchPricer::new(EngineConfig::default());
        let quotes: Vec<VolQuote> = [100.0, 120.0, 140.0]
            .iter()
            .map(|&k| quote_at(OptionParams { strike: k, ..p() }, 0.3, 128))
            .collect();
        let out = implied_vol_surface(&pricer, &quotes);
        assert!(out.iter().all(Result::is_ok));
        let probes_per_quote = pricer.memo_stats().misses as f64 / quotes.len() as f64;
        assert!(
            probes_per_quote < 12.0,
            "expected < 12 pricings per quote, got {probes_per_quote}"
        );
    }

    fn put_quote_at(params: OptionParams, true_vol: f64, steps: usize) -> VolQuote {
        let cfg = EngineConfig::default();
        let priced = OptionParams { volatility: true_vol, ..params };
        let market = fast::price_american_put(&BopmModel::new(priced, steps).unwrap(), &cfg);
        VolQuote::put(params, steps, market)
    }

    #[test]
    fn put_quotes_roundtrip_through_the_left_cone_engine() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let mut quotes = Vec::new();
        let mut want = Vec::new();
        for (i, &strike) in [110.0, 130.0, 150.0].iter().enumerate() {
            let vol = 0.18 + 0.05 * i as f64;
            quotes.push(put_quote_at(OptionParams { strike, ..p() }, vol, 200));
            want.push(vol);
        }
        let got = implied_vol_surface(&pricer, &quotes);
        for ((q, res), want) in quotes.iter().zip(&got).zip(&want) {
            let vol = res.as_ref().unwrap_or_else(|e| panic!("K={}: {e}", q.params.strike));
            assert!((vol - want).abs() < 1e-6, "K={}: {vol} vs {want}", q.params.strike);
        }
    }

    #[test]
    fn mixed_call_put_surface_resolves_every_slot() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let quotes = vec![
            quote_at(p(), 0.22, 128),
            put_quote_at(p(), 0.22, 128),
            quote_at(OptionParams { strike: 110.0, ..p() }, 0.3, 128),
            put_quote_at(OptionParams { strike: 150.0, ..p() }, 0.27, 128),
        ];
        let out = implied_vol_surface(&pricer, &quotes);
        for (q, res) in quotes.iter().zip(&out) {
            let vol = res.as_ref().unwrap_or_else(|e| panic!("{q:?}: {e}"));
            assert!(*vol > 0.1 && *vol < 0.5, "{q:?}: {vol}");
        }
    }

    #[test]
    fn unattainable_put_quote_errors_in_its_own_slot() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let good = put_quote_at(p(), 0.2, 128);
        let huge = VolQuote::put(p(), 128, p().strike * 10.0);
        let out = implied_vol_surface(&pricer, &[good, huge]);
        assert!(out[0].is_ok(), "{:?}", out[0]);
        assert!(matches!(&out[1], Err(PricingError::InvalidParams { .. })), "{:?}", out[1]);
    }

    #[test]
    fn duplicate_quotes_dedup_their_entire_probe_sequence() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let q = quote_at(p(), 0.25, 128);
        let single = implied_vol_surface(&pricer, std::slice::from_ref(&q));
        let probes_single = pricer.memo_stats().misses;
        // A fresh pricer sees the same quote four times: identical states
        // advance identically, so every round's four probes collapse to one.
        let pricer = BatchPricer::new(EngineConfig::default());
        let out = implied_vol_surface(&pricer, &vec![q.clone(); 4]);
        assert_eq!(pricer.memo_stats().misses, probes_single);
        for res in &out {
            assert_eq!(res.as_ref().unwrap().to_bits(), single[0].as_ref().unwrap().to_bits());
        }
    }

    #[test]
    fn rejects_unattainable_quotes_per_slot() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let good = quote_at(p(), 0.2, 128);
        let negative = VolQuote::new(p(), 128, -5.0);
        let huge = VolQuote::new(p(), 128, p().spot * 10.0);
        let invalid = VolQuote::new(OptionParams { spot: -1.0, ..p() }, 128, 5.0);
        let out = implied_vol_surface(&pricer, &[good, negative, huge, invalid]);
        assert!(out[0].is_ok());
        for res in &out[1..] {
            assert!(matches!(res, Err(PricingError::InvalidParams { .. })), "{res:?}");
        }
    }

    #[test]
    fn near_zero_vega_quote_is_no_convergence() {
        // Same scenario as the serial test: deep ITM with heavy dividends,
        // price is S − K for every stable volatility.  A quote offset from
        // the flat region by less than the attainability slack must come
        // back NoConvergence, not an arbitrary point of the flat region.
        let params = OptionParams { spot: 10_000.0, strike: 1.0, dividend_yield: 0.3, ..p() };
        let pricer = BatchPricer::new(EngineConfig::default());
        let intrinsic = params.spot - params.strike;
        let out = implied_vol_surface(&pricer, &[VolQuote::new(params, 64, intrinsic + 5e-10)]);
        assert!(matches!(out[0], Err(PricingError::NoConvergence { .. })), "{:?}", out[0]);
        // The exactly-attainable quote still inverts (flat region endpoint).
        let out = implied_vol_surface(&pricer, &[VolQuote::new(params, 64, intrinsic)]);
        assert!(out[0].is_ok(), "{:?}", out[0]);
    }

    #[test]
    fn no_stable_bracket_is_a_clear_invalid_params_error() {
        // R = 6 with one step: unstable across the whole volatility
        // interval (see the serial test of the same name).
        let params = OptionParams { rate: 6.0, dividend_yield: 0.0, ..p() };
        let pricer = BatchPricer::new(EngineConfig::default());
        let out = implied_vol_surface(&pricer, &[VolQuote::new(params, 1, 10.0)]);
        assert!(
            matches!(&out[0], Err(PricingError::InvalidParams { field: "steps", .. })),
            "{:?}",
            out[0]
        );
    }

    #[test]
    fn stability_seed_cuts_the_low_vol_walk_to_one_probe() {
        // Y = 0.3 at 64 steps: volatilities below ≈ 0.0375 are unstable.
        // The closed-form seed starts the bracket above the floor, so no
        // lattice pricing is spent probing unstable discretisations (the old
        // walk burned ~9 doubling probes per quote here).
        let params = OptionParams { dividend_yield: 0.3, ..p() };
        let seed = stability_seed(&params, 64);
        assert!(seed > VOL_LO, "floor must bind for this contract");
        assert!(
            crate::bopm::BopmModel::new(OptionParams { volatility: seed, ..params }, 64).is_ok(),
            "the seed itself must be a stable first probe"
        );
        let pricer = BatchPricer::new(EngineConfig::default());
        let q = quote_at(params, 0.8, 64);
        let out = implied_vol_surface(&pricer, &[q]);
        assert!((out[0].as_ref().unwrap() - 0.8).abs() < 1e-6, "{:?}", out[0]);
        let misses = pricer.memo_stats().misses;
        assert!(misses <= 20, "expected bracket + root probes only, got {misses}");
    }

    #[test]
    fn bracket_walk_recovers_when_only_low_vols_are_unstable() {
        // Y = 0.3 makes volatilities below ≈ 0.0375 unstable at 64 steps.
        let params = OptionParams { dividend_yield: 0.3, ..p() };
        let pricer = BatchPricer::new(EngineConfig::default());
        let q = quote_at(params, 0.8, 64);
        let out = implied_vol_surface(&pricer, &[q]);
        assert!((out[0].as_ref().unwrap() - 0.8).abs() < 1e-6, "{:?}", out[0]);
    }
}
