//! Batch-native early-exercise boundary extraction.
//!
//! Boundary curves ride the same orchestration pattern as prices
//! ([`crate::batch`]) and surfaces ([`super::surface`]): requests normalise
//! and **deduplicate**, unique jobs fan out in parallel over the
//! `amopt-parallel` pool (each job is one fast-engine pricing pass that
//! tracks the red–green divider as it goes), and every input slot gets its
//! own `Result` — one invalid contract never poisons the rest.  This
//! replaces the serial per-contract loop callers previously wrote around
//! [`crate::exercise_boundary`].
//!
//! Curves are not memoized: a boundary is a whole sampled frontier, not a
//! quantised scalar, and re-extractions are rare compared to re-quotes.
//!
//! ```
//! use amopt_core::batch::boundary::{exercise_boundaries, BoundaryRequest};
//! use amopt_core::batch::{BatchPricer, ModelKind};
//! use amopt_core::{EngineConfig, OptionParams, OptionType};
//!
//! let pricer = BatchPricer::new(EngineConfig::default());
//! let base = OptionParams::paper_defaults();
//! let book: Vec<BoundaryRequest> = [OptionType::Call, OptionType::Put]
//!     .into_iter()
//!     .map(|ty| BoundaryRequest::new(ModelKind::Bopm, ty, base, 512, 16))
//!     .collect();
//! for frontier in exercise_boundaries(&pricer, &book) {
//!     assert!(!frontier.unwrap().is_empty());
//! }
//! ```

use crate::batch::{BatchPricer, ModelKind};
use crate::bopm::BopmModel;
use crate::bsm::BsmModel;
use crate::error::Result;
use crate::exercise_boundary::{self, BoundaryPoint};
use crate::params::{OptionParams, OptionType};
use crate::topm::TopmModel;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One early-exercise frontier to extract: contract plus the number of
/// roughly equally spaced time samples wanted along the curve.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryRequest {
    /// Discretisation family.
    pub model: ModelKind,
    /// Call or put (American exercise is implied — European contracts have
    /// no early-exercise frontier).
    pub option_type: OptionType,
    /// Market/contract parameters.
    pub params: OptionParams,
    /// Lattice/grid time steps `T`.
    pub steps: usize,
    /// Requested number of frontier samples (the extractors may return a
    /// couple more: expiry and the first engine row are always included).
    pub samples: usize,
}

impl BoundaryRequest {
    /// A frontier request for the American contract `model` × `option_type`.
    pub fn new(
        model: ModelKind,
        option_type: OptionType,
        params: OptionParams,
        steps: usize,
        samples: usize,
    ) -> Self {
        BoundaryRequest { model, option_type, params, steps, samples }
    }
}

fn route(req: &BoundaryRequest, pricer: &BatchPricer) -> Result<Vec<BoundaryPoint>> {
    let cfg = pricer.engine_config();
    match (req.model, req.option_type) {
        (ModelKind::Bopm, OptionType::Call) => {
            let model = BopmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::bopm_call_boundary(&model, cfg, req.samples))
        }
        (ModelKind::Bopm, OptionType::Put) => {
            let model = BopmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::bopm_put_boundary(&model, cfg, req.samples))
        }
        (ModelKind::Topm, OptionType::Call) => {
            let model = TopmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::topm_call_boundary(&model, cfg, req.samples))
        }
        (ModelKind::Topm, OptionType::Put) => {
            let model = TopmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::topm_put_boundary(&model, cfg, req.samples))
        }
        (ModelKind::Bsm, OptionType::Put) => {
            let model = BsmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::bsm_put_boundary(&model, cfg, req.samples))
        }
        (ModelKind::Bsm, OptionType::Call) => {
            let model = BsmModel::new(req.params, req.steps)?;
            Ok(exercise_boundary::bsm_call_boundary(&model, cfg, req.samples))
        }
    }
}

/// Normalised identity of a boundary request, for in-batch deduplication.
/// Bit-exact parameter identity is enough here (no memo lives across
/// batches, so there is no float-noise folding to do).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JobKey {
    model: ModelKind,
    option_type: OptionType,
    steps: usize,
    samples: usize,
    param_bits: [u64; 6],
}

fn job_key(req: &BoundaryRequest) -> JobKey {
    let p = &req.params;
    JobKey {
        model: req.model,
        option_type: req.option_type,
        steps: req.steps,
        samples: req.samples,
        param_bits: [
            p.spot.to_bits(),
            p.strike.to_bits(),
            p.rate.to_bits(),
            p.volatility.to_bits(),
            p.dividend_yield.to_bits(),
            p.expiry.to_bits(),
        ],
    }
}

/// Extracts every requested early-exercise frontier through `pricer`'s
/// engine configuration: dedup → parallel fan-out → scatter, one `Result`
/// per input slot (order-preserving).
pub fn exercise_boundaries(
    pricer: &BatchPricer,
    requests: &[BoundaryRequest],
) -> Vec<Result<Vec<BoundaryPoint>>> {
    // Phase 1 (serial): dedup identical requests into unique jobs.
    let mut unique: HashMap<JobKey, usize> = HashMap::new();
    let mut jobs: Vec<usize> = Vec::new();
    let mut assignment = Vec::with_capacity(requests.len());
    for (i, req) in requests.iter().enumerate() {
        let slot = match unique.entry(job_key(req)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let slot = jobs.len();
                jobs.push(i);
                v.insert(slot);
                slot
            }
        };
        assignment.push(slot);
    }
    // Phase 2 (parallel): one boundary-tracking pricing pass per unique job.
    let extracted =
        amopt_parallel::parallel_map(jobs.len(), 1, |k| Some(route(&requests[jobs[k]], pricer)));
    // Phase 3: scatter back to input order.
    assignment
        .into_iter()
        .map(|slot| extracted[slot].clone().expect("parallel_map fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::error::PricingError;

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    #[test]
    fn batch_matches_the_serial_extractors_exactly() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let cfg = EngineConfig::default();
        let zero_div = OptionParams { dividend_yield: 0.0, ..p() };
        let book = vec![
            BoundaryRequest::new(ModelKind::Bopm, OptionType::Call, p(), 256, 8),
            BoundaryRequest::new(ModelKind::Bopm, OptionType::Put, p(), 256, 8),
            BoundaryRequest::new(ModelKind::Topm, OptionType::Call, p(), 256, 8),
            BoundaryRequest::new(ModelKind::Topm, OptionType::Put, p(), 256, 8),
            BoundaryRequest::new(ModelKind::Bsm, OptionType::Put, zero_div, 256, 8),
            BoundaryRequest::new(ModelKind::Bsm, OptionType::Call, zero_div, 256, 8),
        ];
        let got = exercise_boundaries(&pricer, &book);
        let want = vec![
            exercise_boundary::bopm_call_boundary(&BopmModel::new(p(), 256).unwrap(), &cfg, 8),
            exercise_boundary::bopm_put_boundary(&BopmModel::new(p(), 256).unwrap(), &cfg, 8),
            exercise_boundary::topm_call_boundary(&TopmModel::new(p(), 256).unwrap(), &cfg, 8),
            exercise_boundary::topm_put_boundary(&TopmModel::new(p(), 256).unwrap(), &cfg, 8),
            exercise_boundary::bsm_put_boundary(&BsmModel::new(zero_div, 256).unwrap(), &cfg, 8),
            exercise_boundary::bsm_call_boundary(&BsmModel::new(zero_div, 256).unwrap(), &cfg, 8),
        ];
        for ((req, g), w) in book.iter().zip(&got).zip(&want) {
            let g = g.as_ref().unwrap_or_else(|e| panic!("{req:?}: {e}"));
            assert_eq!(g, w, "{req:?}");
        }
    }

    #[test]
    fn duplicates_collapse_and_errors_stay_per_slot() {
        let pricer = BatchPricer::new(EngineConfig::default());
        let good = BoundaryRequest::new(ModelKind::Bopm, OptionType::Put, p(), 128, 4);
        let bad = BoundaryRequest::new(
            ModelKind::Bopm,
            OptionType::Put,
            OptionParams { spot: -1.0, ..p() },
            128,
            4,
        );
        // The BSM call route exists now, but the model still rejects the
        // paper defaults' non-zero dividend yield — a per-slot error.
        let dividend_call = BoundaryRequest::new(ModelKind::Bsm, OptionType::Call, p(), 128, 4);
        let out =
            exercise_boundaries(&pricer, &[good.clone(), bad, good.clone(), dividend_call, good]);
        assert!(matches!(out[1], Err(PricingError::InvalidParams { .. })), "{:?}", out[1]);
        assert!(
            matches!(out[3], Err(PricingError::InvalidParams { field: "dividend_yield", .. })),
            "{:?}",
            out[3]
        );
        let first = out[0].as_ref().unwrap();
        assert_eq!(first, out[2].as_ref().unwrap());
        assert_eq!(first, out[4].as_ref().unwrap());
        assert!(!first.is_empty());
    }

    #[test]
    fn bsm_call_route_yields_in_the_money_points_only() {
        // Dividend-free call: early exercise is at most a quantisation
        // artifact, so every sampled critical price (if any) sits at or
        // above the strike, and the curve itself is well-formed.
        let pricer = BatchPricer::new(EngineConfig::default());
        let zero_div = OptionParams { dividend_yield: 0.0, ..p() };
        let req = BoundaryRequest::new(ModelKind::Bsm, OptionType::Call, zero_div, 256, 8);
        let out = exercise_boundaries(&pricer, &[req]);
        let curve = out[0].as_ref().expect("bsm call route prices");
        assert!(!curve.is_empty());
        for pt in curve {
            if let Some(price) = pt.critical_price {
                assert!(price >= zero_div.strike * (1.0 - 1e-12), "critical {price} below strike");
            }
        }
    }
}
