//! Closed-form references: error function, normal distribution, and the
//! Black–Scholes(-Merton) European formulas.
//!
//! These are the validation oracles for the lattice/FD pricers (the binomial
//! model converges to Black–Scholes as `T → ∞`), implemented from scratch —
//! `erf` by Maclaurin series for small arguments and a Lentz continued
//! fraction for the tail, giving ≈1e-14 absolute accuracy, far below the
//! discretisation errors being validated.

use crate::error::{PricingError, Result};
use crate::params::{OptionParams, OptionType};

/// Error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.5 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in the tail.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.5 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series; converges to machine precision within ~40 terms for
/// `x ≤ 2.5`.
fn erf_series(x: f64) -> f64 {
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    two_over_sqrt_pi * sum
}

/// Modified Lentz continued fraction for `erfc`, `x ≥ 2.5`:
/// `erfc(x) = e^{−x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + …))))`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = f;
    let mut d = 0.0;
    // Continued fraction b0 + a1/(b1 + a2/(b2 + …)) with b_j = x (odd j
    // contributes x, even contributes x via the standard even/odd form):
    // erfc CF in the form 1/(x+ (1/2)/(x+ 1/(x+ (3/2)/(x+ 2/(x+ …))))).
    for j in 0..200 {
        let a = if j == 0 { 1.0 } else { j as f64 / 2.0 };
        let b = x;
        d = b + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

/// Standard normal probability density.
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The Black–Scholes `d₁, d₂` terms.
fn d1_d2(p: &OptionParams) -> (f64, f64) {
    let sig_sqrt_t = p.volatility * p.expiry.sqrt();
    let d1 = ((p.spot / p.strike).ln()
        + (p.rate - p.dividend_yield + 0.5 * p.volatility * p.volatility) * p.expiry)
        / sig_sqrt_t;
    (d1, d1 - sig_sqrt_t)
}

/// Closed-form Black–Scholes–Merton price of a **European** option with a
/// continuous dividend yield.
pub fn black_scholes_price(p: &OptionParams, opt: OptionType) -> Result<f64> {
    let p = p.validated()?;
    let (d1, d2) = d1_d2(&p);
    let df_div = (-p.dividend_yield * p.expiry).exp();
    let df_rate = (-p.rate * p.expiry).exp();
    Ok(match opt {
        OptionType::Call => p.spot * df_div * norm_cdf(d1) - p.strike * df_rate * norm_cdf(d2),
        OptionType::Put => p.strike * df_rate * norm_cdf(-d2) - p.spot * df_div * norm_cdf(-d1),
    })
}

/// Black–Scholes vega `∂price/∂σ` (same for calls and puts).
pub fn black_scholes_vega(p: &OptionParams) -> Result<f64> {
    let p = p.validated()?;
    let (d1, _) = d1_d2(&p);
    Ok(p.spot * (-p.dividend_yield * p.expiry).exp() * norm_pdf(d1) * p.expiry.sqrt())
}

/// Black–Scholes delta `∂price/∂S`.
pub fn black_scholes_delta(p: &OptionParams, opt: OptionType) -> Result<f64> {
    let p = p.validated()?;
    let (d1, _) = d1_d2(&p);
    let df_div = (-p.dividend_yield * p.expiry).exp();
    Ok(match opt {
        OptionType::Call => df_div * norm_cdf(d1),
        OptionType::Put => -df_div * norm_cdf(-d1),
    })
}

/// Price of a perpetual American put (one of the rare American closed forms,
/// McKean 1965): used as an asymptotic sanity oracle.
///
/// `V = (K − S*) (S/S*)^{−2r/σ²}` for `S ≥ S*`, with
/// `S* = K·γ/(1+γ)`, `γ = 2r/σ²`; intrinsic below `S*`.
pub fn perpetual_put(spot: f64, strike: f64, rate: f64, volatility: f64) -> Result<f64> {
    if !(spot > 0.0 && strike > 0.0 && rate > 0.0 && volatility > 0.0) {
        return Err(PricingError::InvalidParams {
            field: "perpetual_put",
            reason: "spot, strike, rate, volatility must all be positive".into(),
        });
    }
    let gamma = 2.0 * rate / (volatility * volatility);
    let s_star = strike * gamma / (1.0 + gamma);
    if spot <= s_star {
        Ok(strike - spot)
    } else {
        Ok((strike - s_star) * (spot / s_star).powf(-gamma))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-13, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-13, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.2090496998585441e-5, erfc(5) = 1.5374597944280349e-12
        assert!((erfc(3.0) - 2.209049699858544e-5).abs() < 1e-18 / erfc(3.0));
        let reference = 1.537_459_794_428_035e-12; // erfc(5), Wolfram 16 s.f.
        let rel = (erfc(5.0) - reference).abs() / reference;
        assert!(rel < 1e-10, "rel={rel}");
    }

    #[test]
    fn erf_erfc_complementarity() {
        for i in -60..=60 {
            let x = i as f64 / 10.0;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.96) - 0.9750021048517795).abs() < 1e-12);
        assert!((norm_cdf(-1.0) - 0.15865525393145707).abs() < 1e-12);
        assert!((norm_cdf(4.0) - 0.9999683287581669).abs() < 1e-12);
    }

    #[test]
    fn norm_cdf_monotone_and_symmetric() {
        let mut prev = 0.0;
        for i in -80..=80 {
            let x = i as f64 / 10.0;
            let v = norm_cdf(x);
            assert!(v >= prev - 1e-15, "monotonicity at {x}");
            assert!((v + norm_cdf(-x) - 1.0).abs() < 1e-13, "symmetry at {x}");
            prev = v;
        }
    }

    #[test]
    fn black_scholes_textbook_value() {
        // Hull's classic example: S=42, K=40, r=0.10, σ=0.2, T=0.5:
        // call ≈ 4.759422, put ≈ 0.808599.
        let p = OptionParams {
            spot: 42.0,
            strike: 40.0,
            rate: 0.10,
            volatility: 0.2,
            dividend_yield: 0.0,
            expiry: 0.5,
        };
        let call = black_scholes_price(&p, OptionType::Call).unwrap();
        let put = black_scholes_price(&p, OptionType::Put).unwrap();
        assert!((call - 4.759422392871532).abs() < 1e-9, "call={call}");
        assert!((put - 0.8085993729000958).abs() < 1e-9, "put={put}");
    }

    #[test]
    fn put_call_parity() {
        let p = OptionParams::paper_defaults();
        let call = black_scholes_price(&p, OptionType::Call).unwrap();
        let put = black_scholes_price(&p, OptionType::Put).unwrap();
        let lhs = call - put;
        let rhs =
            p.spot * (-p.dividend_yield * p.expiry).exp() - p.strike * (-p.rate * p.expiry).exp();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn vega_matches_finite_difference() {
        let p = OptionParams::paper_defaults();
        let vega = black_scholes_vega(&p).unwrap();
        let h = 1e-6;
        let up = black_scholes_price(
            &OptionParams { volatility: p.volatility + h, ..p },
            OptionType::Call,
        )
        .unwrap();
        let dn = black_scholes_price(
            &OptionParams { volatility: p.volatility - h, ..p },
            OptionType::Call,
        )
        .unwrap();
        assert!((vega - (up - dn) / (2.0 * h)).abs() < 1e-5);
    }

    #[test]
    fn delta_matches_finite_difference() {
        let p = OptionParams::paper_defaults();
        for opt in [OptionType::Call, OptionType::Put] {
            let delta = black_scholes_delta(&p, opt).unwrap();
            let h = 1e-5;
            let up = black_scholes_price(&OptionParams { spot: p.spot + h, ..p }, opt).unwrap();
            let dn = black_scholes_price(&OptionParams { spot: p.spot - h, ..p }, opt).unwrap();
            assert!((delta - (up - dn) / (2.0 * h)).abs() < 1e-6);
        }
    }

    #[test]
    fn perpetual_put_boundaries() {
        // Deep ITM: intrinsic. At S = S*: continuous.
        let (k, r, sig) = (100.0, 0.05, 0.3);
        let gamma = 2.0 * r / (sig * sig);
        let s_star = k * gamma / (1.0 + gamma);
        assert!((perpetual_put(s_star, k, r, sig).unwrap() - (k - s_star)).abs() < 1e-12);
        assert_eq!(perpetual_put(s_star / 2.0, k, r, sig).unwrap(), k - s_star / 2.0);
        // Far OTM decays toward zero but stays positive.
        let far = perpetual_put(10.0 * k, k, r, sig).unwrap();
        assert!(far > 0.0 && far < 10.0);
    }
}
