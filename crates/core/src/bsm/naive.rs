//! The row-by-row explicit FD sweep over the full cone — `vanilla-bsm` in
//! the paper's evaluation.  `Θ(T²)` work.

use super::BsmModel;
use amopt_parallel::{for_each_chunk_mut, DEFAULT_GRAIN};

/// Execution strategy for the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded.
    Serial,
    /// Row-parallel with double buffering.
    #[default]
    Parallel,
}

/// Early-exercise flavour of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Pure linear scheme (European put).
    European,
    /// Obstacle scheme `max(linear, exercise)` (American put).
    American,
}

/// Which obstacle the sweep applies: the put's (`1 − e^s`, green on the
/// left) or the call's (`e^s − 1`, green on the right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Put,
    Call,
}

impl Side {
    #[inline]
    fn exercise(self, model: &BsmModel, k: i64) -> f64 {
        match self {
            Side::Put => model.exercise(k),
            Side::Call => model.exercise_call(k),
        }
    }
}

/// Dimensionless grid value at the apex; multiply by `K` for the price.
pub fn apex_value(model: &BsmModel, style: Style, mode: ExecMode) -> f64 {
    sweep(model, Side::Put, style, mode)
}

/// Call-side apex value under the same discretisation; multiply by `K` for
/// the price.  With the model's mandatory `Y = 0` the continuous American
/// call is never exercised early, so the obstacle binds at most as a
/// lattice-quantisation artifact — the sweep handles either outcome.
pub fn apex_call_value(model: &BsmModel, style: Style, mode: ExecMode) -> f64 {
    sweep(model, Side::Call, style, mode)
}

fn sweep(model: &BsmModel, side: Side, style: Style, mode: ExecMode) -> f64 {
    let t = model.steps() as i64;
    // Row n spans columns [−(T−n), T−n]; store at index k + (T−n).
    let mut cur: Vec<f64> = (-t..=t).map(|k| side.exercise(model, k).max(0.0)).collect();
    let (wb, wc, wa) = model.weights();
    match mode {
        ExecMode::Serial => {
            for n in 1..=t {
                let half = t - n; // output row half-width
                let mut next = Vec::with_capacity((2 * half + 1) as usize);
                for k in -half..=half {
                    // input row index of column k: k + (half + 1)
                    let idx = (k + half + 1) as usize;
                    let lin = wb * cur[idx - 1] + wc * cur[idx] + wa * cur[idx + 1];
                    next.push(match style {
                        Style::European => lin,
                        Style::American => lin.max(side.exercise(model, k)),
                    });
                }
                cur = next;
            }
        }
        ExecMode::Parallel => {
            let mut next = vec![0.0; cur.len()];
            for n in 1..=t {
                let half = t - n;
                let width = (2 * half + 1) as usize;
                {
                    let read: &[f64] = &cur;
                    for_each_chunk_mut(&mut next[..width], DEFAULT_GRAIN, |offset, chunk| {
                        for (i, out) in chunk.iter_mut().enumerate() {
                            let pos = offset + i; // 0-based in output row
                            let k = pos as i64 - half;
                            let idx = pos + 1; // same column in input row
                            let lin = wb * read[idx - 1] + wc * read[idx] + wa * read[idx + 1];
                            *out = match style {
                                Style::European => lin,
                                Style::American => lin.max(side.exercise(model, k)),
                            };
                        }
                    });
                }
                std::mem::swap(&mut cur, &mut next);
                next.truncate(width);
                cur.truncate(width);
                next.resize(width, 0.0);
            }
        }
    }
    cur[0]
}

/// American put price (`vanilla-bsm`).
pub fn price_american_put(model: &BsmModel, mode: ExecMode) -> f64 {
    model.params().strike * apex_value(model, Style::American, mode)
}

/// European put price under the same discretisation (validation oracle).
pub fn price_european_put(model: &BsmModel, mode: ExecMode) -> f64 {
    model.params().strike * apex_value(model, Style::European, mode)
}

/// American call price under the same discretisation (dense sweep — the
/// call side has no compressed green-left engine).
pub fn price_american_call(model: &BsmModel, mode: ExecMode) -> f64 {
    model.params().strike * apex_call_value(model, Style::American, mode)
}

/// Serial American sweep also recording the green-zone boundary
/// (largest `k` with exercise ≥ continuation; `i64::MIN` when the row has no
/// green cell inside the cone) for every row — used by the Thm 4.3 tests.
pub fn apex_value_with_boundary(model: &BsmModel) -> (f64, Vec<i64>) {
    let t = model.steps() as i64;
    let mut cur: Vec<f64> = (-t..=t).map(|k| model.payoff(k)).collect();
    let (wb, wc, wa) = model.weights();
    let mut boundaries = Vec::with_capacity(t as usize + 1);
    // Expiry row boundary.
    boundaries.push(model.expiry_boundary().min(t));
    for n in 1..=t {
        let half = t - n;
        let mut next = Vec::with_capacity((2 * half + 1) as usize);
        let mut b = i64::MIN;
        for k in -half..=half {
            let idx = (k + half + 1) as usize;
            let lin = wb * cur[idx - 1] + wc * cur[idx] + wa * cur[idx + 1];
            let ex = model.exercise(k);
            if ex >= lin {
                b = b.max(k);
            }
            next.push(lin.max(ex));
        }
        boundaries.push(b);
        cur = next;
    }
    (cur[0], boundaries)
}

/// Serial American **call** sweep also recording the green-zone boundary
/// for every row: the *smallest* `k` with exercise ≥ continuation
/// (`i64::MAX` when the row has no green cell inside the cone — for the
/// dividend-free call that is the common case; a green cell can appear
/// only as a quantisation artifact of the explicit scheme).  Θ(T²): this
/// is both the oracle and the production extractor for the call frontier.
pub fn apex_call_value_with_boundary(model: &BsmModel) -> (f64, Vec<i64>) {
    let t = model.steps() as i64;
    let mut cur: Vec<f64> = (-t..=t).map(|k| model.payoff_call(k)).collect();
    let (wb, wc, wa) = model.weights();
    let mut boundaries = Vec::with_capacity(t as usize + 1);
    // Expiry row boundary (clamped into the cone from the right).
    boundaries.push(model.expiry_call_boundary().max(-t));
    for n in 1..=t {
        let half = t - n;
        let mut next = Vec::with_capacity((2 * half + 1) as usize);
        let mut b = i64::MAX;
        for k in -half..=half {
            let idx = (k + half + 1) as usize;
            let lin = wb * cur[idx - 1] + wc * cur[idx] + wa * cur[idx + 1];
            let ex = model.exercise_call(k);
            if ex >= lin {
                b = b.min(k);
            }
            next.push(lin.max(ex));
        }
        boundaries.push(b);
        cur = next;
    }
    (cur[0], boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::params::{OptionParams, OptionType};

    fn params() -> OptionParams {
        OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() }
    }

    #[test]
    fn serial_and_parallel_agree() {
        for steps in [1usize, 2, 9, 128, 800] {
            let m = BsmModel::new(params(), steps).unwrap();
            for style in [Style::European, Style::American] {
                let a = apex_value(&m, style, ExecMode::Serial);
                let b = apex_value(&m, style, ExecMode::Parallel);
                assert!((a - b).abs() < 1e-12, "steps={steps} {style:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn european_converges_to_black_scholes() {
        let p = params();
        let bs = analytic::black_scholes_price(&p, OptionType::Put).unwrap();
        let mut prev = f64::INFINITY;
        for steps in [250usize, 1000, 4000] {
            let m = BsmModel::new(p, steps).unwrap();
            let v = price_european_put(&m, ExecMode::Serial);
            let err = (v - bs).abs();
            assert!(err < prev, "steps={steps}: {err} !< {prev}");
            prev = err;
        }
        assert!(prev < 2e-2, "final error {prev}");
    }

    #[test]
    fn american_put_dominates_european_and_intrinsic() {
        let m = BsmModel::new(params(), 2000).unwrap();
        let eu = price_european_put(&m, ExecMode::Serial);
        let am = price_american_put(&m, ExecMode::Serial);
        let intrinsic = (m.params().strike - m.params().spot).max(0.0);
        assert!(am >= eu - 1e-12);
        assert!(am >= intrinsic);
    }

    #[test]
    fn american_put_matches_binomial_lattice() {
        // Cross-model validation: the FD put and the binomial-lattice put
        // approximate the same continuous value.
        let p = params();
        let m = BsmModel::new(p, 4000).unwrap();
        let fd = price_american_put(&m, ExecMode::Serial);
        let lattice = crate::bopm::BopmModel::new(p, 4000).unwrap();
        let bin = crate::bopm::naive::price(
            &lattice,
            OptionType::Put,
            crate::params::ExerciseStyle::American,
            crate::bopm::naive::ExecMode::Serial,
        );
        assert!((fd - bin).abs() < 5e-3 * bin, "fd {fd} vs binomial {bin}");
    }

    #[test]
    fn boundary_satisfies_theorem_4_3() {
        // 0 ≤ k_n − k_{n+1} ≤ 1 wherever the boundary is inside the cone.
        let m = BsmModel::new(params(), 600).unwrap();
        let (_, b) = apex_value_with_boundary(&m);
        let t = m.steps() as i64;
        for n in 0..m.steps() {
            let half_next = t - n as i64 - 1;
            if b[n] == i64::MIN || b[n + 1] == i64::MIN {
                continue;
            }
            // Skip rows where the cone edge truncates the comparison.
            if b[n].abs() >= t - n as i64 || b[n + 1].abs() >= half_next {
                continue;
            }
            assert!(b[n + 1] <= b[n], "n={n}: {} > {}", b[n + 1], b[n]);
            assert!(b[n + 1] >= b[n] - 1, "n={n}: {} < {} - 1", b[n + 1], b[n]);
        }
    }

    #[test]
    fn call_serial_and_parallel_agree() {
        for steps in [1usize, 2, 9, 128, 400] {
            let m = BsmModel::new(params(), steps).unwrap();
            for style in [Style::European, Style::American] {
                let a = apex_call_value(&m, style, ExecMode::Serial);
                let b = apex_call_value(&m, style, ExecMode::Parallel);
                assert!((a - b).abs() < 1e-12, "steps={steps} {style:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn american_call_without_dividends_tracks_black_scholes() {
        // With Y = 0 early exercise of a call is never optimal in the
        // continuum: American ≥ European on the grid by construction, and
        // the gap is at most a lattice-quantisation artifact; the European
        // leg converges to the Black–Scholes closed form.
        let p = params();
        let bs = analytic::black_scholes_price(&p, OptionType::Call).unwrap();
        let m = BsmModel::new(p, 2000).unwrap();
        let am = price_american_call(&m, ExecMode::Serial);
        let eu = m.params().strike * apex_call_value(&m, Style::European, ExecMode::Serial);
        assert!(am >= eu - 1e-12, "obstacle can only raise the value: {am} < {eu}");
        assert!(am <= eu * (1.0 + 1e-3), "call obstacle overshot: am {am} vs eu {eu}");
        assert!((eu - bs).abs() < 5e-2, "european leg {eu} vs closed form {bs}");
    }

    #[test]
    fn call_boundary_cells_are_in_the_money() {
        let m = BsmModel::new(params(), 600).unwrap();
        let (v, b) = apex_call_value_with_boundary(&m);
        let serial = apex_call_value(&m, Style::American, ExecMode::Serial);
        assert_eq!(v.to_bits(), serial.to_bits(), "boundary sweep must not change the value");
        let t = m.steps() as i64;
        for (n, &k) in b.iter().enumerate() {
            if k == i64::MAX {
                continue;
            }
            assert!(k <= t - n as i64, "row {n}: boundary {k} outside the cone");
            // Green ⇒ e^s − 1 ≥ continuation ≥ 0 ⇒ at/above the strike.
            assert!(m.s_at(k) >= 0.0, "green call cell out of the money: row {n} k {k}");
        }
    }

    #[test]
    fn deep_itm_put_approaches_intrinsic() {
        let p = OptionParams { spot: 40.0, strike: 130.0, ..params() };
        let m = BsmModel::new(p, 1500).unwrap();
        let am = price_american_put(&m, ExecMode::Serial);
        let intrinsic = 90.0;
        assert!(am >= intrinsic - 1e-9);
        assert!(am < intrinsic * 1.02, "am={am}");
    }

    #[test]
    fn single_step_grid() {
        let m = BsmModel::new(params(), 1).unwrap();
        let (wb, wc, wa) = m.weights();
        let lin = wb * m.payoff(-1) + wc * m.payoff(0) + wa * m.payoff(1);
        let want = lin.max(m.exercise(0)) * m.params().strike;
        let got = price_american_put(&m, ExecMode::Serial);
        assert!((got - want).abs() < 1e-12);
    }
}
