//! Knock-out barrier options under the BSM explicit FD scheme — one of the
//! §6 future-work items of the paper, built on the absorbing-wall linear
//! advance of `amopt-stencil` (the aperiodic case of reference \[1\]).
//!
//! A **down-and-out put** is killed the moment the asset touches the
//! barrier `B < S`: on the grid, every column at or below
//! `k_B = ⌈(ln(B/K) − s_base)/Δs⌉ − 1 …` (the last column with price ≤ B)
//! is an absorbing zero wall.  The payoff is European (knock-outs with
//! American exercise are not considered here), so the evolution is purely
//! linear and the FFT wall advance prices the contract in
//! `O((T) log² T)` instead of the `Θ(T²)` sweep.

use super::BsmModel;
use crate::error::{PricingError, Result};
use amopt_stencil::{advance, advance_left_wall, Backend, Segment};

/// Last grid column whose asset price is `≤ barrier` (the wall column).
fn wall_column(model: &BsmModel, barrier: f64) -> i64 {
    let strike = model.params().strike;
    // price(k) = K·e^{s(k)} ≤ B  ⇔  s(k) ≤ ln(B/K)
    let target = (barrier / strike).ln();
    let mut k = ((target - model.s_at(0)) / model.d_s()).floor() as i64;
    while model.s_at(k + 1) <= target {
        k += 1;
    }
    while model.s_at(k) > target {
        k -= 1;
    }
    k
}

/// Prices a **European down-and-out put** with the FFT wall advance.
pub fn price_down_and_out_put_fft(model: &BsmModel, barrier: f64, backend: Backend) -> Result<f64> {
    let strike = model.params().strike;
    if !barrier.is_finite() || barrier <= 0.0 || barrier >= model.params().spot {
        return Err(PricingError::InvalidParams {
            field: "barrier",
            reason: format!(
                "down-and-out barrier must satisfy 0 < B < spot, got B = {barrier}, S = {}",
                model.params().spot
            ),
        });
    }
    let t = model.steps() as i64;
    let wall = wall_column(model, barrier);
    if wall >= 0 {
        // The wall is at or above the apex column: knocked out immediately.
        return Ok(0.0);
    }
    let payoff: Vec<f64> = ((wall + 1).max(-t)..=t).map(|k| model.payoff(k)).collect();
    let seg = Segment::new((wall + 1).max(-t), payoff);
    let out = if wall < -t {
        // Barrier outside the apex cone: plain vanilla European.
        advance(&seg, &model.kernel(), t as u64, backend)
    } else {
        advance_left_wall(&seg, &model.kernel(), t as u64, backend)
    };
    debug_assert!(out.contains(0));
    Ok(strike * out.get(0))
}

/// Reference pricer: dense cone sweep with the barrier zeroed each row.
pub fn price_down_and_out_put_naive(model: &BsmModel, barrier: f64) -> Result<f64> {
    let strike = model.params().strike;
    if !barrier.is_finite() || barrier <= 0.0 || barrier >= model.params().spot {
        return Err(PricingError::InvalidParams {
            field: "barrier",
            reason: "down-and-out barrier must satisfy 0 < B < spot".into(),
        });
    }
    let t = model.steps() as i64;
    let wall = wall_column(model, barrier);
    if wall >= 0 {
        return Ok(0.0);
    }
    let (wb, wc, wa) = model.weights();
    let knocked = |k: i64| k <= wall;
    let mut cur: Vec<f64> =
        (-t..=t).map(|k| if knocked(k) { 0.0 } else { model.payoff(k) }).collect();
    for n in 1..=t {
        let half = t - n;
        let mut next = Vec::with_capacity((2 * half + 1) as usize);
        for k in -half..=half {
            let idx = (k + half + 1) as usize;
            let v = if knocked(k) {
                0.0
            } else {
                wb * cur[idx - 1] + wc * cur[idx] + wa * cur[idx + 1]
            };
            next.push(v);
        }
        cur = next;
    }
    Ok(strike * cur[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OptionParams;

    fn params() -> OptionParams {
        OptionParams { dividend_yield: 0.0, rate: 0.03, ..OptionParams::paper_defaults() }
    }

    #[test]
    fn fft_matches_naive_across_barriers() {
        let m = BsmModel::new(params(), 600).unwrap();
        for barrier in [40.0, 80.0, 100.0, 120.0] {
            let want = price_down_and_out_put_naive(&m, barrier).unwrap();
            let got = price_down_and_out_put_fft(&m, barrier, Backend::Fft).unwrap();
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "B={barrier}: fft {got} vs naive {want}"
            );
        }
    }

    #[test]
    fn knockout_value_increases_as_barrier_falls() {
        // A lower barrier is harder to hit, so the option is worth more,
        // approaching the vanilla European put as B → 0.
        let m = BsmModel::new(params(), 800).unwrap();
        let vanilla = crate::bsm::fast::price_european_put_fft(&m);
        let mut prev = 0.0;
        for barrier in [120.0, 100.0, 70.0, 30.0, 5.0] {
            let v = price_down_and_out_put_fft(&m, barrier, Backend::Fft).unwrap();
            assert!(v >= prev - 1e-9, "B={barrier}: {v} < {prev}");
            assert!(v <= vanilla + 1e-9, "B={barrier}: {v} > vanilla {vanilla}");
            prev = v;
        }
        // Far-away barrier ≈ vanilla.
        let far = price_down_and_out_put_fft(&m, 1.0, Backend::Fft).unwrap();
        assert!((far - vanilla).abs() < 1e-6 * vanilla.max(1.0));
    }

    #[test]
    fn barrier_above_spot_is_rejected_and_at_spot_knocks_out() {
        let m = BsmModel::new(params(), 100).unwrap();
        assert!(price_down_and_out_put_fft(&m, 200.0, Backend::Fft).is_err());
        assert!(price_down_and_out_put_fft(&m, -1.0, Backend::Fft).is_err());
        // Barrier just below spot: wall at/near apex ⇒ near-zero value.
        let v = price_down_and_out_put_fft(&m, m.params().spot * 0.999, Backend::Fft).unwrap();
        assert!(v < 0.5, "barely-below-spot barrier should be nearly worthless, got {v}");
    }

    #[test]
    fn deep_barrier_never_exceeds_intrinsic_logic() {
        let m = BsmModel::new(params(), 400).unwrap();
        let v = price_down_and_out_put_fft(&m, 60.0, Backend::Fft).unwrap();
        // Knock-out put is worth less than the strike and non-negative.
        assert!(v >= 0.0 && v < m.params().strike);
    }
}
