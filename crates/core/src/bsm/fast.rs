//! The paper's fast BSM pricer: American put in `O(T log² T)` work and
//! `O(T)` span via the centered nonlinear-stencil engine (§4.3).

use super::BsmModel;
use crate::engine::centered::{advance_green_left, GreenLeftRow};
use crate::engine::EngineConfig;
use amopt_stencil::{advance, Segment};

/// Builds the expiry row in compressed green-left form.
///
/// Red cells at expiry are the out-of-the-money columns (`s_k > 0`), whose
/// payoff is exactly zero.
fn expiry_row(model: &BsmModel) -> GreenLeftRow {
    let t = model.steps() as i64;
    let f = model.expiry_boundary().clamp(-t - 1, t);
    let reds = vec![0.0; (t - f).max(0) as usize];
    GreenLeftRow { t: 0, boundary: f, hi: t, reds: Segment::new(f + 1, reds) }
}

/// American put price via the FFT trapezoid decomposition
/// (`fft-bsm` in the paper's plots).
pub fn price_american_put(model: &BsmModel, cfg: &EngineConfig) -> f64 {
    let strike = model.params().strike;
    let t = model.steps() as i64;
    let f0 = model.expiry_boundary();
    if f0 >= t {
        // Green covers the whole cone now and forever (the green/cone gap
        // never shrinks): immediate exercise at the apex.
        return strike * model.exercise(0);
    }
    if f0 < -t {
        // No green cell in the apex's dependency cone: the obstacle never
        // binds and the scheme is purely linear — one FFT pass (this is the
        // European put on this grid).
        let payoff: Vec<f64> = (-t..=t).map(|k| model.payoff(k)).collect();
        let out = advance(&Segment::new(-t, payoff), &model.kernel(), t as u64, cfg.backend);
        debug_assert_eq!(out.start, 0);
        debug_assert_eq!(out.len(), 1);
        return strike * out.values[0];
    }
    let row = expiry_row(model);
    let green = |_t: u64, k: i64| model.exercise(k);
    let out = advance_green_left(&model.kernel(), &green, &row, t as u64, cfg);
    debug_assert_eq!(out.hi, 0);
    strike * out.value_at(&green, 0)
}

/// European put under the same discretisation, `O(T log T)` (single FFT).
pub fn price_european_put_fft(model: &BsmModel) -> f64 {
    let t = model.steps() as i64;
    let payoff: Vec<f64> = (-t..=t).map(|k| model.payoff(k)).collect();
    if t == 0 {
        return model.params().strike * payoff[0];
    }
    let out =
        advance(&Segment::new(-t, payoff), &model.kernel(), t as u64, amopt_stencil::Backend::Fft);
    debug_assert_eq!(out.len(), 1);
    model.params().strike * out.values[0]
}

/// American put price plus green-boundary samples `(n, k_n)` at `rows`
/// roughly equally spaced time steps (the early-exercise curve of §4.2,
/// in grid columns; `s`-space value is `ln(S/K) + k·Δs`).
pub fn price_with_boundary_samples(
    model: &BsmModel,
    cfg: &EngineConfig,
    rows: usize,
) -> (f64, Vec<(usize, i64)>) {
    let strike = model.params().strike;
    let t = model.steps() as u64;
    let f0 = model.expiry_boundary();
    let mut samples = vec![(0usize, f0)];
    if f0 >= t as i64 || f0 < -(t as i64) {
        return (price_american_put(model, cfg), samples);
    }
    let green = |_t: u64, k: i64| model.exercise(k);
    let kernel = model.kernel();
    let mut cur = expiry_row(model);
    let chunk = (t / rows.max(1) as u64).max(1);
    while cur.t < t {
        let h = chunk.min(t - cur.t);
        cur = advance_green_left(&kernel, &green, &cur, h, cfg);
        samples.push((cur.t as usize, cur.boundary));
    }
    (strike * cur.value_at(&green, 0), samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsm::naive::{self, ExecMode};
    use crate::params::{OptionParams, OptionType};

    fn params() -> OptionParams {
        OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() }
    }

    fn assert_matches_naive(p: OptionParams, steps: usize, tol: f64) {
        let m = BsmModel::new(p, steps).unwrap();
        let want = naive::price_american_put(&m, ExecMode::Serial);
        let got = price_american_put(&m, &EngineConfig::default());
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "steps={steps}: fft {got} vs naive {want}"
        );
    }

    #[test]
    fn matches_naive_paper_params() {
        for steps in [1usize, 2, 3, 7, 8, 9, 50, 252, 1000, 3000] {
            assert_matches_naive(params(), steps, 1e-9);
        }
    }

    #[test]
    fn matches_naive_across_moneyness() {
        for spot in [60.0, 110.0, 129.0, 131.0, 200.0, 500.0] {
            assert_matches_naive(OptionParams { spot, ..params() }, 500, 1e-9);
        }
    }

    #[test]
    fn matches_naive_across_vol_and_rates() {
        for vol in [0.08, 0.2, 0.5] {
            for rate in [0.0005, 0.01, 0.06] {
                let p = OptionParams { volatility: vol, rate, ..params() };
                assert_matches_naive(p, 400, 1e-9);
            }
        }
    }

    #[test]
    fn european_fft_matches_naive_european() {
        for steps in [1usize, 64, 1000] {
            let m = BsmModel::new(params(), steps).unwrap();
            let want = naive::price_european_put(&m, ExecMode::Serial);
            let got = price_european_put_fft(&m);
            assert!((got - want).abs() < 1e-9 * want.max(1.0), "steps={steps}");
        }
    }

    #[test]
    fn converges_to_known_american_put_value() {
        // Cross-model: FD American put vs binomial-lattice American put.
        let p = params();
        let steps = 4000;
        let m = BsmModel::new(p, steps).unwrap();
        let fd = price_american_put(&m, &EngineConfig::default());
        let lattice = crate::bopm::BopmModel::new(p, steps).unwrap();
        let bin = crate::bopm::naive::price(
            &lattice,
            OptionType::Put,
            crate::params::ExerciseStyle::American,
            crate::bopm::naive::ExecMode::Serial,
        );
        assert!((fd - bin).abs() < 5e-3 * bin, "fd {fd} vs binomial {bin}");
    }

    #[test]
    fn american_exceeds_european_and_intrinsic() {
        let m = BsmModel::new(params(), 2048).unwrap();
        let am = price_american_put(&m, &EngineConfig::default());
        let eu = price_european_put_fft(&m);
        let intrinsic = (m.params().strike - m.params().spot).max(0.0);
        assert!(am >= eu - 1e-9);
        assert!(am >= intrinsic - 1e-9);
    }

    #[test]
    fn deep_itm_immediate_exercise() {
        let p = OptionParams { spot: 1.0, strike: 130.0, ..params() };
        assert_matches_naive(p, 200, 1e-9);
    }

    #[test]
    fn deep_otm_linear_path() {
        let p = OptionParams { spot: 10_000.0, strike: 1.0, ..params() };
        let m = BsmModel::new(p, 300).unwrap();
        assert!(m.expiry_boundary() < -300);
        assert_matches_naive(p, 300, 1e-9);
    }

    #[test]
    fn boundary_samples_match_dense_boundary() {
        let m = BsmModel::new(params(), 512).unwrap();
        let (_, dense) = naive::apex_value_with_boundary(&m);
        let (price, samples) = price_with_boundary_samples(&m, &EngineConfig::default(), 8);
        let want = naive::price_american_put(&m, ExecMode::Serial);
        assert!((price - want).abs() < 1e-9 * want.max(1.0));
        let t = m.steps() as i64;
        for (n, k) in samples {
            // Comparable only while the dense sweep's shrinking cone still
            // contains the boundary.
            let half = t - n as i64;
            if n == 0 || dense[n] == i64::MIN || k.abs() >= half {
                continue;
            }
            assert_eq!(k, dense[n], "row {n}");
        }
    }

    #[test]
    fn exercise_boundary_is_monotone_decreasing_in_s() {
        // Thm 4.2: the early-exercise boundary decreases with time-to-expiry.
        let m = BsmModel::new(params(), 2048).unwrap();
        let (_, samples) = price_with_boundary_samples(&m, &EngineConfig::default(), 32);
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1, "boundary rose: {:?} -> {:?}", w[0], w[1]);
        }
    }
}
