//! Black–Scholes–Merton American put via explicit finite differences (§4 of
//! the paper).
//!
//! ## Nondimensionalisation (§4.2)
//!
//! With `s = ln(x/K)`, `τ = ½σ²(T_years − t)`, `ṽ = v/K`, `ω = 2R/σ²`,
//! Eq. (5) of the paper gives the explicit scheme
//!
//! `v^{n+1}_k = c·v^n_k + a·v^n_{k+1} + b·v^n_{k−1}` in the red zone,
//! `v^{n+1}_k = 1 − e^{s_k}` in the green zone,
//!
//! with `a = Δτ/Δs² + (ω−1)Δτ/(2Δs)`, `b = Δτ/Δs² − (ω−1)Δτ/(2Δs)`,
//! `c = 1 − ωΔτ − 2Δτ/Δs²` (Thm 4.3 of the paper omits the ½ on the
//! first-order term; we follow Eq. (5) — see DESIGN.md "errata").
//! Stability requires `a, b, c ≥ 0`, enforced at construction by choosing
//! `Δs = √(Δτ/λ_cfl)` with `λ_cfl = 0.4` and validating.
//!
//! ## Grid
//!
//! `T` time steps, spatial cone of half-width `T` centred on the valuation
//! point: column `k` carries `s_k = ln(S/K) + k·Δs`, row `n` counts steps
//! *from expiry* and spans `k ∈ [−(T−n), T−n]`; the apex `(T, 0)` is the
//! answer, scaled back by `K`.  The green (early-exercise) zone sits on the
//! **left** (low prices) and its boundary moves left by at most one column
//! per step (Thm 4.3).
//!
//! Unlike the call lattices, the put value is bounded by `K`, so the engine
//! stores *raw* dimensionless values (`∈ [0, 1]`) — it is the obstacle
//! `1 − e^{s}` that diverges (negatively) to the right, and those columns
//! are red, never green, so the divergence is never materialised.

pub mod barrier;
pub mod fast;
pub mod naive;

use crate::error::{PricingError, Result};
use crate::params::OptionParams;
use amopt_stencil::StencilKernel;

/// Courant number `Δτ/Δs²` used to pick the spatial step.
pub const CFL_RATIO: f64 = 0.4;

/// A fully derived explicit-FD discretisation of the BSM put problem.
#[derive(Debug, Clone)]
pub struct BsmModel {
    params: OptionParams,
    steps: usize,
    d_tau: f64,
    d_s: f64,
    omega: f64,
    /// Weight on `v^n_{k+1}`.
    a: f64,
    /// Weight on `v^n_{k−1}`.
    b: f64,
    /// Weight on `v^n_k`.
    c: f64,
    /// `ln(S/K)`: the log-moneyness of the apex column.
    s_base: f64,
}

impl BsmModel {
    /// Builds the discretisation, validating parameters and stability.
    ///
    /// The paper's BSM section has no dividend yield; a non-zero
    /// `dividend_yield` is rejected to avoid silently mispricing.
    pub fn new(params: OptionParams, steps: usize) -> Result<Self> {
        let params = params.validated()?;
        // amopt-lint: allow(float-eq) -- exact Y = 0.0 is a validation gate: the paper's BSM model is dividend-free by construction
        if params.dividend_yield != 0.0 {
            return Err(PricingError::InvalidParams {
                field: "dividend_yield",
                reason: "the BSM finite-difference model (paper §4) is dividend-free; use Y = 0"
                    .into(),
            });
        }
        if steps == 0 {
            return Err(PricingError::InvalidParams {
                field: "steps",
                reason: "need at least one time step".into(),
            });
        }
        let sigma2 = params.volatility * params.volatility;
        let omega = 2.0 * params.rate / sigma2;
        let tau_max = 0.5 * sigma2 * params.expiry;
        let d_tau = tau_max / steps as f64;
        let d_s = (d_tau / CFL_RATIO).sqrt();
        let diff = d_tau / (d_s * d_s);
        let drift = (omega - 1.0) * d_tau / (2.0 * d_s);
        let a = diff + drift;
        let b = diff - drift;
        let c = 1.0 - omega * d_tau - 2.0 * diff;
        for (name, v) in [("a", a), ("b", b), ("c", c)] {
            if v < 0.0 {
                return Err(PricingError::UnstableDiscretisation {
                    reason: format!(
                        "explicit-scheme coefficient {name} = {v:.3e} < 0 \
                         (ω = {omega:.3}, Δτ = {d_tau:.3e}, Δs = {d_s:.3e}); increase steps"
                    ),
                });
            }
        }
        Ok(BsmModel {
            params,
            steps,
            d_tau,
            d_s,
            omega,
            a,
            b,
            c,
            s_base: (params.spot / params.strike).ln(),
        })
    }

    /// The market/contract parameters this grid was built from.
    #[inline]
    pub fn params(&self) -> &OptionParams {
        &self.params
    }

    /// Number of time steps `T`.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Dimensionless time step `Δτ`.
    #[inline]
    pub fn d_tau(&self) -> f64 {
        self.d_tau
    }

    /// Log-price step `Δs`.
    #[inline]
    pub fn d_s(&self) -> f64 {
        self.d_s
    }

    /// `ω = 2R/σ²`.
    #[inline]
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Scheme weights `(b, c, a)` on `(v^n_{k−1}, v^n_k, v^n_{k+1})`.
    #[inline]
    pub fn weights(&self) -> (f64, f64, f64) {
        (self.b, self.c, self.a)
    }

    /// Log-moneyness at column `k`: `s_k = ln(S/K) + k·Δs`.
    #[inline]
    pub fn s_at(&self, k: i64) -> f64 {
        self.s_base + k as f64 * self.d_s
    }

    /// Node function `φ(k) = e^{s_k}` (time-independent).
    #[inline]
    pub fn phi(&self, k: i64) -> f64 {
        self.s_at(k).exp()
    }

    /// Dimensionless exercise value at column `k`: `1 − e^{s_k}` (no floor).
    #[inline]
    pub fn exercise(&self, k: i64) -> f64 {
        1.0 - self.phi(k)
    }

    /// Dimensionless **call** exercise value at column `k`: `e^{s_k} − 1`
    /// (no floor).  The call's green zone sits on the *right* of the cone;
    /// only the dense sweep uses it (the compressed engines are green-left).
    #[inline]
    pub fn exercise_call(&self, k: i64) -> f64 {
        self.phi(k) - 1.0
    }

    /// The 3-point stencil `[b, c, a]` anchored at −1.
    pub fn kernel(&self) -> StencilKernel {
        StencilKernel::new(vec![self.b, self.c, self.a], -1)
    }

    /// Eigenvalue of `φ` under the stencil:
    /// `λ = b·e^{−Δs} + c + a·e^{Δs}` (column-independent).
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.b * (-self.d_s).exp() + self.c + self.a * self.d_s.exp()
    }

    /// Expiry-row boundary: largest `k` with `s_k ≤ 0` (exercise region),
    /// unclamped to the cone.
    pub fn expiry_boundary(&self) -> i64 {
        let mut k = (-self.s_base / self.d_s).floor() as i64;
        while self.s_at(k + 1) <= 0.0 {
            k += 1;
        }
        while self.s_at(k) > 0.0 {
            k -= 1;
        }
        k
    }

    /// Dimensionless payoff at column `k`: `max(1 − e^{s_k}, 0)`.
    #[inline]
    pub fn payoff(&self, k: i64) -> f64 {
        self.exercise(k).max(0.0)
    }

    /// Dimensionless **call** payoff at column `k`: `max(e^{s_k} − 1, 0)`.
    #[inline]
    pub fn payoff_call(&self, k: i64) -> f64 {
        self.exercise_call(k).max(0.0)
    }

    /// Expiry-row **call** boundary: smallest `k` with `s_k ≥ 0` (exercise
    /// region on the right), unclamped to the cone.
    pub fn expiry_call_boundary(&self) -> i64 {
        let mut k = (-self.s_base / self.d_s).ceil() as i64;
        while self.s_at(k - 1) >= 0.0 {
            k -= 1;
        }
        while self.s_at(k) < 0.0 {
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OptionParams {
        OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() }
    }

    fn model(steps: usize) -> BsmModel {
        BsmModel::new(params(), steps).unwrap()
    }

    #[test]
    fn coefficients_are_stable_and_sum_below_one() {
        let m = model(1000);
        let (b, c, a) = m.weights();
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0);
        let total = a + b + c;
        assert!((total - (1.0 - m.omega() * m.d_tau())).abs() < 1e-14);
        assert!(total < 1.0);
    }

    #[test]
    fn cfl_ratio_is_respected() {
        let m = model(512);
        let ratio = m.d_tau() / (m.d_s() * m.d_s());
        assert!((ratio - CFL_RATIO).abs() < 1e-12);
    }

    #[test]
    fn rejects_dividends_and_zero_steps() {
        assert!(BsmModel::new(OptionParams::paper_defaults(), 100).is_err()); // Y ≠ 0
        assert!(BsmModel::new(params(), 0).is_err());
    }

    #[test]
    fn expiry_boundary_is_exact_crossover() {
        for steps in [16usize, 252, 4096] {
            let m = model(steps);
            let f = m.expiry_boundary();
            assert!(m.s_at(f) <= 0.0);
            assert!(m.s_at(f + 1) > 0.0);
        }
    }

    #[test]
    fn expiry_call_boundary_is_exact_crossover() {
        for steps in [16usize, 252, 4096] {
            let m = model(steps);
            let f = m.expiry_call_boundary();
            assert!(m.s_at(f) >= 0.0);
            assert!(m.s_at(f - 1) < 0.0);
            // The two expiry boundaries straddle the strike column.
            assert!(m.expiry_boundary() < f);
        }
    }

    #[test]
    fn lambda_matches_direct_application() {
        let m = model(256);
        let (b, c, a) = m.weights();
        for k in [-5i64, 0, 7] {
            let lhs = b * m.phi(k - 1) + c * m.phi(k) + a * m.phi(k + 1);
            let rhs = m.lambda() * m.phi(k);
            assert!((lhs - rhs).abs() < 1e-14 * rhs.abs());
        }
    }

    #[test]
    fn payoff_matches_put_intrinsic() {
        let m = model(64);
        let k_probe = -3i64;
        let x = m.params().strike * m.s_at(k_probe).exp(); // asset price at column
        let want = (m.params().strike - x).max(0.0) / m.params().strike;
        assert!((m.payoff(k_probe) - want).abs() < 1e-12);
    }

    #[test]
    fn unstable_when_omega_large_and_steps_tiny() {
        // ω·Δτ > 1 forces c < 0.
        let p = OptionParams {
            rate: 0.5,
            volatility: 0.05,
            dividend_yield: 0.0,
            ..OptionParams::paper_defaults()
        };
        assert!(matches!(BsmModel::new(p, 1), Err(PricingError::UnstableDiscretisation { .. })));
    }
}
