//! The paper's fast TOPM pricer: American call in `O(T log² T)` work and
//! `O(T)` span (§3 / Appendix A.3), via the same right-cone engine as BOPM —
//! only the kernel (three taps, cone slope 2) and the node function differ.
//!
//! The extended-grid / first-backward-step treatment mirrors
//! [`crate::bopm::fast`]: row `T−1` is materialised from the payoff closed
//! form with a bracketed boundary search, and `Y = 0` short-circuits to the
//! European FFT pass.

use super::european::price_european_fft;
use super::TopmModel;
use crate::engine::left_cone::{self, GreenPrefixRow};
use crate::engine::right_cone::{advance_red_row, solve_to_root};
use crate::engine::{EngineConfig, ExpObstacle, RedRow};
use crate::params::OptionType;
use amopt_stencil::Segment;

/// Obstacle spec for the American call: `green(t, c) = φ(t, c) − K` with
/// `φ(t, c) = S·u^{c − (T−t)}` and `L φ_t = e^{−YΔt} φ_{t+1}`
/// (exact by the trinomial first-moment identity, see the module docs of
/// [`super`]).
fn call_obstacle(model: &TopmModel) -> ExpObstacle<impl Fn(u64, i64) -> f64 + Sync + '_> {
    let t_total = model.steps();
    let phi = move |t: u64, c: i64| model.node_price(t_total - t as usize, c);
    ExpObstacle::new(phi, &model.kernel(), model.lambda(), 1.0, -model.params().strike)
}

/// Continuation value of a row-`T−1` cell, straight from the payoff row.
#[inline]
fn first_step_continuation(model: &TopmModel, j: i64) -> f64 {
    let t = model.steps();
    let (s0, s1, s2) = model.weights();
    s0 * model.exercise_call(t, j).max(0.0)
        + s1 * model.exercise_call(t, j + 1).max(0.0)
        + s2 * model.exercise_call(t, j + 2).max(0.0)
}

/// Premium of cell `(T−1, j)`; red iff `≥ 0`.
#[inline]
fn first_step_premium(model: &TopmModel, j: i64) -> f64 {
    first_step_continuation(model, j) - model.exercise_call(model.steps() - 1, j)
}

#[inline]
fn first_step_red(model: &TopmModel, j: i64) -> bool {
    first_step_premium(model, j) >= 0.0
}

/// Builds row `T−1` (engine time `t = 1`) with a bracketed-binary-search
/// boundary (single crossing holds at `T−1` by Lemma A.1's induction).
fn first_step_row(model: &TopmModel) -> RedRow {
    let start = model.leaf_call_boundary().max(0);
    let (mut lo, mut hi);
    if first_step_red(model, start) {
        lo = start;
        hi = start + 1;
        let mut step = 1i64;
        while first_step_red(model, hi) {
            lo = hi;
            hi += step;
            step *= 2;
        }
    } else {
        hi = start;
        lo = start - 1;
        let mut step = 1i64;
        while lo >= 0 && !first_step_red(model, lo) {
            hi = lo;
            lo -= step;
            step *= 2;
        }
        lo = lo.max(-1);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if first_step_red(model, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let premiums: Vec<f64> = (0..=lo).map(|j| first_step_premium(model, j)).collect();
    RedRow { t: 1, reds: Segment::new(0, premiums), boundary: lo }
}

/// American call price via the FFT trapezoid decomposition
/// (`fft-topm` in the paper's plots).
pub fn price_american_call(model: &TopmModel, cfg: &EngineConfig) -> f64 {
    // amopt-lint: allow(float-eq) -- Y = 0.0 exactly routes calls to the European fast path (Merton); any nonzero yield prices American
    if model.params().dividend_yield == 0.0 {
        return price_european_fft(model, OptionType::Call);
    }
    let t_total = model.steps() as u64;
    let row = first_step_row(model);
    if row.is_all_green() {
        return model.exercise_call(0, 0);
    }
    let obstacle = call_obstacle(model);
    solve_to_root(&model.kernel(), &obstacle, row, t_total, 0, cfg)
}

/// American call price plus the early-exercise boundary sampled at `rows`
/// roughly equally spaced time steps (the trinomial mirror of
/// [`crate::bopm::fast::price_with_boundary_samples`]).
///
/// Returns `(price, samples)`; each sample is `(i, j_i)` with grid row `i`
/// (market time step) and *extended-grid* boundary column `j_i` (−1 = all
/// green; values at or above the row width `2i` mean the triangle row is
/// all red).  One fast `O(T log² T)` pricing pass — this retires the old
/// `Θ(T²)` dense sweep as the only way to see a trinomial frontier.
pub fn price_with_boundary_samples(
    model: &TopmModel,
    cfg: &EngineConfig,
    rows: usize,
) -> (f64, Vec<(usize, i64)>) {
    let t_total = model.steps() as u64;
    let mut samples = Vec::with_capacity(rows + 2);
    samples.push((model.steps(), model.leaf_call_boundary()));
    // amopt-lint: allow(float-eq) -- Y = 0.0 exactly is the Merton no-dividend sentinel, not a tolerance check
    if model.params().dividend_yield == 0.0 || t_total == 1 {
        let price = price_american_call(model, cfg);
        return (price, samples);
    }
    let kernel = model.kernel();
    let obstacle = call_obstacle(model);
    let mut cur = first_step_row(model);
    samples.push((model.steps() - 1, cur.boundary));
    let chunk = (t_total / rows.max(1) as u64).max(1);
    while cur.t < t_total && !cur.is_all_green() {
        let h = chunk.min(t_total - cur.t);
        cur = advance_red_row(&kernel, &obstacle, &cur, h, cfg);
        samples.push((model.steps() - cur.t as usize, cur.boundary));
    }
    let green_root = model.exercise_call(0, 0);
    let price = if cur.t == t_total && cur.boundary >= 0 && cur.reds.contains(0) {
        cur.reds.get(0) + green_root
    } else {
        green_root
    };
    (price, samples)
}

// ---------------------------------------------------------------------------
// American put — the left-cone engine.  On the trinomial lattice a fixed
// column gains a full factor of `u` per backward step, so the put boundary
// drifts left one-to-two columns every step (the span-2 case of the
// left-cone drift law); the engine's downward boundary scan handles it.
// ---------------------------------------------------------------------------

/// Obstacle closure for the American put: `green(t, c) = K − φ(t, c)`.
fn put_green(model: &TopmModel) -> impl Fn(u64, i64) -> f64 + Sync + '_ {
    let t_total = model.steps();
    move |t: u64, c: i64| model.exercise_put(t_total - t as usize, c)
}

/// Continuation value of a row-`T−1` cell, straight from the payoff row.
#[inline]
fn first_step_put_continuation(model: &TopmModel, j: i64) -> f64 {
    let t = model.steps();
    let (s0, s1, s2) = model.weights();
    s0 * model.exercise_put(t, j).max(0.0)
        + s1 * model.exercise_put(t, j + 1).max(0.0)
        + s2 * model.exercise_put(t, j + 2).max(0.0)
}

/// Whether cell `(T−1, j)` is green (exercise beats continuation).
#[inline]
fn first_step_put_green(model: &TopmModel, j: i64) -> bool {
    model.exercise_put(model.steps() - 1, j) >= first_step_put_continuation(model, j)
}

/// Builds row `T−1` (engine time `t = 1`) with a bracketed-binary-search
/// last green column — see [`crate::bopm::fast`]'s put driver for why the
/// expiry transition is materialised explicitly.
fn first_step_put_row(model: &TopmModel) -> GreenPrefixRow {
    let t = model.steps() as i64;
    let leaf = model.leaf_call_boundary();
    let lo = left_cone::last_green_from(leaf, |j| first_step_put_green(model, j));
    let row_hi = 2 * (t - 1);
    let support_end = leaf.min(row_hi);
    let values: Vec<f64> =
        ((lo + 1)..=support_end).map(|j| first_step_put_continuation(model, j)).collect();
    GreenPrefixRow { t: 1, boundary: lo, hi: row_hi, reds: Segment::new(lo + 1, values) }
}

/// American put price via the left-cone FFT trapezoid decomposition —
/// `O(T log² T)` work and `O(T)` span.
pub fn price_american_put(model: &TopmModel, cfg: &EngineConfig) -> f64 {
    // amopt-lint: allow(float-eq) -- R = 0.0 exactly routes puts to the European fast path; any nonzero rate prices American
    if model.params().rate == 0.0 {
        // Zero rate ⇒ no early-exercise premium for puts (continuation
        // ≥ K·e^{−RΔt} − φ·e^{−YΔt} = K − φ·e^{−YΔt} ≥ K − φ node by node).
        return price_european_fft(model, OptionType::Put);
    }
    let t_total = model.steps() as u64;
    let row = first_step_put_row(model);
    if row.is_all_green() {
        return model.exercise_put(0, 0);
    }
    let green = put_green(model);
    left_cone::solve_to_root(&model.kernel(), &green, row, t_total, cfg)
}

/// American put price plus the early-exercise boundary sampled at `rows`
/// roughly equally spaced time steps (the trinomial mirror of
/// [`crate::bopm::fast::price_put_with_boundary_samples`]).
///
/// Returns `(price, samples)`; each sample is `(i, f_i)` with grid row `i`
/// (market time step) and the last green (exercise-optimal) column `f_i`:
/// `−1` means no exercise region in the row, values at or above the row
/// width `2i` mean the whole row exercises.
pub fn price_put_with_boundary_samples(
    model: &TopmModel,
    cfg: &EngineConfig,
    rows: usize,
) -> (f64, Vec<(usize, i64)>) {
    let t_total = model.steps() as u64;
    let mut samples = Vec::with_capacity(rows + 2);
    samples.push((model.steps(), model.leaf_call_boundary()));
    // amopt-lint: allow(float-eq) -- R = 0.0 exactly is the no-early-exercise sentinel for puts, not a tolerance check
    if model.params().rate == 0.0 || t_total == 1 {
        let price = price_american_put(model, cfg);
        return (price, samples);
    }
    let kernel = model.kernel();
    let green = put_green(model);
    let mut cur = first_step_put_row(model);
    samples.push((model.steps() - 1, cur.boundary));
    let chunk = (t_total / rows.max(1) as u64).max(1);
    while cur.t < t_total && !cur.is_all_green() {
        let h = chunk.min(t_total - cur.t);
        cur = left_cone::advance_green_prefix(&kernel, &green, &cur, h, cfg);
        samples.push((model.steps() - cur.t as usize, cur.boundary));
    }
    let price = if cur.t < t_total {
        // Green absorbs through the apex.
        model.exercise_put(0, 0)
    } else {
        cur.value_at(&green, 0)
    };
    (price, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ExerciseStyle, OptionParams};
    use crate::topm::naive::{self, ExecMode};

    fn assert_matches_naive(params: OptionParams, steps: usize, tol: f64) {
        let m = TopmModel::new(params, steps).unwrap();
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_call(&m, &EngineConfig::default());
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "steps={steps}: fft {got} vs naive {want}"
        );
    }

    #[test]
    fn matches_naive_paper_params() {
        for steps in [1usize, 2, 3, 7, 8, 9, 50, 252, 1000, 2500] {
            assert_matches_naive(OptionParams::paper_defaults(), steps, 1e-9);
        }
    }

    #[test]
    fn matches_naive_at_large_t() {
        assert_matches_naive(OptionParams::paper_defaults(), 10_000, 1e-9);
    }

    #[test]
    fn matches_naive_across_moneyness() {
        let base = OptionParams::paper_defaults();
        for spot in [60.0, 110.0, 129.5, 131.0, 250.0] {
            assert_matches_naive(OptionParams { spot, ..base }, 400, 1e-9);
        }
    }

    #[test]
    fn matches_naive_across_vol_and_rates() {
        let base = OptionParams::paper_defaults();
        for vol in [0.08, 0.2, 0.5] {
            for (rate, div) in [(0.0, 0.0163), (0.05, 0.02), (0.001, 0.07), (0.07, 0.004)] {
                let p = OptionParams { volatility: vol, rate, dividend_yield: div, ..base };
                assert_matches_naive(p, 300, 1e-8);
            }
        }
    }

    #[test]
    fn zero_dividend_equals_european() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        assert_matches_naive(p, 600, 1e-9);
    }

    #[test]
    fn deep_itm_immediate_exercise() {
        let p = OptionParams {
            spot: 5_000.0,
            strike: 10.0,
            dividend_yield: 0.2,
            ..OptionParams::paper_defaults()
        };
        assert_matches_naive(p, 128, 1e-9);
    }

    // --- American put (left-cone engine) ---

    fn assert_put_matches_naive(params: OptionParams, steps: usize, tol: f64) {
        let m = TopmModel::new(params, steps).unwrap();
        let want = naive::price(&m, OptionType::Put, ExerciseStyle::American, ExecMode::Serial);
        let got = price_american_put(&m, &EngineConfig::default());
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "steps={steps}: fft put {got} vs naive {want}"
        );
    }

    #[test]
    fn put_matches_naive_paper_params() {
        for steps in [1usize, 2, 3, 7, 8, 9, 50, 252, 1000, 2500] {
            assert_put_matches_naive(OptionParams::paper_defaults(), steps, 1e-9);
        }
    }

    #[test]
    fn put_matches_naive_at_large_t() {
        assert_put_matches_naive(OptionParams::paper_defaults(), 10_000, 1e-9);
    }

    #[test]
    fn put_matches_naive_across_moneyness() {
        let base = OptionParams::paper_defaults();
        for spot in [60.0, 110.0, 129.5, 131.0, 250.0] {
            assert_put_matches_naive(OptionParams { spot, ..base }, 400, 1e-9);
        }
    }

    #[test]
    fn put_matches_naive_across_vol_and_rates() {
        let base = OptionParams::paper_defaults();
        for vol in [0.08, 0.2, 0.5] {
            for (rate, div) in [(0.0163, 0.0), (0.05, 0.02), (0.001, 0.07), (0.07, 0.004)] {
                let p = OptionParams { volatility: vol, rate, dividend_yield: div, ..base };
                assert_put_matches_naive(p, 300, 1e-8);
            }
        }
    }

    #[test]
    fn zero_rate_put_equals_european() {
        let p = OptionParams { rate: 0.0, ..OptionParams::paper_defaults() };
        assert_put_matches_naive(p, 600, 1e-9);
        let m = TopmModel::new(p, 600).unwrap();
        assert_eq!(
            price_american_put(&m, &EngineConfig::default()),
            super::price_european_fft(&m, OptionType::Put)
        );
    }

    #[test]
    fn deep_itm_put_immediate_exercise() {
        let p = OptionParams {
            spot: 10.0,
            strike: 5_000.0,
            rate: 0.2,
            ..OptionParams::paper_defaults()
        };
        assert_put_matches_naive(p, 128, 1e-9);
    }

    #[test]
    fn put_boundary_drops_one_to_two_columns_per_interior_step() {
        // The span-2 drift law the left-cone engine is built around.
        let m = TopmModel::new(OptionParams::paper_defaults(), 400).unwrap();
        let t = m.steps();
        let (s0, s1, s2) = m.weights();
        let mut row: Vec<f64> = (0..=2 * t as i64).map(|j| m.exercise_put(t, j).max(0.0)).collect();
        let mut prev: Option<i64> = None;
        for i in (0..t).rev() {
            let mut f = -1i64;
            let mut next = Vec::with_capacity(2 * i + 1);
            for j in 0..=2 * i as i64 {
                let cont =
                    s0 * row[j as usize] + s1 * row[j as usize + 1] + s2 * row[j as usize + 2];
                let ex = m.exercise_put(i, j);
                if ex >= cont {
                    f = j;
                }
                next.push(cont.max(ex));
            }
            if let Some(p) = prev {
                if f >= 0 {
                    assert!(f < p && f >= p - 2, "row {i}: boundary {f} after {p}");
                }
            }
            prev = Some(f);
            row = next;
        }
    }

    #[test]
    fn boundary_samples_match_naive_boundary() {
        let m = TopmModel::new(OptionParams::paper_defaults(), 512).unwrap();
        let (_, dense) = naive::price_american_with_boundary(&m, OptionType::Call);
        let (price, samples) = price_with_boundary_samples(&m, &EngineConfig::default(), 16);
        let want = naive::price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((price - want).abs() < 1e-9 * want.max(1.0));
        assert!(samples.len() > 10, "expected a sampled frontier");
        for (i, j) in samples {
            if j <= 2 * i as i64 {
                assert_eq!(j, dense[i], "row {i}");
            } else {
                // Extended boundary beyond the hypotenuse ⇒ triangle row all red.
                assert_eq!(dense[i], 2 * i as i64, "row {i}");
            }
        }
    }

    #[test]
    fn put_boundary_samples_match_dense_tracking() {
        let m = TopmModel::new(OptionParams::paper_defaults(), 512).unwrap();
        // Dense last-green tracking: largest j with exercise ≥ continuation.
        let t = m.steps();
        let (s0, s1, s2) = m.weights();
        let mut row: Vec<f64> = (0..=2 * t as i64).map(|j| m.exercise_put(t, j).max(0.0)).collect();
        let mut dense = vec![-1i64; t]; // dense[i] = boundary of row i
        for i in (0..t).rev() {
            let mut f = -1i64;
            let mut next = Vec::with_capacity(2 * i + 1);
            for j in 0..=2 * i as i64 {
                let cont =
                    s0 * row[j as usize] + s1 * row[j as usize + 1] + s2 * row[j as usize + 2];
                let ex = m.exercise_put(i, j);
                if ex >= cont {
                    f = j;
                }
                next.push(cont.max(ex));
            }
            dense[i] = f;
            row = next;
        }
        let (price, samples) = price_put_with_boundary_samples(&m, &EngineConfig::default(), 16);
        let want = naive::price(&m, OptionType::Put, ExerciseStyle::American, ExecMode::Serial);
        assert!((price - want).abs() < 1e-9 * want.max(1.0));
        assert!(samples.len() > 10, "expected a sampled frontier");
        for &(i, f) in &samples[1..] {
            // Expiry sample (index 0) uses the leaf formula; engine rows are
            // compared against the dense tracker directly.
            assert_eq!(f, dense[i], "row {i}");
        }
    }

    #[test]
    fn boundary_sampling_price_is_bitwise_the_plain_fast_price_on_shortcuts() {
        // Y = 0 call and R = 0 put short-circuit to the European FFT pass;
        // the sampling wrappers must return exactly the plain price and the
        // lone expiry sample.
        let cfg = EngineConfig::default();
        let y0 = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let m = TopmModel::new(y0, 300).unwrap();
        let (p, s) = price_with_boundary_samples(&m, &cfg, 8);
        assert_eq!(p.to_bits(), price_american_call(&m, &cfg).to_bits());
        assert_eq!(s.len(), 1);
        let r0 = OptionParams { rate: 0.0, ..OptionParams::paper_defaults() };
        let m = TopmModel::new(r0, 300).unwrap();
        let (p, s) = price_put_with_boundary_samples(&m, &cfg, 8);
        assert_eq!(p.to_bits(), price_american_put(&m, &cfg).to_bits());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn put_agrees_with_binomial_model() {
        let p = OptionParams::paper_defaults();
        let tri = TopmModel::new(p, 2000).unwrap();
        let bin = crate::bopm::BopmModel::new(p, 2000).unwrap();
        let v_tri = price_american_put(&tri, &EngineConfig::default());
        let v_bin = crate::bopm::fast::price_american_put(&bin, &EngineConfig::default());
        assert!((v_tri - v_bin).abs() < 5e-3 * v_bin.max(1.0), "tri {v_tri} vs bin {v_bin}");
    }

    #[test]
    fn agrees_with_binomial_model() {
        // Both lattices approximate the same continuous model; at moderate T
        // their American call prices should agree to discretisation error.
        let p = OptionParams::paper_defaults();
        let tri = TopmModel::new(p, 2000).unwrap();
        let bin = crate::bopm::BopmModel::new(p, 2000).unwrap();
        let v_tri = price_american_call(&tri, &EngineConfig::default());
        let v_bin = crate::bopm::fast::price_american_call(&bin, &EngineConfig::default());
        assert!((v_tri - v_bin).abs() < 5e-3 * v_bin, "tri {v_tri} vs bin {v_bin}");
    }
}
