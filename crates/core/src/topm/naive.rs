//! The standard nested-loop trinomial pricer — `vanilla-topm` in the paper's
//! evaluation.  `Θ(T²)` work (the grid has `2i+1` cells in row `i`).

use super::TopmModel;
use crate::params::{ExerciseStyle, OptionType};
use amopt_parallel::{for_each_chunk_mut, DEFAULT_GRAIN};

/// Execution strategy for the loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, single rolling buffer.
    Serial,
    /// Row-parallel with double buffering.
    #[default]
    Parallel,
}

#[inline]
fn exercise(model: &TopmModel, opt: OptionType, i: usize, j: i64) -> f64 {
    match opt {
        OptionType::Call => model.exercise_call(i, j),
        OptionType::Put => model.exercise_put(i, j),
    }
}

/// Fills `out` with the expiry-row payoffs — the single source of truth for
/// the serial, scratch-reusing, and parallel sweeps.
fn fill_leaf_values(model: &TopmModel, opt: OptionType, out: &mut Vec<f64>) {
    let t = model.steps();
    out.clear();
    out.extend((0..=2 * t as i64).map(|j| exercise(model, opt, t, j).max(0.0)));
}

fn leaf_values(model: &TopmModel, opt: OptionType) -> Vec<f64> {
    let mut out = Vec::new();
    fill_leaf_values(model, opt, &mut out);
    out
}

/// Prices any (type, style) combination by backward induction.
pub fn price(model: &TopmModel, opt: OptionType, style: ExerciseStyle, mode: ExecMode) -> f64 {
    match mode {
        ExecMode::Serial => price_serial(model, opt, style),
        ExecMode::Parallel => price_parallel(model, opt, style),
    }
}

fn price_serial(model: &TopmModel, opt: OptionType, style: ExerciseStyle) -> f64 {
    price_with_scratch(model, opt, style, &mut Vec::new())
}

/// [`price`] with [`ExecMode::Serial`], reusing a caller-provided lattice
/// buffer so repeated pricings allocate nothing once the buffer has grown to
/// `2T + 1` slots.  Bitwise identical to the serial [`price`].
pub fn price_with_scratch(
    model: &TopmModel,
    opt: OptionType,
    style: ExerciseStyle,
    scratch: &mut Vec<f64>,
) -> f64 {
    let t = model.steps();
    let (s0, s1, s2) = model.weights();
    fill_leaf_values(model, opt, scratch);
    let g = &mut scratch[..];
    for i in (0..t).rev() {
        for j in 0..=2 * i {
            let cont = s0 * g[j] + s1 * g[j + 1] + s2 * g[j + 2];
            g[j] = match style {
                ExerciseStyle::European => cont,
                ExerciseStyle::American => cont.max(exercise(model, opt, i, j as i64)),
            };
        }
    }
    g[0]
}

fn price_parallel(model: &TopmModel, opt: OptionType, style: ExerciseStyle) -> f64 {
    let t = model.steps();
    let (s0, s1, s2) = model.weights();
    let mut cur = leaf_values(model, opt);
    let mut next = vec![0.0; 2 * t + 1];
    for i in (0..t).rev() {
        {
            let read: &[f64] = &cur;
            for_each_chunk_mut(&mut next[..=2 * i], DEFAULT_GRAIN, |offset, chunk| {
                for (k, out) in chunk.iter_mut().enumerate() {
                    let j = offset + k;
                    let cont = s0 * read[j] + s1 * read[j + 1] + s2 * read[j + 2];
                    *out = match style {
                        ExerciseStyle::European => cont,
                        ExerciseStyle::American => cont.max(exercise(model, opt, i, j as i64)),
                    };
                }
            });
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur[0]
}

/// Serial backward induction recording the per-row red–green boundary
/// (largest `j` with continuation ≥ exercise, −1 if all green), used by the
/// tests of Corollary A.6.
pub fn price_american_with_boundary(model: &TopmModel, opt: OptionType) -> (f64, Vec<i64>) {
    let t = model.steps();
    let (s0, s1, s2) = model.weights();
    let mut g = leaf_values(model, opt);
    let mut boundary = vec![0i64; t + 1];
    boundary[t] = {
        let mut b = -1;
        for j in 0..=2 * t as i64 {
            if exercise(model, opt, t, j) <= 0.0 {
                b = b.max(j);
            }
        }
        b
    };
    for i in (0..t).rev() {
        let mut b = -1i64;
        for j in 0..=2 * i {
            let cont = s0 * g[j] + s1 * g[j + 1] + s2 * g[j + 2];
            let ex = exercise(model, opt, i, j as i64);
            if cont >= ex {
                b = b.max(j as i64);
            }
            g[j] = cont.max(ex);
        }
        boundary[i] = b;
    }
    (g[0], boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OptionParams;

    fn model(steps: usize) -> TopmModel {
        TopmModel::new(OptionParams::paper_defaults(), steps).unwrap()
    }

    #[test]
    fn one_step_tree_by_hand() {
        let m = model(1);
        let (s0, s1, s2) = m.weights();
        let leaves: Vec<f64> = (0..3).map(|j| m.exercise_call(1, j).max(0.0)).collect();
        let want = (s0 * leaves[0] + s1 * leaves[1] + s2 * leaves[2]).max(m.exercise_call(0, 0));
        let got = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn serial_and_parallel_agree() {
        for steps in [1usize, 2, 9, 252, 700] {
            let m = model(steps);
            for opt in [OptionType::Call, OptionType::Put] {
                for style in [ExerciseStyle::European, ExerciseStyle::American] {
                    let a = price(&m, opt, style, ExecMode::Serial);
                    let b = price(&m, opt, style, ExecMode::Parallel);
                    assert!(
                        (a - b).abs() < 1e-9 * a.abs().max(1.0),
                        "steps={steps} {opt:?} {style:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn american_dominates_european() {
        let m = model(400);
        for opt in [OptionType::Call, OptionType::Put] {
            let eu = price(&m, opt, ExerciseStyle::European, ExecMode::Serial);
            let am = price(&m, opt, ExerciseStyle::American, ExecMode::Serial);
            assert!(am >= eu - 1e-12);
        }
    }

    #[test]
    fn converges_to_black_scholes_european() {
        let p = OptionParams::paper_defaults();
        let bs = crate::analytic::black_scholes_price(&p, OptionType::Call).unwrap();
        let m = TopmModel::new(p, 2000).unwrap();
        let v = price(&m, OptionType::Call, ExerciseStyle::European, ExecMode::Serial);
        assert!((v - bs).abs() < 5e-3, "{v} vs {bs}");
    }

    #[test]
    fn trinomial_converges_faster_than_binomial() {
        // Langat et al. (cited in §3): TOPM reaches a given accuracy with
        // about half the steps of BOPM.  Verify TOPM at T is at least as
        // close to Black–Scholes as BOPM at T for the European call.
        let p = OptionParams::paper_defaults();
        let bs = crate::analytic::black_scholes_price(&p, OptionType::Call).unwrap();
        let t = 400usize;
        let tri = TopmModel::new(p, t).unwrap();
        let bin = crate::bopm::BopmModel::new(p, t).unwrap();
        let tri_err =
            (price(&tri, OptionType::Call, ExerciseStyle::European, ExecMode::Serial) - bs).abs();
        let bin_err = (crate::bopm::naive::price(
            &bin,
            OptionType::Call,
            ExerciseStyle::European,
            crate::bopm::naive::ExecMode::Serial,
        ) - bs)
            .abs();
        assert!(tri_err <= bin_err * 1.2, "tri {tri_err} vs bin {bin_err}");
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        let mut scratch = Vec::new();
        for steps in [5usize, 200, 64] {
            let m = model(steps);
            let want = price(&m, OptionType::Call, ExerciseStyle::American, ExecMode::Serial);
            let got =
                price_with_scratch(&m, OptionType::Call, ExerciseStyle::American, &mut scratch);
            assert_eq!(got.to_bits(), want.to_bits(), "steps={steps}");
        }
    }

    #[test]
    fn boundary_satisfies_corollary_a6() {
        let m = model(500);
        let (_, b) = price_american_with_boundary(&m, OptionType::Call);
        for i in 0..m.steps() {
            // Within the triangle the boundary drifts left by at most one.
            if b[i + 1] <= 2 * i as i64 {
                assert!(b[i] <= b[i + 1], "i={i}");
                assert!(b[i] >= b[i + 1] - 1, "i={i}");
            }
        }
    }
}
