//! European trinomial pricing in `O(T log T)` — one correlation of the
//! (bounded) put payoff row with `kernel^{⊛T}`, calls via exact lattice
//! put–call parity (see `bopm::european` for the dynamic-range rationale).

use super::TopmModel;
use crate::params::OptionType;
use amopt_fft::correlate_power_valid;

/// European option price via one FFT pass over the payoff row.
pub fn price_european_fft(model: &TopmModel, opt: OptionType) -> f64 {
    let put = price_put(model);
    match opt {
        OptionType::Put => put,
        OptionType::Call => {
            let t = model.steps() as u64;
            let (s0, s1, s2) = model.weights();
            let mu = s0 + s1 + s2;
            let fwd = model.params().spot * pow_u(model.lambda(), t)
                - model.params().strike * pow_u(mu, t);
            put + fwd
        }
    }
}

#[inline]
fn pow_u(base: f64, h: u64) -> f64 {
    debug_assert!(base > 0.0);
    (h as f64 * base.ln()).exp()
}

fn price_put(model: &TopmModel) -> f64 {
    let t = model.steps();
    let strike = model.params().strike;
    let payoff: Vec<f64> = (0..=2 * t as i64)
        .map(|j| OptionType::Put.payoff(model.node_price(t, j), strike))
        .collect();
    if t == 0 {
        return payoff[0];
    }
    let kernel = model.kernel();
    let out = correlate_power_valid(&payoff, kernel.weights(), t as u64);
    debug_assert_eq!(out.len(), 1);
    out[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ExerciseStyle, OptionParams};
    use crate::topm::naive::{self, ExecMode};

    #[test]
    fn matches_naive_european() {
        for steps in [1usize, 2, 37, 252, 1500] {
            let m = TopmModel::new(OptionParams::paper_defaults(), steps).unwrap();
            for opt in [OptionType::Call, OptionType::Put] {
                let want = naive::price(&m, opt, ExerciseStyle::European, ExecMode::Serial);
                let got = price_european_fft(&m, opt);
                assert!(
                    (got - want).abs() < 1e-9 * want.abs().max(1.0),
                    "steps={steps} {opt:?}: fft {got} vs naive {want}"
                );
            }
        }
    }

    #[test]
    fn stays_accurate_at_large_t() {
        let p = OptionParams::paper_defaults();
        let bs = crate::analytic::black_scholes_price(&p, OptionType::Call).unwrap();
        let m = TopmModel::new(p, 30_000).unwrap();
        let v = price_european_fft(&m, OptionType::Call);
        assert!((v - bs).abs() < 1e-3, "{v} vs {bs}");
    }
}
