//! Trinomial Option Pricing Model (Boyle lattice), §3 and Appendix A of the
//! paper.
//!
//! A `T`-step trinomial tree embeds in a `(T+1)×(2T+1)` grid: node `(i, j)`
//! (row `i`, column `j ∈ [0, 2i]`) carries price `S·u^{j−i}` with
//! `u = e^{V√(2Δt)}`.  Children of `(i,j)` are `(i+1, j)` (down, factor
//! `1/u`), `(i+1, j+1)` (unchanged), `(i+1, j+2)` (up, factor `u`).
//!
//! Transition probabilities (Boyle, in the alternate form of the paper):
//! with `b = e^{(R−Y)Δt/2}`, `√u = e^{V√(Δt/2)}`:
//!
//! * `p_u = ((b − 1/√u)/(√u − 1/√u))²`
//! * `p_d = ((√u − b)/(√u − 1/√u))²`
//! * `p_o = 1 − p_u − p_d`
//!
//! Discounted weights in column order: `s0 = m·p_d` (down child at `j`),
//! `s1 = m·p_o`, `s2 = m·p_u` — §3 of the paper lists `s0 = m·p_u`, which
//! contradicts its own Appendix A value formula; we use the financially
//! correct assignment (see DESIGN.md "errata").
//!
//! These probabilities satisfy `p_d/u + p_o + p_u·u = e^{(R−Y)Δt}` *exactly*
//! (shown by factoring the quadratics), so the node function
//! `φ(i, j) = S·u^{j−i}` is an eigenfunction of the stencil with eigenvalue
//! `λ = e^{−YΔt}`, just as in the binomial model.

pub mod european;
pub mod fast;
pub mod naive;

use crate::error::{PricingError, Result};
use crate::params::OptionParams;
use amopt_stencil::StencilKernel;

/// A fully derived trinomial lattice model.
#[derive(Debug, Clone)]
pub struct TopmModel {
    params: OptionParams,
    steps: usize,
    dt: f64,
    up: f64,
    ln_up: f64,
    p_up: f64,
    p_mid: f64,
    p_down: f64,
    /// Discounted weight on the down child `(i+1, j)`.
    s0: f64,
    /// Discounted weight on the middle child `(i+1, j+1)`.
    s1: f64,
    /// Discounted weight on the up child `(i+1, j+2)`.
    s2: f64,
    discount: f64,
}

impl TopmModel {
    /// Derives lattice quantities for a `steps`-step trinomial tree.
    pub fn new(params: OptionParams, steps: usize) -> Result<Self> {
        let params = params.validated()?;
        if steps == 0 {
            return Err(PricingError::InvalidParams {
                field: "steps",
                reason: "need at least one time step".into(),
            });
        }
        let dt = params.dt(steps);
        let ln_up = params.volatility * (2.0 * dt).sqrt();
        let up = ln_up.exp();
        let sqrt_u = (ln_up / 2.0).exp();
        let sqrt_d = 1.0 / sqrt_u;
        let b = ((params.rate - params.dividend_yield) * dt / 2.0).exp();
        let p_up = ((b - sqrt_d) / (sqrt_u - sqrt_d)).powi(2);
        let p_down = ((sqrt_u - b) / (sqrt_u - sqrt_d)).powi(2);
        let p_mid = 1.0 - p_up - p_down;
        for (name, p) in [("p_u", p_up), ("p_d", p_down), ("p_o", p_mid)] {
            if !(p > 0.0 && p < 1.0) {
                return Err(PricingError::UnstableDiscretisation {
                    reason: format!(
                        "trinomial probability {name} = {p:.6} outside (0,1); \
                         adjust steps or |R−Y| relative to V"
                    ),
                });
            }
        }
        let discount = (-params.rate * dt).exp();
        Ok(TopmModel {
            params,
            steps,
            dt,
            up,
            ln_up,
            p_up,
            p_mid,
            p_down,
            s0: discount * p_down,
            s1: discount * p_mid,
            s2: discount * p_up,
            discount,
        })
    }

    /// The market/contract parameters this lattice was built from.
    #[inline]
    pub fn params(&self) -> &OptionParams {
        &self.params
    }

    /// Number of time steps `T`.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Per-step interval `Δt`.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Up factor `u = e^{V√(2Δt)}`.
    #[inline]
    pub fn up(&self) -> f64 {
        self.up
    }

    /// Up/middle/down probabilities `(p_u, p_o, p_d)`.
    #[inline]
    pub fn probabilities(&self) -> (f64, f64, f64) {
        (self.p_up, self.p_mid, self.p_down)
    }

    /// Discounted weights `(s0, s1, s2)` on children `(j, j+1, j+2)`.
    #[inline]
    pub fn weights(&self) -> (f64, f64, f64) {
        (self.s0, self.s1, self.s2)
    }

    /// Per-step discount factor `m = e^{−RΔt}`.
    #[inline]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Asset price at node `(i, j)`: `S·u^{j−i}`.
    #[inline]
    pub fn node_price(&self, i: usize, j: i64) -> f64 {
        self.params.spot * ((j - i as i64) as f64 * self.ln_up).exp()
    }

    /// Call exercise value at `(i, j)`: `S·u^{j−i} − K` (no floor).
    #[inline]
    pub fn exercise_call(&self, i: usize, j: i64) -> f64 {
        self.node_price(i, j) - self.params.strike
    }

    /// Put exercise value at `(i, j)`: `K − S·u^{j−i}`.
    #[inline]
    pub fn exercise_put(&self, i: usize, j: i64) -> f64 {
        self.params.strike - self.node_price(i, j)
    }

    /// The one-step linear stencil `[s0, s1, s2]` with anchor 0.
    pub fn kernel(&self) -> StencilKernel {
        StencilKernel::new(vec![self.s0, self.s1, self.s2], 0)
    }

    /// Eigenvalue of the node function: `λ = s0/u + s1 + s2·u = e^{−YΔt}`
    /// up to rounding; computed from the actual taps for consistency with
    /// the FFT path.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.s0 / self.up + self.s1 + self.s2 * self.up
    }

    /// Largest leaf column whose call exercise value is non-positive —
    /// the red–green boundary of the expiry row on the column-unbounded
    /// extension (see `bopm::BopmModel::leaf_call_boundary` for why it is
    /// not clamped to the triangle width `2T`).
    pub fn leaf_call_boundary(&self) -> i64 {
        let t = self.steps as i64;
        // S·u^{j−T} ≤ K  ⇔  j ≤ T + ln(K/S)/ln u
        let est = t as f64 + (self.params.strike / self.params.spot).ln() / self.ln_up;
        let mut j = est.floor() as i64;
        j = j.max(-1);
        while self.exercise_call(self.steps, j + 1) <= 0.0 {
            j += 1;
        }
        while j >= 0 && self.exercise_call(self.steps, j) > 0.0 {
            j -= 1;
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(steps: usize) -> TopmModel {
        TopmModel::new(OptionParams::paper_defaults(), steps).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one_and_are_positive() {
        let m = model(252);
        let (pu, po, pd) = m.probabilities();
        assert!(pu > 0.0 && po > 0.0 && pd > 0.0);
        assert!((pu + po + pd - 1.0).abs() < 1e-14);
    }

    #[test]
    fn first_moment_is_exact() {
        // p_d/u + p_o + p_u·u = e^{(R−Y)Δt} exactly (factoring identity).
        let m = model(100);
        let (pu, po, pd) = m.probabilities();
        let lhs = pd / m.up() + po + pu * m.up();
        let rhs = ((m.params().rate - m.params().dividend_yield) * m.dt()).exp();
        assert!((lhs - rhs).abs() < 1e-14, "{lhs} vs {rhs}");
    }

    #[test]
    fn lambda_equals_dividend_discount() {
        let m = model(64);
        let want = (-m.params().dividend_yield * m.dt()).exp();
        assert!((m.lambda() - want).abs() < 1e-13);
    }

    #[test]
    fn node_prices_follow_tree_structure() {
        let m = model(50);
        assert!((m.node_price(0, 0) - m.params().spot).abs() < 1e-12);
        assert!((m.node_price(4, 3) * m.up() - m.node_price(5, 5)).abs() < 1e-9);
        assert!((m.node_price(4, 3) - m.node_price(5, 4)).abs() < 1e-9);
        assert!((m.node_price(4, 3) / m.up() - m.node_price(5, 3)).abs() < 1e-9);
    }

    #[test]
    fn leaf_boundary_is_exact_crossover() {
        for steps in [1usize, 5, 252, 1000] {
            let m = model(steps);
            let j = m.leaf_call_boundary();
            if j >= 0 {
                assert!(m.exercise_call(steps, j) <= 0.0);
            }
            assert!(m.exercise_call(steps, j + 1) > 0.0);
        }
    }

    #[test]
    fn kernel_weights_order_is_down_mid_up() {
        let m = model(10);
        let k = m.kernel();
        let (s0, s1, s2) = m.weights();
        assert_eq!(k.weights(), &[s0, s1, s2]);
        let (pu, po, pd) = m.probabilities();
        assert!((s0 - m.discount() * pd).abs() < 1e-15);
        assert!((s1 - m.discount() * po).abs() < 1e-15);
        assert!((s2 - m.discount() * pu).abs() < 1e-15);
    }

    #[test]
    fn rejects_zero_steps_and_degenerate_probabilities() {
        assert!(TopmModel::new(OptionParams::paper_defaults(), 0).is_err());
        let bad = OptionParams { rate: 3.0, volatility: 0.01, ..OptionParams::paper_defaults() };
        assert!(TopmModel::new(bad, 2).is_err());
    }
}
