//! Batch pricing subsystem: one entry point for heterogeneous books of
//! options.
//!
//! The paper's `O(T log² T)` pricers make a *single* repricing cheap; at
//! portfolio scale the bottleneck moves to orchestration — callers
//! hand-picking model modules, allocating buffers per contract, and looping
//! sequentially.  This module owns that orchestration:
//!
//! * [`PricingRequest`] names any contract the workspace can price — model
//!   ([`ModelKind`]) × call/put × exercise [`Style`] × parameters × steps —
//!   in one plain-data value;
//! * [`BatchPricer::price_batch`] prices a request slice in parallel over
//!   the `amopt-parallel` fork-join pool; every routed pricer is one of the
//!   fast `O(T log² T)` trapezoid engines (American puts included, via the
//!   left-cone engine), which draw per-worker scratch (FFT buffers, staging
//!   rows) from `amopt-stencil`'s process-wide `WorkspacePool` — so the hot
//!   loop is allocation-light after warm-up;
//! * identical requests inside a batch are **deduplicated** (priced once,
//!   scattered to every duplicate), and results are **memoized** across
//!   batches in an LRU keyed on quantized parameters — a market tick that
//!   leaves most of the book unchanged reprices only what moved;
//! * the memo is **sharded** by key hash ([`DEFAULT_MEMO_SHARDS`] shards,
//!   one lock each): probes take only their shard's lock and the probe
//!   phase itself runs in parallel across shards, so the cache scales past
//!   one core instead of serialising every batch behind a single mutex;
//! * every request gets its own `Result`: one invalid contract never poisons
//!   the rest of the batch.
//!
//! A batch of one is *bitwise identical* to calling the underlying pricer
//! directly — the dispatcher adds routing, never arithmetic.
//!
//! Derived quantities route through the same machinery: [`greeks`] expresses
//! finite-difference bump ladders as batch requests, [`surface`] inverts
//! whole implied-volatility surfaces with one batch per bracketing round,
//! and [`boundary`] extracts early-exercise frontiers for a contract set
//! with the same dedup → parallel fan-out → scatter pattern.
//!
//! ```
//! use amopt_core::batch::{BatchPricer, ModelKind, PricingRequest};
//! use amopt_core::{EngineConfig, OptionParams, OptionType};
//!
//! let pricer = BatchPricer::new(EngineConfig::default());
//! let base = OptionParams::paper_defaults();
//! let book: Vec<PricingRequest> = (0..8)
//!     .map(|i| OptionParams { strike: 100.0 + 5.0 * i as f64, ..base })
//!     .map(|p| PricingRequest::american(ModelKind::Bopm, OptionType::Call, p, 512))
//!     .collect();
//! let prices = pricer.price_batch(&book);
//! assert!(prices.iter().all(|p| p.is_ok()));
//! ```

pub mod boundary;
pub mod greeks;
pub mod surface;

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::bermudan;
use crate::bopm::{self, BopmModel};
use crate::bsm::{self, BsmModel};
use crate::engine::EngineConfig;
use crate::error::{PricingError, Result};
use crate::params::{OptionParams, OptionType};
use crate::topm::{self, TopmModel};

/// Which discretisation family prices the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Binomial lattice (§2 of the paper).
    Bopm,
    /// Trinomial lattice (§3 / App. A).
    Topm,
    /// Black–Scholes–Merton explicit finite difference (§4); put only,
    /// dividend-free.
    Bsm,
}

/// Exercise rights of a batch request.
///
/// Extends the facade's two-valued [`ExerciseStyle`](crate::params::ExerciseStyle)
/// with the Bermudan schedule, which needs its exercise dates alongside.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Style {
    /// Exercisable only at expiry.
    European,
    /// Exercisable at any time up to expiry.
    American,
    /// Exercisable only at the given lattice steps (market steps in
    /// `(0, T]`; duplicates and ordering are normalised away).
    Bermudan(Vec<usize>),
}

impl Style {
    fn name(&self) -> &'static str {
        match self {
            Style::European => "European",
            Style::American => "American",
            Style::Bermudan(_) => "Bermudan",
        }
    }
}

/// One contract to price: the full model × type × style × parameters cross
/// product in a plain-data value.
///
/// Combinations without a pricer in this crate (Bermudan other than the BOPM
/// put, any call under the BSM grid) come back as
/// [`PricingError::Unsupported`] — per request, so they never poison a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingRequest {
    /// Discretisation family.
    pub model: ModelKind,
    /// Call or put.
    pub option_type: OptionType,
    /// Exercise rights.
    pub style: Style,
    /// Market/contract parameters.
    pub params: OptionParams,
    /// Lattice/grid time steps `T`.
    pub steps: usize,
}

impl PricingRequest {
    /// An American-exercise request.
    pub fn american(
        model: ModelKind,
        option_type: OptionType,
        params: OptionParams,
        steps: usize,
    ) -> Self {
        PricingRequest { model, option_type, style: Style::American, params, steps }
    }

    /// A European-exercise request.
    pub fn european(
        model: ModelKind,
        option_type: OptionType,
        params: OptionParams,
        steps: usize,
    ) -> Self {
        PricingRequest { model, option_type, style: Style::European, params, steps }
    }

    /// A Bermudan put under the binomial lattice (the one Bermudan pricer in
    /// the workspace), exercisable at `exercise_steps`.
    pub fn bermudan_put(params: OptionParams, steps: usize, exercise_steps: Vec<usize>) -> Self {
        PricingRequest {
            model: ModelKind::Bopm,
            option_type: OptionType::Put,
            style: Style::Bermudan(exercise_steps),
            params,
            steps,
        }
    }
}

/// Absolute quantisation grid for memo keys: parameters equal to within
/// `1e-9` share a cache entry.  At that spacing the price difference is far
/// below every pricer's own discretisation error, while honest parameter
/// changes (a strike ladder, a vol bump) always land on distinct keys.
const QUANT: f64 = 1e9;

/// Finer grid for the **volatility** field (cells of `1e-13`).
///
/// Volatility is the one dimension a root-finder sweeps: the implied-vol
/// surface driver ([`surface`]) accepts a probe only when its price residual
/// drops below `1e-10`, which at typical vegas requires resolving vols a few
/// `1e-12` apart.  Under the coarse `1e-9` grid those probes alias onto one
/// memo cell, so the cache would keep answering with a neighbouring probe's
/// price and the inversion could never converge.  `1e-13` keeps distinct
/// probes distinct while still folding float-representation noise (relative
/// `1e-16` on vols ≤ 5) onto one key.
const QUANT_VOL: f64 = 1e13;

/// A quantized parameter: grid cells for the magnitudes the grid can
/// represent exactly, raw bit identity for everything else.  The two
/// variants never compare equal, so a saturating cast can't silently
/// collide a huge spot with a moderate one (or NaN with a tiny rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Quantized {
    Grid(i64),
    Bits(u64),
}

fn quantize_on(x: f64, grid: f64) -> Quantized {
    let scaled = x * grid;
    // i64 holds ±9.2e18, so any |scaled| comfortably inside that range
    // round-trips through the cast without saturating.
    if scaled.is_finite() && scaled.abs() < 9.0e18 {
        Quantized::Grid(scaled.round() as i64)
    } else {
        // Off-grid magnitudes, infinities, NaN: exact bit identity — no
        // noise folding out there, but no cross-request collisions either.
        Quantized::Bits(x.to_bits())
    }
}

fn quantize(x: f64) -> Quantized {
    quantize_on(x, QUANT)
}

/// Normalised identity of a request: model/type/style tag, steps, quantized
/// parameters, and the sorted-deduped Bermudan schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    model: ModelKind,
    option_type: OptionType,
    style_tag: u8,
    steps: usize,
    quantized: [Quantized; 6],
    /// Sorted, deduplicated exercise schedule; empty unless Bermudan.
    dates: Box<[usize]>,
}

fn make_key(req: &PricingRequest) -> MemoKey {
    let (style_tag, dates) = match &req.style {
        Style::European => (0, Box::default()),
        Style::American => (1, Box::default()),
        Style::Bermudan(steps) => {
            let mut d = steps.clone();
            d.sort_unstable();
            d.dedup();
            (2, d.into_boxed_slice())
        }
    };
    let p = &req.params;
    MemoKey {
        model: req.model,
        option_type: req.option_type,
        style_tag,
        steps: req.steps,
        quantized: [
            quantize(p.spot),
            quantize(p.strike),
            quantize(p.rate),
            quantize_on(p.volatility, QUANT_VOL),
            quantize(p.dividend_yield),
            quantize(p.expiry),
        ],
        dates,
    }
}

/// Bounded price memo with least-recently-used eviction.
///
/// Intended for small capacities (hundreds of entries): eviction scans the
/// map for the stalest stamp, `O(capacity)`, which is noise next to a single
/// lattice pricing.
#[derive(Debug)]
struct LruMemo {
    map: HashMap<MemoKey, (u64, f64)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruMemo {
    fn new(capacity: usize) -> Self {
        LruMemo { map: HashMap::new(), capacity, clock: 0, hits: 0, misses: 0, evictions: 0 }
    }

    fn get(&mut self, key: &MemoKey) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.0 = self.clock;
                self.hits += 1;
                Some(entry.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: MemoKey, price: f64) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let stalest =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone());
            if let Some(stalest) = stalest {
                self.map.remove(&stalest);
                self.evictions += 1;
            }
        }
        self.clock += 1;
        self.map.insert(key, (self.clock, price));
    }
}

/// Price memo sharded by key hash: each shard is an independent
/// [`LruMemo`] behind its own lock, so concurrent probes for keys in
/// different shards never contend and the eviction scan is bounded by the
/// *per-shard* capacity.
///
/// Shard selection hashes the full [`MemoKey`] with the standard library's
/// default (SipHash) hasher under fixed keys, so a key's shard is
/// deterministic for the lifetime of the process — a prerequisite for the
/// one-lock-per-shard-per-batch probe phase.
#[derive(Debug)]
struct ShardedMemo {
    shards: Box<[Mutex<LruMemo>]>,
    /// `false` when total capacity is 0: the probe and publish phases are
    /// skipped wholesale (no key hashing, no shard fan-out) — memo-less
    /// pricers like the serial greeks facades stay pure dispatch.
    enabled: bool,
}

impl ShardedMemo {
    /// `capacity` is the total across shards; each shard gets
    /// `capacity.div_ceil(shards)` entries, so the effective total rounds up
    /// to a shard multiple (`0` stays `0`: memo disabled).
    fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedMemo {
            shards: (0..shards).map(|_| Mutex::new(LruMemo::new(per_shard))).collect(),
            enabled: capacity > 0,
        }
    }

    fn shard_of(&self, key: &MemoKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, LruMemo> {
        self.shards[shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Point-in-time memo counters, from [`BatchPricer::memo_stats`],
/// aggregated over every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Probes answered from the memo.
    pub hits: u64,
    /// Probes that required a fresh pricing.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Effective total capacity, summed over shards (0 = memo disabled).
    pub capacity: usize,
    /// Number of independent memo shards.
    pub shards: usize,
}

/// Default memo capacity: big enough for a few books of distinct contracts,
/// small enough that the per-shard `O(capacity / shards)` eviction scan
/// stays invisible.
pub const DEFAULT_MEMO_CAPACITY: usize = 512;

/// Default shard count for the memo.
///
/// Eight shards keep lock contention negligible up to a few tens of worker
/// threads (probes for distinct keys collide on a lock with probability
/// `1/8`) while the per-batch probe fan-out (one task per shard) stays
/// cheap enough to be harmless on a single core.  Override with
/// [`BatchPricer::with_memo_config`].
pub const DEFAULT_MEMO_SHARDS: usize = 8;

/// Batched pricing engine: dedup → memo probe → parallel price → scatter.
///
/// Cheap to keep alive and share (`&BatchPricer` is `Sync`); the memo and
/// workspace pool amortise across successive [`price_batch`] calls, which is
/// where the subsystem earns its keep on repeated market ticks.
///
/// [`price_batch`]: BatchPricer::price_batch
#[derive(Debug)]
pub struct BatchPricer {
    cfg: EngineConfig,
    grain: usize,
    memo: ShardedMemo,
}

impl BatchPricer {
    /// A pricer with the default memo capacity and shard count.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_memo_capacity(cfg, DEFAULT_MEMO_CAPACITY)
    }

    /// A pricer whose memo holds roughly `capacity` prices across
    /// [`DEFAULT_MEMO_SHARDS`] shards (`0` disables memoization entirely;
    /// in-batch deduplication still applies).
    ///
    /// Capacity is split evenly across shards, rounding the per-shard share
    /// up, so the effective total is `shards * ceil(capacity / shards)`.
    /// Callers that need exact-capacity (or single-shard, globally-ordered
    /// LRU) semantics should use [`with_memo_config`] with `shards = 1`.
    ///
    /// [`with_memo_config`]: BatchPricer::with_memo_config
    pub fn with_memo_capacity(cfg: EngineConfig, capacity: usize) -> Self {
        Self::with_memo_config(cfg, capacity, DEFAULT_MEMO_SHARDS)
    }

    /// A pricer with explicit memo `capacity` (total, split across shards)
    /// and `shards` (clamped to at least 1).
    ///
    /// More shards reduce lock contention between concurrent probes but
    /// fragment the LRU: eviction order is maintained *per shard*, so a
    /// sharded memo may evict an entry that a single globally-ordered LRU of
    /// the same total capacity would have kept.  Prices are unaffected —
    /// eviction only ever causes recomputation, and every pricer is
    /// deterministic — so results are bitwise identical for any shard count.
    pub fn with_memo_config(cfg: EngineConfig, capacity: usize, shards: usize) -> Self {
        BatchPricer { cfg, grain: 1, memo: ShardedMemo::new(capacity, shards) }
    }

    /// Sets the fork-join grain: number of unique requests per leaf task.
    /// The default of 1 is right for lattice-sized work items; raise it only
    /// for huge batches of very small contracts.
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// The engine configuration every routed pricer runs under.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current memo counters, aggregated over every shard.
    pub fn memo_stats(&self) -> MemoStats {
        let mut stats = MemoStats { shards: self.memo.shards.len(), ..MemoStats::default() };
        for shard in 0..self.memo.shards.len() {
            let memo = self.memo.lock(shard);
            stats.hits += memo.hits;
            stats.misses += memo.misses;
            stats.evictions += memo.evictions;
            stats.entries += memo.map.len();
            stats.capacity += memo.capacity;
        }
        stats
    }

    /// Whether the memo currently holds `request`'s key, without touching
    /// LRU recency or the hit/miss counters — an observability probe, not a
    /// lookup.  Always `false` when the memo is disabled.
    pub fn memo_peek(&self, request: &PricingRequest) -> bool {
        if !self.memo.enabled {
            return false;
        }
        let key = make_key(request);
        self.memo.lock(self.memo.shard_of(&key)).map.contains_key(&key)
    }

    /// Drops every memoized price (counters are kept).
    pub fn clear_memo(&self) {
        for shard in 0..self.memo.shards.len() {
            self.memo.lock(shard).map.clear();
        }
    }

    /// Prices a single request through the full batch machinery (dedup is
    /// trivial; the memo still applies).
    pub fn price_one(&self, request: &PricingRequest) -> Result<f64> {
        self.price_batch(std::slice::from_ref(request))
            .pop()
            .expect("one request in, one result out")
    }

    /// Prices every request, in parallel across *unique* requests, returning
    /// one `Result` per input slot (order-preserving).
    ///
    /// Requests that normalise to the same memo key are priced once and
    /// the result is scattered to every duplicate; memoized prices from
    /// earlier batches short-circuit pricing entirely.  Errors (invalid
    /// parameters, unstable discretisations, unsupported combinations) are
    /// confined to their own slots and never cached.
    pub fn price_batch(&self, requests: &[PricingRequest]) -> Vec<Result<f64>> {
        // amopt-lint: hot-path
        // amopt-lint: allow-scope(hot-path-alloc) -- dedup/scatter fan-out buffers are O(batch), amortised across the coalesced batch; per-step pricing work draws on pooled scratch
        // Phase 1 (serial): normalise and deduplicate.  `jobs` keeps the
        // first-occurrence request index alongside the normalised key.
        let mut unique: HashMap<MemoKey, usize> = HashMap::new();
        let mut jobs: Vec<(usize, MemoKey)> = Vec::new();
        let mut assignment = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let key = make_key(req);
            let slot = match unique.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(v) => {
                    let slot = jobs.len();
                    jobs.push((i, v.key().clone()));
                    v.insert(slot);
                    slot
                }
            };
            assignment.push(slot);
        }
        // Phase 2 (parallel): memo probe, sharded by key hash.  Jobs are
        // grouped by shard so each worker takes exactly one shard lock for
        // its whole group — shards never contend with each other, and the
        // groups themselves probe concurrently.  A disabled memo (capacity
        // 0, e.g. the serial greeks facades) skips the hashing and shard
        // fan-out entirely: every probe would be a guaranteed miss.
        let shard_of_job: Vec<usize> = if self.memo.enabled {
            jobs.iter().map(|(_, key)| self.memo.shard_of(key)).collect()
        } else {
            Vec::new()
        };
        let mut slot_results: Vec<Option<Result<f64>>> = vec![None; jobs.len()];
        if self.memo.enabled && jobs.len() <= self.memo.shards.len() {
            // Small batches (greeks ladders, a surface round's convergence
            // tail) probe serially: a lock per job costs less than grouping
            // into shards and forking over mostly-empty buckets.
            for (slot, (_, key)) in jobs.iter().enumerate() {
                slot_results[slot] = self.memo.lock(shard_of_job[slot]).get(key).map(Ok);
            }
        } else if self.memo.enabled {
            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.memo.shards.len()];
            for (slot, &shard) in shard_of_job.iter().enumerate() {
                by_shard[shard].push(slot);
            }
            let probed: Vec<Vec<(usize, Option<f64>)>> =
                amopt_parallel::parallel_map_slice(&by_shard, 1, |shard, slots| {
                    if slots.is_empty() {
                        return Vec::new();
                    }
                    let mut memo = self.memo.lock(shard);
                    slots.iter().map(|&slot| (slot, memo.get(&jobs[slot].1))).collect()
                });
            for (slot, hit) in probed.into_iter().flatten() {
                slot_results[slot] = hit.map(Ok);
            }
        }
        // Phase 3 (parallel): price what the memo did not know.  Per-worker
        // scratch (FFT buffers, staging rows) lives in `amopt-stencil`'s
        // process-wide pool, which every trapezoid engine checks out of, so
        // this loop allocates only the rows the pricers actually keep.
        let todo: Vec<usize> = (0..jobs.len()).filter(|&s| slot_results[s].is_none()).collect();
        let computed = amopt_parallel::parallel_map(todo.len(), self.grain, |k| {
            let (req_idx, key) = &jobs[todo[k]];
            Some(self.route(&requests[*req_idx], &key.dates))
        });
        // Phase 4 (serial, one lock acquisition per touched shard): publish
        // fresh prices to the memo and the slots.  Errors are never cached;
        // a disabled memo publishes nothing; small batches insert directly
        // (a lock per fresh price) instead of grouping by shard.
        let group_publish = self.memo.enabled && jobs.len() > self.memo.shards.len();
        let mut publish: Vec<Vec<(usize, f64)>> =
            if group_publish { vec![Vec::new(); self.memo.shards.len()] } else { Vec::new() };
        for (slot, res) in todo.into_iter().zip(computed) {
            let res = res.expect("parallel_map fills every slot");
            if let Ok(price) = res {
                if group_publish {
                    publish[shard_of_job[slot]].push((slot, price));
                } else if self.memo.enabled {
                    self.memo.lock(shard_of_job[slot]).insert(jobs[slot].1.clone(), price);
                }
            }
            slot_results[slot] = Some(res);
        }
        for (shard, fresh) in publish.into_iter().enumerate() {
            if fresh.is_empty() {
                continue;
            }
            let mut memo = self.memo.lock(shard);
            for (slot, price) in fresh {
                memo.insert(jobs[slot].1.clone(), price);
            }
        }
        // Phase 5: scatter unique results back to request order.
        assignment
            .into_iter()
            .map(|slot| slot_results[slot].clone().expect("every slot resolved"))
            .collect()
    }

    /// Routes one request to its canonical pricer.  `dates` is the
    /// normalised Bermudan schedule from the request's key (unused
    /// otherwise).  Adds no arithmetic of its own: a batch of one is bitwise
    /// identical to the direct call.
    fn route(&self, req: &PricingRequest, dates: &[usize]) -> Result<f64> {
        // amopt-lint: hot-path
        let unsupported = || {
            Err(PricingError::Unsupported {
                what: format!(
                    "{:?} {:?} with {} exercise has no pricer in this workspace",
                    req.model,
                    req.option_type,
                    req.style.name()
                ),
            })
        };
        match req.model {
            ModelKind::Bopm => {
                let model = BopmModel::new(req.params, req.steps)?;
                match (&req.style, req.option_type) {
                    (Style::American, OptionType::Call) => {
                        Ok(bopm::fast::price_american_call(&model, &self.cfg))
                    }
                    (Style::American, OptionType::Put) => {
                        Ok(bopm::fast::price_american_put(&model, &self.cfg))
                    }
                    (Style::European, opt) => Ok(bopm::european::price_european_fft(&model, opt)),
                    (Style::Bermudan(_), OptionType::Put) => {
                        bermudan::price_bermudan_put_fft(&model, dates, self.cfg.backend)
                    }
                    (Style::Bermudan(_), OptionType::Call) => unsupported(),
                }
            }
            ModelKind::Topm => {
                let model = TopmModel::new(req.params, req.steps)?;
                match (&req.style, req.option_type) {
                    (Style::American, OptionType::Call) => {
                        Ok(topm::fast::price_american_call(&model, &self.cfg))
                    }
                    (Style::American, OptionType::Put) => {
                        Ok(topm::fast::price_american_put(&model, &self.cfg))
                    }
                    (Style::European, opt) => Ok(topm::european::price_european_fft(&model, opt)),
                    (Style::Bermudan(_), _) => unsupported(),
                }
            }
            ModelKind::Bsm => match (&req.style, req.option_type) {
                (Style::American, OptionType::Put) => {
                    let model = BsmModel::new(req.params, req.steps)?;
                    Ok(bsm::fast::price_american_put(&model, &self.cfg))
                }
                (Style::European, OptionType::Put) => {
                    let model = BsmModel::new(req.params, req.steps)?;
                    Ok(bsm::fast::price_european_put_fft(&model))
                }
                (_, OptionType::Call) | (Style::Bermudan(_), _) => unsupported(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_stencil::Backend;

    fn pricer() -> BatchPricer {
        BatchPricer::new(EngineConfig::default())
    }

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    #[test]
    fn every_supported_route_matches_its_direct_pricer_bitwise() {
        let cfg = EngineConfig::default();
        let steps = 200;
        let zero_div = OptionParams { dividend_yield: 0.0, ..p() };
        let cases: Vec<(PricingRequest, f64)> = vec![
            (PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), steps), {
                let m = BopmModel::new(p(), steps).unwrap();
                bopm::fast::price_american_call(&m, &cfg)
            }),
            (PricingRequest::american(ModelKind::Bopm, OptionType::Put, p(), steps), {
                let m = BopmModel::new(p(), steps).unwrap();
                bopm::fast::price_american_put(&m, &cfg)
            }),
            (PricingRequest::european(ModelKind::Bopm, OptionType::Call, p(), steps), {
                let m = BopmModel::new(p(), steps).unwrap();
                bopm::european::price_european_fft(&m, OptionType::Call)
            }),
            (PricingRequest::european(ModelKind::Bopm, OptionType::Put, p(), steps), {
                let m = BopmModel::new(p(), steps).unwrap();
                bopm::european::price_european_fft(&m, OptionType::Put)
            }),
            (PricingRequest::bermudan_put(p(), steps, vec![50, 100, 200]), {
                let m = BopmModel::new(p(), steps).unwrap();
                bermudan::price_bermudan_put_fft(&m, &[50, 100, 200], Backend::Fft).unwrap()
            }),
            (PricingRequest::american(ModelKind::Topm, OptionType::Call, p(), steps), {
                let m = TopmModel::new(p(), steps).unwrap();
                topm::fast::price_american_call(&m, &cfg)
            }),
            (PricingRequest::american(ModelKind::Topm, OptionType::Put, p(), steps), {
                let m = TopmModel::new(p(), steps).unwrap();
                topm::fast::price_american_put(&m, &cfg)
            }),
            (PricingRequest::european(ModelKind::Topm, OptionType::Call, p(), steps), {
                let m = TopmModel::new(p(), steps).unwrap();
                topm::european::price_european_fft(&m, OptionType::Call)
            }),
            (PricingRequest::american(ModelKind::Bsm, OptionType::Put, zero_div, steps), {
                let m = BsmModel::new(zero_div, steps).unwrap();
                bsm::fast::price_american_put(&m, &cfg)
            }),
            (PricingRequest::european(ModelKind::Bsm, OptionType::Put, zero_div, steps), {
                let m = BsmModel::new(zero_div, steps).unwrap();
                bsm::fast::price_european_put_fft(&m)
            }),
        ];
        let pricer = pricer();
        let (book, want): (Vec<_>, Vec<_>) = cases.into_iter().unzip();
        let got = pricer.price_batch(&book);
        for ((req, got), want) in book.iter().zip(&got).zip(&want) {
            let got = got.as_ref().unwrap_or_else(|e| panic!("{req:?}: {e}"));
            assert_eq!(got.to_bits(), want.to_bits(), "{req:?}: {got} vs {want}");
        }
    }

    #[test]
    fn unsupported_combinations_error_cleanly() {
        let pricer = pricer();
        let book = vec![
            PricingRequest {
                model: ModelKind::Bopm,
                option_type: OptionType::Call,
                style: Style::Bermudan(vec![10]),
                params: p(),
                steps: 64,
            },
            PricingRequest {
                model: ModelKind::Topm,
                option_type: OptionType::Put,
                style: Style::Bermudan(vec![10]),
                params: p(),
                steps: 64,
            },
            PricingRequest::american(ModelKind::Bsm, OptionType::Call, p(), 64),
            PricingRequest::european(ModelKind::Bsm, OptionType::Call, p(), 64),
        ];
        for res in pricer.price_batch(&book) {
            assert!(matches!(res, Err(PricingError::Unsupported { .. })), "{res:?}");
        }
    }

    #[test]
    fn invalid_request_does_not_poison_the_batch() {
        let pricer = pricer();
        let good = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 128);
        let bad_params = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { spot: -1.0, ..p() },
            128,
        );
        let bad_dates = PricingRequest::bermudan_put(p(), 128, vec![0]);
        let out = pricer.price_batch(&[good.clone(), bad_params, bad_dates, good.clone()]);
        assert!(matches!(out[1], Err(PricingError::InvalidParams { field: "spot", .. })));
        assert!(matches!(out[2], Err(PricingError::InvalidParams { .. })));
        let direct = {
            let m = BopmModel::new(p(), 128).unwrap();
            bopm::fast::price_american_call(&m, &EngineConfig::default())
        };
        for idx in [0, 3] {
            assert_eq!(out[idx].as_ref().unwrap().to_bits(), direct.to_bits());
        }
        // Errors are never memoized.
        assert_eq!(pricer.memo_stats().entries, 1);
    }

    #[test]
    fn duplicates_are_priced_once_and_memo_serves_repeat_batches() {
        let pricer = pricer();
        let req = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 256);
        let book = vec![req.clone(); 17];
        let first = pricer.price_batch(&book);
        assert!(first
            .iter()
            .all(|r| r.as_ref().unwrap().to_bits() == first[0].as_ref().unwrap().to_bits()));
        let stats = pricer.memo_stats();
        // 17 duplicates collapse to a single probe (miss) and a single entry.
        assert_eq!((stats.misses, stats.hits, stats.entries), (1, 0, 1));
        let second = pricer.price_batch(&book);
        assert_eq!(second[0].as_ref().unwrap().to_bits(), first[0].as_ref().unwrap().to_bits());
        let stats = pricer.memo_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn quantization_normalises_float_noise_and_bermudan_schedules() {
        let pricer = pricer();
        let a = PricingRequest::bermudan_put(p(), 128, vec![64, 128, 64]);
        let noisy = OptionParams { spot: p().spot + 1e-12, ..p() };
        let b = PricingRequest::bermudan_put(noisy, 128, vec![128, 64]);
        let out = pricer.price_batch(&[a, b]);
        // One unique job: same normalised schedule, params within the grid.
        assert_eq!(pricer.memo_stats().misses, 1);
        assert_eq!(out[0].as_ref().unwrap().to_bits(), out[1].as_ref().unwrap().to_bits());
    }

    #[test]
    fn off_grid_magnitudes_never_collide() {
        // Both spots are valid but quantize past the grid's i64 range; they
        // must keep distinct keys (bit identity), not saturate onto one.
        let pricer = pricer();
        let big = |spot| {
            PricingRequest::american(
                ModelKind::Bopm,
                OptionType::Call,
                OptionParams { spot, ..p() },
                64,
            )
        };
        let out = pricer.price_batch(&[big(1e10), big(2e10)]);
        assert_eq!(pricer.memo_stats().misses, 2, "distinct spots must not deduplicate");
        let (a, b) = (out[0].as_ref().unwrap(), out[1].as_ref().unwrap());
        assert!((b - a).abs() > 1e9, "deep-ITM prices must differ by ~spot: {a} vs {b}");
        // NaN params key on bit identity too — and never reach the memo.
        let nan = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { rate: f64::NAN, ..p() },
            64,
        );
        let tiny = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { rate: 2e-10, ..p() },
            64,
        );
        let out = pricer.price_batch(&[nan, tiny]);
        assert!(matches!(out[0], Err(PricingError::InvalidParams { field: "rate", .. })));
        assert!(out[1].is_ok(), "valid tiny-rate request must not inherit the NaN error");
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // Single shard: the test pins down *global* LRU ordering, which only
        // a one-shard memo guarantees (sharded eviction is per shard).
        let pricer = BatchPricer::with_memo_config(EngineConfig::default(), 2, 1);
        let req = |steps| PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), steps);
        pricer.price_batch(&[req(100)]);
        pricer.price_batch(&[req(101)]);
        pricer.price_batch(&[req(100)]); // refresh 100 → 101 is now stalest
        pricer.price_batch(&[req(102)]); // evicts 101
        let stats = pricer.memo_stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        pricer.price_batch(&[req(100)]);
        assert_eq!(pricer.memo_stats().hits, 2);
        pricer.price_batch(&[req(101)]); // miss: it was evicted
        assert_eq!(pricer.memo_stats().misses, 4);
    }

    #[test]
    fn memo_capacity_zero_disables_caching() {
        let pricer = BatchPricer::with_memo_capacity(EngineConfig::default(), 0);
        let req = PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 64);
        pricer.price_batch(std::slice::from_ref(&req));
        pricer.price_batch(std::slice::from_ref(&req));
        let stats = pricer.memo_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries, stats.capacity), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_memo_matches_single_shard_bitwise_and_splits_capacity() {
        // Same book through a single-shard and a many-shard pricer: prices
        // must be bitwise identical on the cold pass *and* on the warm
        // re-quote, and the aggregate hit/miss counters must agree.
        let book: Vec<PricingRequest> = (0..24)
            .map(|i| OptionParams { strike: 100.0 + 2.0 * i as f64, ..p() })
            .map(|params| PricingRequest::american(ModelKind::Bopm, OptionType::Call, params, 96))
            .collect();
        let single = BatchPricer::with_memo_config(EngineConfig::default(), 512, 1);
        let sharded = BatchPricer::with_memo_config(EngineConfig::default(), 512, 8);
        assert_eq!(single.memo_stats().shards, 1);
        assert_eq!(sharded.memo_stats().shards, 8);
        assert_eq!(sharded.memo_stats().capacity, 512); // 8 * ceil(512/8)
        for pass in 0..2 {
            let a = single.price_batch(&book);
            let b = sharded.price_batch(&book);
            for (x, y) in a.iter().zip(&b) {
                let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
                assert_eq!(x.to_bits(), y.to_bits(), "pass {pass}");
            }
        }
        let (s, m) = (single.memo_stats(), sharded.memo_stats());
        assert_eq!((s.hits, s.misses), (m.hits, m.misses));
        assert_eq!(m.misses, 24);
        assert_eq!(m.hits, 24);
        // The 24 distinct keys spread over more than one shard: entries
        // aggregate correctly while no single shard holds them all (the
        // probability of 24 SipHashed keys landing in one of 8 shards is
        // ~8^-23 — deterministic in practice since the hash keys are fixed).
        assert_eq!(m.entries, 24);
    }

    #[test]
    fn tiny_capacity_rounds_up_to_one_entry_per_shard() {
        let pricer = BatchPricer::with_memo_config(EngineConfig::default(), 2, 4);
        let stats = pricer.memo_stats();
        assert_eq!((stats.capacity, stats.shards), (4, 4)); // 4 * ceil(2/4)
    }

    #[test]
    fn price_one_matches_price_batch() {
        let pricer = pricer();
        let req = PricingRequest::european(ModelKind::Topm, OptionType::Put, p(), 150);
        let one = pricer.price_one(&req).unwrap();
        let batch = pricer.clear_and_price(&req);
        assert_eq!(one.to_bits(), batch.to_bits());
    }

    impl BatchPricer {
        /// Test helper: price after clearing the memo, so the comparison is
        /// against a fresh computation rather than a cache hit.
        fn clear_and_price(&self, req: &PricingRequest) -> f64 {
            self.clear_memo();
            self.price_batch(std::slice::from_ref(req))[0].clone().unwrap()
        }
    }

    #[test]
    fn heterogeneous_batch_prices_everything_in_one_call() {
        let pricer = pricer();
        let zero_div = OptionParams { dividend_yield: 0.0, ..p() };
        let book = vec![
            PricingRequest::american(ModelKind::Bopm, OptionType::Call, p(), 300),
            PricingRequest::american(ModelKind::Topm, OptionType::Call, p(), 200),
            PricingRequest::american(ModelKind::Bsm, OptionType::Put, zero_div, 400),
            PricingRequest::european(ModelKind::Bopm, OptionType::Put, p(), 300),
            PricingRequest::bermudan_put(p(), 300, vec![100, 200, 300]),
        ];
        let out = pricer.price_batch(&book);
        for (req, res) in book.iter().zip(&out) {
            let v = res.as_ref().unwrap_or_else(|e| panic!("{req:?}: {e}"));
            assert!(*v > 0.0 && v.is_finite(), "{req:?}: {v}");
        }
        // American ≥ European for the same BOPM put contract.
        let eu = out[3].as_ref().unwrap();
        let bermudan = out[4].as_ref().unwrap();
        assert!(bermudan >= eu, "Bermudan {bermudan} < European {eu}");
    }
}
