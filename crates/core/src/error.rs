//! Error types for the pricing library.

use std::fmt;

/// Errors surfaced by model construction and pricing entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// A market/contract parameter is out of its admissible domain.
    InvalidParams {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint description.
        reason: String,
    },
    /// The discretisation violates a stability or arbitrage condition
    /// (e.g. binomial `p ∉ (0,1)` or BSM explicit-scheme coefficients < 0).
    UnstableDiscretisation {
        /// Description of the violated condition.
        reason: String,
    },
    /// A root-finder (implied volatility) failed to converge.
    NoConvergence {
        /// What was being solved for.
        what: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// The requested (model, option type, exercise style) combination has no
    /// pricer in this crate (e.g. a Bermudan call, or any call under the BSM
    /// put grid).
    Unsupported {
        /// Human-readable description of the unsupported combination.
        what: String,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::InvalidParams { field, reason } => {
                write!(f, "invalid parameter `{field}`: {reason}")
            }
            PricingError::UnstableDiscretisation { reason } => {
                write!(f, "unstable discretisation: {reason}")
            }
            PricingError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            PricingError::Unsupported { what } => {
                write!(f, "unsupported pricing request: {what}")
            }
        }
    }
}

impl std::error::Error for PricingError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PricingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PricingError::InvalidParams { field: "spot", reason: "must be positive".into() };
        assert!(e.to_string().contains("spot"));
        let e = PricingError::UnstableDiscretisation { reason: "c < 0".into() };
        assert!(e.to_string().contains("unstable"));
        let e = PricingError::NoConvergence { what: "implied vol", iterations: 7 };
        assert!(e.to_string().contains("7"));
        let e = PricingError::Unsupported { what: "Bermudan call".into() };
        assert!(e.to_string().contains("unsupported"));
    }
}
