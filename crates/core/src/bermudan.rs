//! Bermudan option pricing — exercisable only on a finite set of dates
//! (one of the paper's §6 future-work items).
//!
//! Between consecutive exercise dates the lattice is a *purely linear*
//! stencil, so each inter-date stretch collapses into one FFT correlation;
//! the `max` against intrinsic value applies pointwise only at the exercise
//! dates.  With `D` exercise dates the cost is `O(D·T log T)` instead of the
//! loop nest's `Θ(T²)` — no red–green machinery required, because the
//! obstacle is active on isolated rows only.
//!
//! Implemented for the **put** under BOPM: put payoffs are bounded by `K`,
//! which keeps the FFT inputs in a `T`-independent dynamic range (the same
//! consideration as `bopm::european`).

use crate::bopm::BopmModel;
use crate::error::{PricingError, Result};
use crate::params::OptionType;
use amopt_stencil::{advance, Backend, Segment};

/// Prices a Bermudan **put** exercisable at the given lattice steps.
///
/// `exercise_steps` are market time steps in `(0, T]`; expiry is always an
/// exercise date (payoff), step `0` (valuation date) never is.  Duplicates
/// are tolerated; order does not matter.
pub fn price_bermudan_put_fft(
    model: &BopmModel,
    exercise_steps: &[usize],
    backend: Backend,
) -> Result<f64> {
    let t = model.steps();
    let strike = model.params().strike;
    for &e in exercise_steps {
        if e == 0 || e > t {
            return Err(PricingError::InvalidParams {
                field: "exercise_steps",
                reason: format!("step {e} outside the valid range 1..={t}"),
            });
        }
    }
    let mut dates: Vec<usize> = exercise_steps.to_vec();
    dates.sort_unstable();
    dates.dedup();

    // Expiry row over the root's full dependency cone [0, T].
    let payoff = |i: usize, j: i64| OptionType::Put.payoff(model.node_price(i, j), strike);
    let mut row = Segment::new(0, (0..=t as i64).map(|j| payoff(t, j)).collect());
    let kernel = model.kernel();

    // Walk backward through exercise dates (skipping the expiry itself:
    // the payoff row already reflects exercise at T).
    let mut cur_step = t; // market step of `row`
    for &date in dates.iter().rev() {
        if date == t {
            continue;
        }
        let h = (cur_step - date) as u64;
        row = advance(&row, &kernel, h, backend);
        for (idx, v) in row.values.iter_mut().enumerate() {
            let j = row.start + idx as i64;
            *v = v.max(payoff(date, j));
        }
        cur_step = date;
    }
    if cur_step > 0 {
        row = advance(&row, &kernel, cur_step as u64, backend);
    }
    debug_assert_eq!(row.len(), 1);
    Ok(row.values[0])
}

/// Reference Bermudan put by the naive loop nest (`Θ(T²)`).
pub fn price_bermudan_put_naive(model: &BopmModel, exercise_steps: &[usize]) -> Result<f64> {
    let t = model.steps();
    let strike = model.params().strike;
    for &e in exercise_steps {
        if e == 0 || e > t {
            return Err(PricingError::InvalidParams {
                field: "exercise_steps",
                reason: format!("step {e} outside the valid range 1..={t}"),
            });
        }
    }
    let exercisable: std::collections::HashSet<usize> = exercise_steps.iter().copied().collect();
    let payoff = |i: usize, j: i64| OptionType::Put.payoff(model.node_price(i, j), strike);
    let (s0, s1) = (model.s0(), model.s1());
    let mut g: Vec<f64> = (0..=t as i64).map(|j| payoff(t, j)).collect();
    for i in (0..t).rev() {
        for j in 0..=i {
            let cont = s0 * g[j] + s1 * g[j + 1];
            g[j] = if exercisable.contains(&i) { cont.max(payoff(i, j as i64)) } else { cont };
        }
    }
    Ok(g[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bopm::naive;
    use crate::params::{ExerciseStyle, OptionParams};

    fn model(steps: usize) -> BopmModel {
        BopmModel::new(OptionParams::paper_defaults(), steps).unwrap()
    }

    #[test]
    fn fft_matches_naive_reference() {
        let m = model(500);
        let date_sets: Vec<Vec<usize>> =
            vec![vec![500], vec![250], vec![100, 200, 300, 400], (1..=500).step_by(7).collect()];
        for dates in date_sets {
            let want = price_bermudan_put_naive(&m, &dates).unwrap();
            let got = price_bermudan_put_fft(&m, &dates, Backend::Fft).unwrap();
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "dates={}: fft {got} vs naive {want}",
                dates.len()
            );
        }
    }

    #[test]
    fn expiry_only_equals_european() {
        let m = model(400);
        let bermudan = price_bermudan_put_fft(&m, &[400], Backend::Fft).unwrap();
        let european = crate::bopm::european::price_european_fft(&m, OptionType::Put);
        assert!((bermudan - european).abs() < 1e-9);
    }

    #[test]
    fn every_step_equals_american() {
        let m = model(300);
        let all: Vec<usize> = (1..=300).collect();
        let bermudan = price_bermudan_put_fft(&m, &all, Backend::Fft).unwrap();
        let american =
            naive::price(&m, OptionType::Put, ExerciseStyle::American, naive::ExecMode::Serial);
        assert!((bermudan - american).abs() < 1e-9 * american, "{bermudan} vs {american}");
    }

    #[test]
    fn value_is_monotone_in_exercise_rights() {
        let m = model(256);
        let quarterly = price_bermudan_put_fft(&m, &[64, 128, 192, 256], Backend::Fft).unwrap();
        let monthly: Vec<usize> = (1..=256).step_by(21).chain([256]).collect();
        let monthly_v = price_bermudan_put_fft(&m, &monthly, Backend::Fft).unwrap();
        let european = price_bermudan_put_fft(&m, &[256], Backend::Fft).unwrap();
        assert!(quarterly >= european - 1e-12);
        assert!(monthly_v >= quarterly - 1e-9);
    }

    #[test]
    fn rejects_out_of_range_dates() {
        let m = model(64);
        assert!(price_bermudan_put_fft(&m, &[0], Backend::Fft).is_err());
        assert!(price_bermudan_put_fft(&m, &[65], Backend::Fft).is_err());
        assert!(price_bermudan_put_naive(&m, &[0]).is_err());
    }

    #[test]
    fn duplicate_and_unsorted_dates_are_tolerated() {
        let m = model(200);
        let a = price_bermudan_put_fft(&m, &[50, 100, 150], Backend::Fft).unwrap();
        let b = price_bermudan_put_fft(&m, &[150, 50, 100, 50, 150], Backend::Fft).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
