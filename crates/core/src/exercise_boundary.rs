//! Early-exercise boundary extraction — the red–green divider of §2.2/§4.2
//! surfaced as a user-facing curve in market coordinates.
//!
//! The critical asset price at time step `i` is the price at the first green
//! (exercise-optimal) column of that row.  Both extractors reuse the fast
//! engines' boundary tracking, so sampling the curve costs no more than one
//! pricing pass.

use crate::bopm::BopmModel;
use crate::bsm::BsmModel;
use crate::engine::EngineConfig;
use crate::topm::TopmModel;

/// One sample of the early-exercise frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryPoint {
    /// Market time step `i` (0 = valuation date, `T` = expiry).
    pub time_step: usize,
    /// Time from valuation in years.
    pub time_years: f64,
    /// Critical asset price: exercising is optimal at or beyond it
    /// (beyond = above for calls, below for puts).  `None` when no
    /// exercise region exists at that time step within the grid.
    pub critical_price: Option<f64>,
}

/// Early-exercise frontier of an American **call** under BOPM.
pub fn bopm_call_boundary(
    model: &BopmModel,
    cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let (_, raw) = crate::bopm::fast::price_with_boundary_samples(model, cfg, samples);
    raw.into_iter()
        .map(|(i, j)| BoundaryPoint {
            time_step: i,
            time_years: expiry * i as f64 / t as f64,
            // First green column is j+1; a boundary at/over the triangle
            // width means the whole row continues (no exercise region).
            critical_price: (j < i as i64).then(|| model.node_price(i, j + 1)),
        })
        .collect()
}

/// Early-exercise frontier of an American **put** under BOPM, via the
/// left-cone engine's boundary tracking (one fast pricing pass).
pub fn bopm_put_boundary(
    model: &BopmModel,
    cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let (_, raw) = crate::bopm::fast::price_put_with_boundary_samples(model, cfg, samples);
    raw.into_iter()
        .map(|(i, f)| BoundaryPoint {
            time_step: i,
            time_years: expiry * i as f64 / t as f64,
            // Last green column is f (clamped to the row: a boundary at or
            // past the row width means the whole row exercises); f < 0
            // means no exercise region in the row.
            critical_price: (f >= 0).then(|| model.node_price(i, f.min(i as i64))),
        })
        .collect()
}

/// Early-exercise frontier of an American **put** under the BSM explicit FD
/// scheme.
pub fn bsm_put_boundary(
    model: &BsmModel,
    cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let strike = model.params().strike;
    let (_, raw) = crate::bsm::fast::price_with_boundary_samples(model, cfg, samples);
    raw.into_iter()
        .map(|(n, k)| {
            // Engine row n counts from expiry; market step i = T − n.
            let i = t - n;
            BoundaryPoint {
                time_step: i,
                time_years: expiry * i as f64 / t as f64,
                critical_price: (k >= -(t as i64 - n as i64)).then(|| strike * model.s_at(k).exp()),
            }
        })
        .collect()
}

/// Early-exercise frontier of an American **call** under the BSM explicit
/// FD scheme.
///
/// The compressed engines are green-*left* (put-shaped), so the call
/// frontier comes from the dense serial sweep — `Θ(T²)`, acceptable at
/// boundary-extraction step counts.  With the model's mandatory `Y = 0`
/// the continuous call is never exercised early; any sampled point is a
/// quantisation artifact of the explicit scheme, and an all-`None` curve
/// is the expected shape.  `cfg` is accepted for signature uniformity with
/// the other extractors.
pub fn bsm_call_boundary(
    model: &BsmModel,
    _cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let strike = model.params().strike;
    let (_, dense) = crate::bsm::naive::apex_call_value_with_boundary(model);
    // Mirror the fast extractors' row sampling: expiry first, then every
    // `chunk` rows, always ending at the valuation row.
    let chunk = (t / samples.max(1)).max(1);
    let mut rows: Vec<usize> = (0..=t).step_by(chunk).collect();
    if rows.last() != Some(&t) {
        rows.push(t);
    }
    rows.into_iter()
        .map(|n| {
            let i = t - n;
            BoundaryPoint {
                time_step: i,
                time_years: expiry * i as f64 / t as f64,
                // First green column is the boundary itself (smallest green
                // `k`); `i64::MAX` marks a row with no exercise region.
                critical_price: dense
                    .get(n)
                    .copied()
                    .filter(|&k| k != i64::MAX)
                    .map(|k| strike * model.s_at(k).exp()),
            }
        })
        .collect()
}

/// Early-exercise frontier of an American **call** under TOPM, via the fast
/// engine's boundary tracking (one `O(T log² T)` pricing pass — this
/// replaces the old `Θ(T²)` dense sweep `topm_call_boundary_dense`).
pub fn topm_call_boundary(
    model: &TopmModel,
    cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let (_, raw) = crate::topm::fast::price_with_boundary_samples(model, cfg, samples);
    raw.into_iter()
        .map(|(i, j)| BoundaryPoint {
            time_step: i,
            time_years: expiry * i as f64 / t as f64,
            // First green column is j+1; a boundary at/over the trinomial
            // row width 2i means the whole row continues.
            critical_price: (j < 2 * i as i64).then(|| model.node_price(i, j + 1)),
        })
        .collect()
}

/// Early-exercise frontier of an American **put** under TOPM, via the
/// left-cone engine's boundary tracking (one fast pricing pass).
pub fn topm_put_boundary(
    model: &TopmModel,
    cfg: &EngineConfig,
    samples: usize,
) -> Vec<BoundaryPoint> {
    let t = model.steps();
    let expiry = model.params().expiry;
    let (_, raw) = crate::topm::fast::price_put_with_boundary_samples(model, cfg, samples);
    raw.into_iter()
        .map(|(i, f)| BoundaryPoint {
            time_step: i,
            time_years: expiry * i as f64 / t as f64,
            // Last green column is f (clamped to the row width 2i); f < 0
            // means no exercise region in the row.
            critical_price: (f >= 0).then(|| model.node_price(i, f.min(2 * i as i64))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OptionParams;

    #[test]
    fn call_boundary_sits_above_strike() {
        // Exercising a call early is only optimal in the money.
        let m = BopmModel::new(OptionParams::paper_defaults(), 1024).unwrap();
        let pts = bopm_call_boundary(&m, &EngineConfig::default(), 16);
        let mut seen = 0;
        for p in &pts {
            if let Some(price) = p.critical_price {
                assert!(price >= m.params().strike, "critical {price} below strike");
                seen += 1;
            }
        }
        assert!(seen > 4, "expected a visible exercise region");
    }

    #[test]
    fn put_boundary_sits_below_strike_and_decreases_with_tau() {
        let p = OptionParams { dividend_yield: 0.0, ..OptionParams::paper_defaults() };
        let m = BsmModel::new(p, 2048).unwrap();
        let pts = bsm_put_boundary(&m, &EngineConfig::default(), 32);
        // Points come expiry-first; Thm 4.2: the critical price decreases as
        // time-to-expiry grows, and always sits below the strike.
        let prices: Vec<f64> = pts.iter().filter_map(|p| p.critical_price).collect();
        assert!(prices.len() > 4);
        for w in prices.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "boundary not decreasing in tau: {w:?}");
        }
        for &x in &prices {
            assert!(x <= m.params().strike * (1.0 + 1e-12));
        }
    }

    #[test]
    fn bopm_put_boundary_sits_below_strike_and_decreases_with_tau() {
        let m = BopmModel::new(OptionParams::paper_defaults(), 2048).unwrap();
        let pts = bopm_put_boundary(&m, &EngineConfig::default(), 32);
        // Samples come expiry-first; the critical price decreases as
        // time-to-expiry grows (the put mirror of Thm 4.2) and sits at or
        // below the strike.
        let prices: Vec<f64> = pts.iter().filter_map(|p| p.critical_price).collect();
        assert!(prices.len() > 4, "expected a visible exercise region");
        // The discrete frontier tracks S*(τ) to within a factor u² of
        // lattice quantisation.
        let slack = m.up().powi(2) * (1.0 + 1e-9);
        for w in prices.windows(2) {
            assert!(w[1] <= w[0] * slack, "boundary not decreasing in tau: {w:?}");
        }
        for &x in &prices {
            assert!(x <= m.params().strike * (1.0 + 1e-12), "critical {x} above strike");
        }
    }

    #[test]
    fn trinomial_boundary_critical_prices_above_strike() {
        let p = OptionParams::paper_defaults();
        let tri = TopmModel::new(p, 400).unwrap();
        let pts = topm_call_boundary(&tri, &EngineConfig::default(), 16);
        let seen = pts.iter().filter(|p| p.critical_price.is_some()).count();
        assert!(seen > 4, "expected a visible exercise region");
        for pt in pts.iter().filter(|p| p.critical_price.is_some()) {
            assert!(pt.critical_price.unwrap() >= p.strike * 0.999);
        }
    }

    #[test]
    fn trinomial_put_boundary_sits_below_strike_and_decreases_with_tau() {
        let m = TopmModel::new(OptionParams::paper_defaults(), 2048).unwrap();
        let pts = topm_put_boundary(&m, &EngineConfig::default(), 32);
        // Samples come expiry-first; the critical price decreases as
        // time-to-expiry grows, to within the trinomial lattice quantisation
        // (the boundary may drop up to two columns per step, factor u²).
        let prices: Vec<f64> = pts.iter().filter_map(|p| p.critical_price).collect();
        assert!(prices.len() > 4, "expected a visible exercise region");
        let slack = m.up().powi(2) * (1.0 + 1e-9);
        for w in prices.windows(2) {
            assert!(w[1] <= w[0] * slack, "boundary not decreasing in tau: {w:?}");
        }
        for &x in &prices {
            assert!(x <= m.params().strike * (1.0 + 1e-12), "critical {x} above strike");
        }
    }
}
