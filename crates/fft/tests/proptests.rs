//! Property-based tests for the FFT substrate: transforms and convolutions
//! must agree with their quadratic-time definitions on arbitrary inputs.

use amopt_fft::{
    c64, correlate_power_periodic, correlate_power_valid, fft, ifft, kernel_power_taps,
    linear_convolve, Complex64,
};
use proptest::prelude::*;

fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
                acc += v * Complex64::cis(theta);
            }
            acc
        })
        .collect()
}

fn arb_signal(max_pow: u32) -> impl Strategy<Value = Vec<Complex64>> {
    (1u32..=max_pow).prop_flat_map(|p| {
        prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1 << p)
            .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_matches_naive_dft(x in arb_signal(8)) {
        let mut got = x.clone();
        fft(&mut got);
        let want = dft_naive(&x);
        let scale: f64 = x.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-10 * scale);
        }
    }

    #[test]
    fn roundtrip_identity(x in arb_signal(12)) {
        let mut buf = x.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (g, w) in buf.iter().zip(&x) {
            prop_assert!((*g - *w).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_commutes(
        a in prop::collection::vec(-5.0..5.0f64, 1..80),
        b in prop::collection::vec(-5.0..5.0f64, 1..80),
    ) {
        let ab = linear_convolve(&a, &b);
        let ba = linear_convolve(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_total_mass_is_product_of_masses(
        a in prop::collection::vec(-2.0..2.0f64, 1..60),
        b in prop::collection::vec(-2.0..2.0f64, 1..60),
    ) {
        let conv = linear_convolve(&a, &b);
        let lhs: f64 = conv.iter().sum();
        let rhs = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn power_taps_compose(kernel in prop::collection::vec(0.0..0.5f64, 2..4), h1 in 1u64..12, h2 in 1u64..12) {
        // kernel^{⊛(h1+h2)} == kernel^{⊛h1} ⊛ kernel^{⊛h2}
        let lhs = kernel_power_taps(&kernel, h1 + h2);
        let rhs = linear_convolve(&kernel_power_taps(&kernel, h1), &kernel_power_taps(&kernel, h2));
        prop_assert_eq!(lhs.len(), rhs.len());
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn valid_correlation_matches_stepped_reference(
        x in prop::collection::vec(-3.0..3.0f64, 30..200),
        w0 in 0.05..0.6f64,
        w1 in 0.05..0.6f64,
        h in 1u64..12,
    ) {
        let kernel = [w0, w1];
        let got = correlate_power_valid(&x, &kernel, h);
        let mut row = x.clone();
        for _ in 0..h {
            row = (0..row.len() - 1).map(|c| kernel[0] * row[c] + kernel[1] * row[c + 1]).collect();
        }
        prop_assert_eq!(got.len(), row.len());
        let scale: f64 = x.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (g, w) in got.iter().zip(&row) {
            prop_assert!((g - w).abs() < 1e-9 * scale, "{} vs {}", g, w);
        }
    }

    #[test]
    fn periodic_correlation_conserves_mass(
        x in prop::collection::vec(-3.0..3.0f64, 4..60),
        h in 1u64..10,
    ) {
        // A kernel with unit mass conserves the row sum on a periodic grid.
        let kernel = [0.25, 0.5, 0.25];
        let got = correlate_power_periodic(&x, &kernel, h);
        let lhs: f64 = got.iter().sum();
        let rhs: f64 = x.iter().sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }
}
