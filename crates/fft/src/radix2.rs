//! Iterative radix-2 Cooley–Tukey FFT with cached twiddle tables and
//! fork-join parallel butterfly passes.
//!
//! Sizes must be powers of two; [`crate::bluestein`] lifts the restriction for
//! callers that need arbitrary lengths.  Plans are cached process-wide because
//! the trapezoid decomposition of the pricing algorithms requests the same
//! handful of sizes thousands of times.

use crate::complex::Complex64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = Σ_n x_n e^{-2πi nk/N}`.
    Forward,
    /// `x_n = (1/N) Σ_k X_k e^{+2πi nk/N}` (scaling included).
    Inverse,
}

/// Problem sizes at or below this length always run serially; forking costs
/// more than the butterflies themselves.
const PAR_MIN_LEN: usize = 1 << 14;

/// A reusable transform plan for one power-of-two size.
#[derive(Debug)]
pub struct Fft {
    n: usize,
    /// `twiddles[j] = e^{-2πi j / n}` for `j ∈ [0, n/2)`.
    twiddles: Vec<Complex64>,
}

impl Fft {
    /// Builds a plan for size `n`.
    ///
    /// # Panics
    /// If `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "radix-2 FFT size must be a power of two, got {n}");
        let half = n / 2;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..half).map(|j| Complex64::cis(step * j as f64)).collect();
        Fft { n, twiddles }
    }

    /// Transform size this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-0 plan, which cannot exist; present
    /// to satisfy the `len`/`is_empty` API convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.transform(buf, Direction::Forward);
    }

    /// In-place inverse DFT, including the `1/n` normalisation.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.transform(buf, Direction::Inverse);
    }

    /// In-place transform in the given direction.
    pub fn transform(&self, buf: &mut [Complex64], dir: Direction) {
        // amopt-lint: hot-path
        assert_eq!(buf.len(), self.n, "buffer length {} != plan size {}", buf.len(), self.n);
        if self.n <= 1 {
            return;
        }
        bit_reverse_permute(buf);
        let inverse = dir == Direction::Inverse;

        let mut len = 1; // half the butterfly block size
        while len < self.n {
            let block = 2 * len;
            let stride = self.n / block;
            let blocks = self.n / block;
            if self.n >= PAR_MIN_LEN && blocks >= 4 {
                // Early passes: many independent blocks — parallelise across
                // them. Chunks produced by halving a power-of-two buffer are
                // always multiples of `block`.
                let grain = (self.n / (4 * amopt_parallel::current_num_threads().max(1)))
                    .max(4 * block)
                    .max(PAR_MIN_LEN / 4);
                let tw = &self.twiddles;
                amopt_parallel::for_each_chunk_mut(buf, grain, |_, chunk| {
                    for b in chunk.chunks_exact_mut(block) {
                        butterfly_block(b, len, tw, stride, inverse);
                    }
                });
            } else if self.n >= PAR_MIN_LEN {
                // Late passes: few long blocks — parallelise the pairwise
                // butterflies inside each block.
                for b in buf.chunks_exact_mut(block) {
                    par_butterfly_block(b, len, &self.twiddles, stride, inverse);
                }
            } else {
                for b in buf.chunks_exact_mut(block) {
                    butterfly_block(b, len, &self.twiddles, stride, inverse);
                }
            }
            len = block;
        }

        if inverse {
            let scale = 1.0 / self.n as f64;
            if self.n >= PAR_MIN_LEN {
                amopt_parallel::for_each_chunk_mut(buf, PAR_MIN_LEN / 2, |_, chunk| {
                    for v in chunk.iter_mut() {
                        *v = v.scale(scale);
                    }
                });
            } else {
                for v in buf.iter_mut() {
                    *v = v.scale(scale);
                }
            }
        }
    }
}

/// One serial butterfly block: pairs `b[j]` with `b[j+len]`.
#[inline]
fn butterfly_block(
    b: &mut [Complex64],
    len: usize,
    tw: &[Complex64],
    stride: usize,
    inverse: bool,
) {
    // amopt-lint: hot-path
    let (lo, hi) = b.split_at_mut(len);
    for j in 0..len {
        let mut w = tw[j * stride];
        if inverse {
            w = w.conj();
        }
        let t = w * hi[j];
        hi[j] = lo[j] - t;
        lo[j] += t;
    }
}

/// Parallel butterfly for a single long block: recursively splits the
/// `lo`/`hi` halves at matching offsets so each task owns disjoint memory.
fn par_butterfly_block(
    b: &mut [Complex64],
    len: usize,
    tw: &[Complex64],
    stride: usize,
    inverse: bool,
) {
    // amopt-lint: hot-path
    fn zip(
        lo: &mut [Complex64],
        hi: &mut [Complex64],
        j0: usize,
        tw: &[Complex64],
        stride: usize,
        inverse: bool,
        grain: usize,
    ) {
        if lo.len() <= grain {
            for j in 0..lo.len() {
                let mut w = tw[(j0 + j) * stride];
                if inverse {
                    w = w.conj();
                }
                let t = w * hi[j];
                hi[j] = lo[j] - t;
                lo[j] += t;
            }
        } else {
            let mid = lo.len() / 2;
            let (l0, l1) = lo.split_at_mut(mid);
            let (h0, h1) = hi.split_at_mut(mid);
            amopt_parallel::join(
                || zip(l0, h0, j0, tw, stride, inverse, grain),
                || zip(l1, h1, j0 + mid, tw, stride, inverse, grain),
            );
        }
    }
    let grain = (len / (2 * amopt_parallel::current_num_threads().max(1))).max(PAR_MIN_LEN / 8);
    let (lo, hi) = b.split_at_mut(len);
    zip(lo, hi, 0, tw, stride, inverse, grain);
}

/// In-place bit-reversal permutation (size must be a power of two).
fn bit_reverse_permute(buf: &mut [Complex64]) {
    // amopt-lint: hot-path
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

/// Returns the cached plan for power-of-two size `n`, creating it on first use.
pub fn plan(n: usize) -> Arc<Fft> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Fft>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("fft plan cache poisoned");
    map.entry(n).or_insert_with(|| Arc::new(Fft::new(n))).clone()
}

/// Convenience: forward transform through the plan cache.
pub fn fft(buf: &mut [Complex64]) {
    plan(buf.len()).forward(buf);
}

/// Convenience: inverse transform (normalised) through the plan cache.
pub fn ifft(buf: &mut [Complex64]) {
    plan(buf.len()).inverse(buf);
}

/// Smallest power of two `≥ n` (and `≥ 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    /// O(n²) reference DFT.
    pub(crate) fn dft_naive(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = x.len();
        let sign = match dir {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += v * Complex64::cis(theta);
            }
            *o = if dir == Direction::Inverse { acc.scale(1.0 / n as f64) } else { acc };
        }
        out
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Small deterministic LCG; avoids pulling rand into the unit tests.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| c64(next(), next())).collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut x = vec![Complex64::ONE; 8];
        fft(&mut x);
        assert!((x[0] - c64(8.0, 0.0)).abs() < 1e-12);
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 32, 128, 256] {
            let x = rand_signal(n, n as u64);
            let mut got = x.clone();
            fft(&mut got);
            let want = dft_naive(&x, Direction::Forward);
            assert!(max_err(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        for &n in &[2usize, 64, 1024, 1 << 15] {
            let x = rand_signal(n, 7 + n as u64);
            let mut buf = x.clone();
            fft(&mut buf);
            ifft(&mut buf);
            assert!(max_err(&buf, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 512;
        let x = rand_signal(n, 99);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 256;
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let alpha = c64(0.7, -0.2);
        let mut lhs: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| alpha * x + y).collect();
        fft(&mut lhs);
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| alpha * x + y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn large_parallel_size_matches_small_block_composition() {
        // Cross-check a size big enough to trigger the parallel paths against
        // the roundtrip identity and Parseval, which are backend-independent.
        let n = 1 << 16;
        let x = rand_signal(n, 1234);
        let mut buf = x.clone();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
        ifft(&mut buf);
        assert!(max_err(&buf, &x) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        Fft::new(12);
    }

    #[test]
    fn shift_theorem() {
        // x delayed by d ⇒ spectrum multiplied by e^{-2πi k d / n}.
        let n = 128;
        let x = rand_signal(n, 5);
        let d = 13usize;
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + n - d) % n]).collect();
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fs = shifted;
        fft(&mut fs);
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * (k * d % n) as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-9);
        }
    }
}
