//! A minimal double-precision complex number.
//!
//! The workspace deliberately avoids external numerics crates; everything the
//! FFT and the stencil engines need from complex arithmetic fits in this
//! module: ring operations, conjugation, polar conversion, and the stable
//! integer power used for pointwise kernel powering.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex::Complex64::new`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// Imaginary unit.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Builds the unit-modulus number `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(c, s)
    }

    /// Builds `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(r * c, r * s)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Modulus `|z|`, computed without intermediate overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// Multiplicative inverse. Returns NaNs for zero, like `1.0/0.0` would.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Raises `self` to a non-negative integer power through the polar form:
    /// `z^k = |z|^k · e^{i·k·arg z}`.
    ///
    /// This is the stable evaluation used for the paper's pointwise spectrum
    /// powering: the kernels of interest satisfy `|z| ≤ 1`, so `|z|^k`
    /// underflows gracefully toward zero instead of accumulating the rounding
    /// of `k` successive multiplications. `0^0` is defined as `1`.
    #[inline]
    pub fn powu(self, k: u64) -> Self {
        if k == 0 {
            return Self::ONE;
        }
        if k == 1 {
            return self;
        }
        let r = self.abs();
        // amopt-lint: allow(float-eq) -- exact zero modulus short-circuits ln(); 0.0f64 == is an identity test on a computed abs
        if r == 0.0 {
            return Self::ZERO;
        }
        let magnitude = (k as f64 * r.ln()).exp();
        Self::from_polar(magnitude, k as f64 * self.arg())
    }

    /// Binary-exponentiation power; reference implementation used by tests to
    /// cross-check [`Complex64::powu`].
    pub fn powu_binary(self, mut k: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base *= base;
            k >>= 1;
        }
        acc
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ring_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, c64(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(c64(1.0, 2.0) * c64(3.0, 4.0), c64(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c64(1.5, -2.25);
        let b = c64(-0.5, 3.0);
        assert!(close(a * b / b, a, 1e-12));
    }

    #[test]
    fn abs_and_arg() {
        let z = c64(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert!((Complex64::I.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn powu_agrees_with_binary_exponentiation() {
        let z = c64(0.6, -0.35);
        for k in [0u64, 1, 2, 3, 7, 16, 31, 100] {
            let a = z.powu(k);
            let b = z.powu_binary(k);
            assert!(close(a, b, 1e-10 * (1.0 + b.abs())), "k={k}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn powu_of_zero_and_one() {
        assert_eq!(Complex64::ZERO.powu(0), Complex64::ONE);
        assert_eq!(Complex64::ZERO.powu(5), Complex64::ZERO);
        assert!(close(Complex64::ONE.powu(1 << 40), Complex64::ONE, 1e-12));
    }

    #[test]
    fn powu_decays_for_submodulus_inputs() {
        // |z| < 1 ⇒ huge powers underflow to 0 without NaN — the property the
        // spectrum powering of the stencil engine relies on.
        let z = c64(0.4, 0.3); // |z| = 0.5
        let p = z.powu(10_000);
        assert!(p.abs() < 1e-300 || p.abs() == 0.0);
        assert!(p.re.is_finite() && p.im.is_finite());
    }

    #[test]
    fn conj_properties() {
        let a = c64(1.0, 2.0);
        let b = c64(-2.0, 0.5);
        assert_eq!((a * b).conj(), a.conj() * b.conj());
        assert!((a * a.conj()).im.abs() < 1e-15);
    }
}
