//! Real-input transform helpers.
//!
//! The stencil engine transforms two real sequences at a time (a grid row and
//! a stencil kernel), so the classic *two-for-one* packing halves the FFT
//! count: pack `z = a + i·b`, transform once, and split the spectra using the
//! conjugate-symmetry of real signals:
//!
//! `A_k = (Z_k + conj(Z_{n−k}))/2`,  `B_k = (Z_k − conj(Z_{n−k}))/(2i)`.

use crate::complex::{c64, Complex64};
use crate::radix2;

/// Transforms two real sequences with a single complex FFT of length `n`
/// (power of two, `n ≥ a.len()`, `n ≥ b.len()`; both are zero-padded).
///
/// Returns the two full-length spectra `(A, B)`.
pub fn fft_two_real(a: &[f64], b: &[f64], n: usize) -> (Vec<Complex64>, Vec<Complex64>) {
    assert!(n.is_power_of_two(), "two-for-one FFT needs a power-of-two size, got {n}");
    assert!(a.len() <= n && b.len() <= n, "inputs longer than transform size");
    let mut z = vec![Complex64::ZERO; n];
    for (i, &v) in a.iter().enumerate() {
        z[i].re = v;
    }
    for (i, &v) in b.iter().enumerate() {
        z[i].im = v;
    }
    radix2::plan(n).forward(&mut z);

    let mut sa = vec![Complex64::ZERO; n];
    let mut sb = vec![Complex64::ZERO; n];
    for k in 0..n {
        let zk = z[k];
        let zn = z[(n - k) % n].conj();
        sa[k] = (zk + zn).scale(0.5);
        // (zk - zn) / (2i) = -i/2 * (zk - zn)
        let d = zk - zn;
        sb[k] = c64(d.im * 0.5, -d.re * 0.5);
    }
    (sa, sb)
}

/// Spectrum of a single real sequence, zero-padded to power-of-two `n`.
pub fn fft_real(a: &[f64], n: usize) -> Vec<Complex64> {
    assert!(n.is_power_of_two(), "real FFT needs a power-of-two size, got {n}");
    assert!(a.len() <= n);
    let mut z = vec![Complex64::ZERO; n];
    for (i, &v) in a.iter().enumerate() {
        z[i].re = v;
    }
    radix2::plan(n).forward(&mut z);
    z
}

/// Inverse transform returning only real parts (caller asserts the spectrum
/// is conjugate-symmetric up to rounding, e.g. a product of real spectra).
pub fn ifft_real(mut spec: Vec<Complex64>, out_len: usize) -> Vec<f64> {
    let n = spec.len();
    assert!(n.is_power_of_two());
    assert!(out_len <= n);
    radix2::plan(n).inverse(&mut spec);
    spec.truncate(out_len);
    spec.into_iter().map(|v| v.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| next()).collect()
    }

    #[test]
    fn two_for_one_matches_separate_transforms() {
        let n = 256;
        let a = rand_real(200, 1);
        let b = rand_real(256, 2);
        let (sa, sb) = fft_two_real(&a, &b, n);
        let ra = fft_real(&a, n);
        let rb = fft_real(&b, n);
        for k in 0..n {
            assert!((sa[k] - ra[k]).abs() < 1e-9, "A mismatch at {k}");
            assert!((sb[k] - rb[k]).abs() < 1e-9, "B mismatch at {k}");
        }
    }

    #[test]
    fn real_spectrum_is_conjugate_symmetric() {
        let n = 128;
        let a = rand_real(n, 5);
        let s = fft_real(&a, n);
        for k in 1..n {
            assert!((s[k] - s[n - k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn ifft_real_roundtrip() {
        let n = 64;
        let a = rand_real(50, 9);
        let spec = fft_real(&a, n);
        let back = ifft_real(spec, 50);
        for (x, y) in back.iter().zip(&a) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn handles_empty_inputs() {
        let (sa, sb) = fft_two_real(&[], &[], 1);
        assert_eq!(sa.len(), 1);
        assert_eq!(sb.len(), 1);
        assert!(sa[0].abs() < 1e-15 && sb[0].abs() < 1e-15);
    }
}
