//! FFT-backed convolution and the kernel-power correlation primitive.
//!
//! [`correlate_power_valid`] is the computational heart of the paper: inside
//! an all-red region, `h` steps of a linear stencil with kernel `w` collapse
//! into a single correlation with `W = w^{⊛h}` (the `h`-fold self-convolution
//! of `w`).  Rather than materialising `W`, its spectrum is obtained by
//! pointwise powering `FFT(w)^h` — this is the linear-stencil algorithm of
//! Ahmad et al. (SPAA 2021), reference \[1\] of the paper.
//!
//! Aliasing correctness: with transform size `n = next_pow2(x.len())`, the
//! cyclic correlation at output index `c` touches `x[c] … x[c + |W| − 1]`;
//! for every index in the *valid* output range `c ≤ x.len() − |W|` this stays
//! below `x.len() ≤ n`, so no wrapped (aliased) term is ever read.

use crate::bluestein;
use crate::complex::Complex64;
use crate::radix2::{next_pow2, Direction};
use crate::real::{fft_two_real, ifft_real};

/// Reusable buffers for [`correlate_power_valid_with`].
///
/// One correlation needs two transform-sized complex buffers (the row
/// spectrum, operated on in place, and the directly-evaluated kernel
/// spectrum).  Holding them in a scratch that outlives the call makes
/// repeated correlations — the trapezoid engines issue thousands per
/// pricing — allocation-free apart from the returned output vector, which
/// the caller keeps.  Buffers grow to the largest transform seen and never
/// shrink; pool instances per worker (e.g. via
/// `amopt_parallel::WorkspacePool`) rather than sharing one.
#[derive(Debug, Default)]
pub struct FftScratch {
    /// Row buffer: holds the padded input, its spectrum, the pointwise
    /// product, and finally the inverse transform.
    buf: Vec<Complex64>,
    /// Directly evaluated kernel spectrum.
    kspec: Vec<Complex64>,
}

/// Full linear convolution of two real sequences (`len = a + b − 1`).
pub fn linear_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    // Small problems: direct O(ab) beats FFT constants.
    if a.len().min(b.len()) <= 16 || out_len <= 64 {
        let mut out = vec![0.0; out_len];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        return out;
    }
    let n = next_pow2(out_len);
    let (sa, sb) = fft_two_real(a, b, n);
    let spec: Vec<Complex64> = sa.iter().zip(&sb).map(|(&x, &y)| x * y).collect();
    ifft_real(spec, out_len)
}

/// Number of taps of the `h`-fold self-convolution of a kernel of `k` taps.
#[inline]
pub fn power_kernel_len(kernel_len: usize, h: u64) -> usize {
    debug_assert!(kernel_len >= 1);
    (kernel_len - 1) * h as usize + 1
}

/// Valid-mode correlation of `x` with the `h`-th convolution power of
/// `kernel`:
///
/// `out[c] = Σ_m W_m · x[c + m]` for `c ∈ [0, x.len() − |W|]`,
/// where `W = kernel^{⊛h}` and `|W| = h·(kernel.len()−1) + 1`.
///
/// This advances the `x.len()`-cell row of a linear stencil `h` time steps
/// and returns the cells whose full dependency cone lies inside `x`.
///
/// # Panics
/// If `kernel` is empty or `x` is shorter than `|W|`.
pub fn correlate_power_valid(x: &[f64], kernel: &[f64], h: u64) -> Vec<f64> {
    correlate_power_valid_with(x, kernel, h, &mut FftScratch::default())
}

/// [`correlate_power_valid`] with caller-owned scratch buffers: bitwise the
/// same output, but the two transform-sized complex buffers are reused
/// across calls instead of reallocated.
pub fn correlate_power_valid_with(
    x: &[f64],
    kernel: &[f64],
    h: u64,
    scratch: &mut FftScratch,
) -> Vec<f64> {
    // amopt-lint: hot-path
    assert!(!kernel.is_empty(), "kernel must have at least one tap");
    if h == 0 {
        // amopt-lint: allow(hot-path-alloc) -- h = 0 identity returns a fresh copy; this is the output the caller keeps
        return x.to_vec();
    }
    let w_len = power_kernel_len(kernel.len(), h);
    assert!(
        x.len() >= w_len,
        "input of {} cells cannot host a {}-tap power kernel",
        x.len(),
        w_len
    );
    let out_len = x.len() - w_len + 1;

    if kernel.len() == 1 {
        let s = kernel[0].powi(h.min(i32::MAX as u64) as i32);
        // amopt-lint: allow(hot-path-alloc) -- single output vector per correlation, kept by the caller
        return x[..out_len].iter().map(|&v| v * s).collect();
    }

    let n = next_pow2(x.len());
    let buf = &mut scratch.buf;
    buf.clear();
    buf.resize(n, Complex64::ZERO);
    for (slot, &v) in buf.iter_mut().zip(x) {
        slot.re = v;
    }
    let plan = crate::radix2::plan(n);
    plan.forward(buf);
    // The kernel spectrum is evaluated *directly* rather than packed into the
    // same transform as `x`: a shared transform would leave the tiny kernel
    // spectrum with absolute error proportional to ‖x‖, which the pointwise
    // `h`-th power then amplifies by a factor of `h` — observed as ~1e-6
    // price error at T = 252.  Direct evaluation is exact to ε and costs only
    // O(σ·n) for σ-tap kernels.
    kernel_spectrum_into(kernel, n, &mut scratch.kspec);
    for (xv, kv) in buf.iter_mut().zip(&scratch.kspec) {
        *xv *= kv.conj().powu(h);
    }
    plan.inverse(buf);
    // amopt-lint: allow(hot-path-alloc) -- single output vector per correlation, kept by the caller; transform buffers come from FftScratch
    buf[..out_len].iter().map(|v| v.re).collect()
}

/// Direct evaluation of the length-`n` DFT of a short real kernel:
/// `K[k] = Σ_m w_m e^{−2πi k m / n}`, written into a reusable buffer.
fn kernel_spectrum_into(kernel: &[f64], n: usize, out: &mut Vec<Complex64>) {
    // amopt-lint: hot-path
    let step = -2.0 * std::f64::consts::PI / n as f64;
    out.clear();
    out.extend((0..n).map(|k| {
        let mut acc = Complex64::ZERO;
        for (m, &w) in kernel.iter().enumerate() {
            acc += Complex64::cis(step * (k * m % n) as f64) * w;
        }
        acc
    }));
}

/// Periodic (cyclic) variant: evolves a periodic grid of `x.len()` cells by
/// `h` steps of the linear stencil, wrapping at the ends.  Arbitrary grid
/// sizes are supported through the Bluestein transform.
///
/// `out[c] = Σ_m W_m · x[(c + m) mod N]`.
pub fn correlate_power_periodic(x: &[f64], kernel: &[f64], h: u64) -> Vec<f64> {
    assert!(!kernel.is_empty(), "kernel must have at least one tap");
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if h == 0 {
        return x.to_vec();
    }
    assert!(
        kernel.len() <= n,
        "kernel of {} taps does not fit a periodic grid of {} cells",
        kernel.len(),
        n
    );
    let zx: Vec<Complex64> = x.iter().map(|&v| Complex64::from(v)).collect();
    let mut zk: Vec<Complex64> = kernel.iter().map(|&v| Complex64::from(v)).collect();
    zk.resize(n, Complex64::ZERO);
    let sx = bluestein::dft(&zx, Direction::Forward);
    let sk = bluestein::dft(&zk, Direction::Forward);
    let spec: Vec<Complex64> =
        sx.iter().zip(&sk).map(|(&xv, &kv)| xv * kv.conj().powu(h)).collect();
    bluestein::dft(&spec, Direction::Inverse).into_iter().map(|v| v.re).collect()
}

/// Explicit taps of `kernel^{⊛h}` (h-fold self-convolution), computed by
/// FFT powering.  Used by tests, the direct-weights ablation backend, and the
/// naive base cases.
pub fn kernel_power_taps(kernel: &[f64], h: u64) -> Vec<f64> {
    assert!(!kernel.is_empty());
    if h == 0 {
        return vec![1.0];
    }
    if h == 1 {
        return kernel.to_vec();
    }
    let w_len = power_kernel_len(kernel.len(), h);
    let n = next_pow2(w_len);
    let mut spec = crate::real::fft_real(kernel, n);
    for v in spec.iter_mut() {
        *v = v.powu(h);
    }
    ifft_real(spec, w_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_correlate_valid(x: &[f64], w: &[f64]) -> Vec<f64> {
        let out_len = x.len() + 1 - w.len();
        (0..out_len).map(|c| w.iter().enumerate().map(|(m, &wm)| wm * x[c + m]).sum()).collect()
    }

    fn naive_step_periodic(x: &[f64], kernel: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|c| kernel.iter().enumerate().map(|(m, &wm)| wm * x[(c + m) % n]).sum())
            .collect()
    }

    fn naive_conv(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| next()).collect()
    }

    #[test]
    fn linear_convolve_matches_naive_small_and_large() {
        for (la, lb, seed) in [(3usize, 5usize, 1u64), (40, 17, 2), (300, 120, 3)] {
            let a = rand_real(la, seed);
            let b = rand_real(lb, seed + 100);
            let got = linear_convolve(&a, &b);
            let want = naive_conv(&a, &b);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn kernel_power_taps_binomial() {
        // [s0, s1]^⊛h has binomial taps C(h,m) s0^{h-m} s1^m.
        let s0 = 0.45;
        let s1 = 0.52;
        let h = 12u64;
        let taps = kernel_power_taps(&[s0, s1], h);
        assert_eq!(taps.len(), 13);
        let mut binom = 1.0f64;
        for (m, &t) in taps.iter().enumerate() {
            let want = binom * s0.powi((h as usize - m) as i32) * s1.powi(m as i32);
            assert!((t - want).abs() < 1e-12, "m={m}: {t} vs {want}");
            binom = binom * (h as f64 - m as f64) / (m as f64 + 1.0);
        }
    }

    #[test]
    fn kernel_power_taps_by_repeated_convolution() {
        let kernel = [0.2, 0.5, 0.25];
        let mut want = vec![1.0];
        for h in 0..=9u64 {
            let got = kernel_power_taps(&kernel, h);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "h={h}");
            }
            want = naive_conv(&want, &kernel);
        }
    }

    #[test]
    fn correlate_power_valid_equals_stepped_naive() {
        let kernel = [0.48, 0.5];
        let x = rand_real(200, 7);
        for h in [1u64, 2, 3, 10, 37] {
            let got = correlate_power_valid(&x, &kernel, h);
            // step the stencil naively h times
            let mut row = x.clone();
            for _ in 0..h {
                row = (0..row.len() - 1)
                    .map(|c| kernel[0] * row[c] + kernel[1] * row[c + 1])
                    .collect();
            }
            assert_eq!(got.len(), row.len());
            for (g, w) in got.iter().zip(&row) {
                assert!((g - w).abs() < 1e-9, "h={h}");
            }
        }
    }

    #[test]
    fn correlate_power_valid_three_tap() {
        let kernel = [0.3, 0.35, 0.3];
        let x = rand_real(150, 8);
        let h = 20u64;
        let got = correlate_power_valid(&x, &kernel, h);
        let mut row = x.clone();
        for _ in 0..h {
            row = (0..row.len() - 2)
                .map(|c| kernel[0] * row[c] + kernel[1] * row[c + 1] + kernel[2] * row[c + 2])
                .collect();
        }
        assert_eq!(got.len(), row.len());
        for (g, w) in got.iter().zip(&row) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn correlate_power_valid_equals_explicit_tap_correlation() {
        // Independent cross-check: materialise W = kernel^{⊛h} and correlate
        // naively; the spectral shortcut must agree.
        let kernel = [0.47, 0.51];
        let x = rand_real(64, 21);
        for h in [1u64, 4, 9] {
            let taps = kernel_power_taps(&kernel, h);
            let want = naive_correlate_valid(&x, &taps);
            let got = correlate_power_valid(&x, &kernel, h);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "h={h}");
            }
        }
    }

    #[test]
    fn correlate_power_valid_h_zero_is_identity() {
        let x = rand_real(10, 3);
        assert_eq!(correlate_power_valid(&x, &[0.5, 0.5], 0), x);
    }

    #[test]
    fn correlate_power_valid_single_tap_kernel() {
        let x = rand_real(8, 4);
        let got = correlate_power_valid(&x, &[0.9], 10);
        for (g, xv) in got.iter().zip(&x) {
            assert!((g - xv * 0.9f64.powi(10)).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_matches_stepped_naive_with_wraparound() {
        let kernel = [0.2, 0.5, 0.28];
        for n in [7usize, 16, 31] {
            let x = rand_real(n, n as u64 + 5);
            for h in [1u64, 2, 5, 13] {
                let got = correlate_power_periodic(&x, &kernel, h);
                let mut row = x.clone();
                for _ in 0..h {
                    row = naive_step_periodic(&row, &kernel);
                }
                for (g, w) in got.iter().zip(&row) {
                    assert!((g - w).abs() < 1e-8, "n={n} h={h}");
                }
            }
        }
    }

    #[test]
    fn huge_power_does_not_blow_up() {
        // ‖kernel‖₁ < 1 ⇒ the evolved row must decay, never explode/NaN.
        let kernel = [0.4, 0.55];
        let x = vec![1.0; 4000];
        let got = correlate_power_valid(&x, &kernel, 2000);
        assert_eq!(got.len(), 2000);
        for &v in &got {
            assert!(v.is_finite());
            assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn valid_mode_rejects_short_input() {
        correlate_power_valid(&[1.0, 2.0, 3.0], &[0.5, 0.5], 5);
    }
}
