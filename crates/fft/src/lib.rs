//! # amopt-fft — FFT substrate for the nonlinear-stencil option pricer
//!
//! From-scratch double-precision FFT stack built for the reproduction of
//! *Fast American Option Pricing using Nonlinear Stencils* (PPoPP 2024):
//!
//! * [`Complex64`] — minimal complex arithmetic, including the stable polar
//!   integer power used for pointwise spectrum powering.
//! * [`radix2`] — iterative power-of-two Cooley–Tukey transform with a
//!   process-wide plan cache and fork-join parallel butterfly passes.
//! * [`bluestein`] — arbitrary-length transforms via the chirp-z identity.
//! * [`real`] — two-for-one real-input packing.
//! * [`convolve`] — linear convolution plus the kernel-power correlation
//!   primitives ([`correlate_power_valid`], [`correlate_power_periodic`])
//!   that implement the linear-stencil algorithm of Ahmad et al. (SPAA 2021),
//!   the substrate reference \[1\] of the paper.
//!
//! Everything is `f64`; transforms of the sizes used by the pricer
//! (`≤ 2²¹`) keep relative error around `1e-13 · log n`.

#![forbid(unsafe_code)]

pub mod bluestein;
pub mod complex;
pub mod convolve;
pub mod radix2;
pub mod real;

pub use complex::{c64, Complex64};
pub use convolve::{
    correlate_power_periodic, correlate_power_valid, correlate_power_valid_with, kernel_power_taps,
    linear_convolve, power_kernel_len, FftScratch,
};
pub use radix2::{fft, ifft, next_pow2, plan, Direction, Fft};
pub use real::{fft_real, fft_two_real, ifft_real};
