//! Bluestein (chirp-z) algorithm: DFT of arbitrary length via one
//! power-of-two cyclic convolution.
//!
//! Needed by the periodic-grid linear-stencil algorithm of Ahmad et al.
//! (reference \[1\] of the paper), whose grids are sized by the problem, not by
//! powers of two.  Identity used:
//!
//! `X_k = c_k · Σ_n (x_n c_n) · conj(c_{k−n})`, with chirp
//! `c_m = e^{-iπ m² / N}`.
//!
//! The quadratic phase `m²` is reduced modulo `2N` in exact integer
//! arithmetic before the sine/cosine evaluation, otherwise the phase loses
//! all precision once `m² > 2⁵³`.

use crate::complex::Complex64;
use crate::radix2::{self, Direction};

/// Chirp factor `e^{-iπ m²/N}` with exact modular phase reduction.
fn chirp(m: usize, n: usize) -> Complex64 {
    let m2 = (m as u128 * m as u128) % (2 * n as u128);
    Complex64::cis(-std::f64::consts::PI * m2 as f64 / n as f64)
}

/// Out-of-place DFT of arbitrary length.
pub fn dft(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        radix2::plan(n).transform(&mut buf, dir);
        return buf;
    }
    match dir {
        Direction::Forward => bluestein_forward(x),
        Direction::Inverse => {
            // ifft(x) = conj(fft(conj(x))) / n
            let conj_in: Vec<Complex64> = x.iter().map(|v| v.conj()).collect();
            let mut out = bluestein_forward(&conj_in);
            let scale = 1.0 / n as f64;
            for v in out.iter_mut() {
                *v = v.conj().scale(scale);
            }
            out
        }
    }
}

fn bluestein_forward(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let m = radix2::next_pow2(2 * n - 1);
    let plan = radix2::plan(m);

    // a = x ⊙ chirp, zero-padded.
    let mut a = vec![Complex64::ZERO; m];
    for (i, &v) in x.iter().enumerate() {
        a[i] = v * chirp(i, n);
    }

    // b = conj(chirp) arranged cyclically so that b[(k - n') mod m] = conj(c_{k-n'}).
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp(0, n).conj();
    for i in 1..n {
        let c = chirp(i, n).conj();
        b[i] = c;
        b[m - i] = c;
    }

    plan.forward(&mut a);
    plan.forward(&mut b);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av *= *bv;
    }
    plan.inverse(&mut a);

    (0..n).map(|k| chirp(k, n) * a[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn dft_naive(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = x.len();
        let sign = if dir == Direction::Forward { -1.0 } else { 1.0 };
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
                acc += v * Complex64::cis(theta);
            }
            *o = if dir == Direction::Inverse { acc.scale(1.0 / n as f64) } else { acc };
        }
        out
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| c64(next(), next())).collect()
    }

    #[test]
    fn matches_naive_for_awkward_sizes() {
        for &n in &[1usize, 3, 5, 6, 7, 12, 45, 97, 100, 255] {
            let x = rand_signal(n, n as u64);
            let got = dft(&x, Direction::Forward);
            let want = dft_naive(&x, Direction::Forward);
            let err = got.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-8 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn roundtrip_arbitrary_size() {
        for &n in &[3usize, 17, 129, 1000] {
            let x = rand_signal(n, 77 + n as u64);
            let spec = dft(&x, Direction::Forward);
            let back = dft(&spec, Direction::Inverse);
            let err = back.iter().zip(&x).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn pow2_sizes_route_through_radix2() {
        let x = rand_signal(64, 4);
        let got = dft(&x, Direction::Forward);
        let want = dft_naive(&x, Direction::Forward);
        let err = got.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9);
    }

    #[test]
    fn large_prime_size_stays_accurate() {
        // Exercises the exact modular phase reduction: 9973² ≫ 2³².
        let n = 9973;
        let x = rand_signal(n, 9);
        let spec = dft(&x, Direction::Forward);
        let back = dft(&spec, Direction::Inverse);
        let err = back.iter().zip(&x).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "err={err}");
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[], Direction::Forward).is_empty());
    }
}
