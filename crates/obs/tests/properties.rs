//! Property tests for the observability primitives, over deterministic
//! pseudo-random inputs (a seeded SplitMix64 stream — no RNG crate, and
//! every failure reproduces from the printed seed).
//!
//! * log2 histograms: the buckets partition `u64`, `merge` is an
//!   associative/commutative monoid with the empty snapshot as identity,
//!   and everything at or above the top-bucket threshold saturates into
//!   the top bucket instead of widening the array;
//! * trace cards: stamps are monotone under in-order stamping, the stage
//!   breakdown reconstructs the end-to-end latency *exactly* (for
//!   arbitrary, even adversarial, stamp patterns), and the journal event
//!   packing round-trips.

use amopt_obs::{
    bucket_bound, bucket_index, HistSnapshot, Histogram, RequestTrace, Stage, TraceCard,
    HIST_BUCKETS, STAGES, STAGE_COUNT,
};

/// SplitMix64: the standard 64-bit finalizer; bijective and well mixed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The `i`-th draw of the seeded stream, skewed so small values, mid
/// values, and near-max values all occur (a uniform u64 draw almost never
/// exercises the low buckets).
fn draw(seed: u64, i: u64) -> u64 {
    let r = splitmix64(seed ^ i);
    match r % 4 {
        0 => r % 16,                    // low buckets, including exact zero
        1 => r % (1 << 20),             // mid buckets
        2 => r >> (r % 33),             // variable magnitude
        _ => u64::MAX - (r % (1 << 8)), // top-bucket saturation range
    }
}

#[test]
fn buckets_partition_the_u64_range() {
    // Every value lands in exactly one bucket, below that bucket's bound
    // and above the previous bucket's bound.
    for i in 0..4096u64 {
        let v = draw(0xB0C4E7, i);
        let b = bucket_index(v);
        assert!(b < HIST_BUCKETS, "bucket {b} out of range for {v}");
        assert!(v <= bucket_bound(b), "{v} above its bucket bound {}", bucket_bound(b));
        if b > 0 {
            assert!(v > bucket_bound(b - 1), "{v} at or below the previous bound");
        }
    }
    // The boundaries themselves are exact: each bound is the largest value
    // of its bucket, and bound+1 starts the next bucket.
    assert_eq!(bucket_index(0), 0, "bucket 0 holds exact zeros");
    assert_eq!(bucket_index(1), 1);
    for b in 1..HIST_BUCKETS - 1 {
        assert_eq!(bucket_index(bucket_bound(b)), b);
        assert_eq!(bucket_index(bucket_bound(b) + 1), b + 1);
    }
    assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
}

/// Records `n` draws of `seed` into a fresh histogram and snapshots it.
fn random_snapshot(seed: u64, n: u64) -> HistSnapshot {
    let hist = Histogram::detached();
    for i in 0..n {
        hist.record(draw(seed, i));
    }
    hist.snapshot()
}

#[test]
fn merge_is_an_associative_commutative_monoid() {
    let a = random_snapshot(1, 300);
    let b = random_snapshot(2, 500);
    let c = random_snapshot(3, 700);
    assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "merge must be associative");
    assert_eq!(a.merge(&b), b.merge(&a), "merge must be commutative");
    let empty = HistSnapshot::default();
    assert_eq!(a.merge(&empty), a, "empty snapshot must be the identity");
    assert_eq!(empty.merge(&a), a);
    // The merge really is the histogram of the union: recording both
    // streams into one histogram gives the same snapshot.
    let both = Histogram::detached();
    for i in 0..300 {
        both.record(draw(1, i));
    }
    for i in 0..500 {
        both.record(draw(2, i));
    }
    assert_eq!(a.merge(&b), both.snapshot(), "merge must equal the union stream");
}

#[test]
fn snapshot_counts_are_internally_consistent() {
    let snap = random_snapshot(0x5EED, 2048);
    assert_eq!(snap.count, 2048);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count, "buckets must sum to count");
    let expected_sum: u64 = (0..2048).map(|i| draw(0x5EED, i)).fold(0, u64::wrapping_add);
    assert_eq!(snap.sum, expected_sum, "sum must add up every recorded value");
}

#[test]
fn top_bucket_saturates_instead_of_widening() {
    // Everything with bit length ≥ the top bucket index lands in the top
    // bucket — the array never widens, huge values never wrap around.
    let threshold = 1u64 << (HIST_BUCKETS - 2);
    assert_eq!(bucket_index(threshold - 1), HIST_BUCKETS - 2, "below threshold: last finite");
    assert_eq!(bucket_index(threshold), HIST_BUCKETS - 1, "at threshold: top bucket");
    let hist = Histogram::detached();
    let mut recorded = 0u64;
    for i in 0..256u64 {
        let huge = threshold.saturating_add(splitmix64(i)); // ≥ threshold, up to u64::MAX
        hist.record(huge);
        recorded += 1;
    }
    let snap = hist.snapshot();
    assert_eq!(snap.buckets[HIST_BUCKETS - 1], recorded, "every huge value in the top bucket");
    assert_eq!(snap.count, recorded);
    assert_eq!(snap.quantile(0.5), u64::MAX, "top-bucket quantiles report the open bound");
    // Merging counters near u64::MAX saturates rather than wrapping.
    let mut near_max = HistSnapshot::default();
    near_max.buckets[HIST_BUCKETS - 1] = u64::MAX - 3;
    near_max.count = u64::MAX - 3;
    let merged = near_max.merge(&snap);
    assert_eq!(merged.buckets[HIST_BUCKETS - 1], u64::MAX, "merge must saturate, not wrap");
    assert_eq!(merged.count, u64::MAX);
}

#[test]
fn in_order_stamping_yields_monotone_cards_that_sum_exactly() {
    for round in 0..64u64 {
        let seed = splitmix64(0x7_4ACE ^ round);
        let trace = RequestTrace::start();
        // Stamp a random subset of stages, in stage order (as the service
        // does); real elapsed time makes the stamps genuinely increasing.
        for (i, &stage) in STAGES.iter().enumerate() {
            if !splitmix64(seed ^ i as u64).is_multiple_of(4) {
                trace.stamp(stage);
            }
        }
        assert!(trace.finish(), "first finish must win");
        assert!(!trace.finish(), "second finish must be a no-op");
        let card = trace.card();
        assert!(card.is_monotone(), "in-order stamps must be monotone: {card:?}");
        let sum: u64 = card.breakdown().iter().map(|&(_, d)| d).sum();
        assert_eq!(
            sum,
            card.end_to_end_nanos(),
            "stage breakdown must reconstruct the end-to-end latency exactly: {card:?}"
        );
    }
}

#[test]
fn breakdown_sums_to_end_to_end_for_arbitrary_stamp_patterns() {
    // The exact-sum identity holds for *any* stamp pattern — including
    // unstamped holes and non-monotone (clock-skewed) stamps — because the
    // per-stage durations telescope along the running maximum.
    for round in 0..4096u64 {
        let seed = splitmix64(0xCA4D ^ round);
        let mut stamps = [0u64; STAGE_COUNT];
        for (i, slot) in stamps.iter_mut().enumerate() {
            let r = splitmix64(seed ^ (i as u64) << 8);
            *slot = match r % 3 {
                0 => 0, // unstamped hole
                1 => r % 1_000,
                _ => r % 1_000_000_000,
            };
        }
        let card = TraceCard { id: round, kind: round % 4, flags: 0, stamps };
        let sum: u64 = card.stage_nanos().iter().flatten().sum();
        assert_eq!(sum, card.end_to_end_nanos(), "telescoping failed for {card:?}");
    }
}

#[test]
fn trace_cards_round_trip_through_journal_events() {
    for round in 0..512u64 {
        let seed = splitmix64(0xE7E47 ^ round);
        let mut stamps = [0u64; STAGE_COUNT];
        for (i, slot) in stamps.iter_mut().enumerate() {
            *slot = splitmix64(seed ^ i as u64);
        }
        let card = TraceCard {
            id: splitmix64(seed),
            // kind and flags share a payload word: 32 bits each.
            kind: splitmix64(seed ^ 1) >> 32,
            flags: splitmix64(seed ^ 2) & 0xffff_ffff,
            stamps,
        };
        let unpacked = TraceCard::from_event(&card.to_event()).expect("trace event unpacks");
        assert_eq!(unpacked, card, "journal packing must be lossless");
    }
}

#[test]
fn stamps_are_first_write_wins() {
    let trace = RequestTrace::start();
    trace.stamp(Stage::Parsed);
    let card = trace.card();
    let first = card.stamps[Stage::Parsed as usize];
    assert!(first > 0, "a stamp is never stored as zero");
    std::thread::sleep(std::time::Duration::from_millis(1));
    trace.stamp(Stage::Parsed);
    assert_eq!(
        trace.card().stamps[Stage::Parsed as usize],
        first,
        "re-stamping must not move an existing stamp"
    );
}
