//! Per-request tracing: a card of monotonic stage timestamps stamped
//! through the whole request lifecycle.
//!
//! A [`RequestTrace`] is created when a request enters the system (socket
//! accept for wire requests, submit entry for in-process ones) and shared
//! — one `Arc`, atomic fields, no locks — between the front end that owns
//! the connection and the worker that executes the batch.  Each lifecycle
//! stage stores its offset from the card's origin in nanoseconds; offsets
//! are taken from one monotonic [`Instant`], so a stamped sequence is
//! non-decreasing by construction and the per-stage durations (successive
//! differences) sum to exactly the last-stamp end-to-end time.
//!
//! [`RequestTrace::finish`] is the single delivery point: it stamps
//! [`Stage::Delivered`], and its exactly-once flag tells the caller to
//! record stage histograms and journal the completed [`TraceCard`] — so a
//! card lands in the journal once no matter how many delivery paths race.

use crate::journal::{Event, EventKind, EVENT_PAYLOAD_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of stamped lifecycle stages.
pub const STAGE_COUNT: usize = 7;

/// Lifecycle stages, in stamping order.  Each stage names the *end* of an
/// interval; the interval's duration is the difference from the previous
/// stamped stage (or from the origin for [`Stage::Parsed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire line decoded into a request (interval: `parse`).
    Parsed = 0,
    /// Admitted past caps/brownout and pushed onto the EDF heap
    /// (interval: `admit`).
    Enqueued = 1,
    /// Popped off the heap by a draining worker — the queue/EDF plus
    /// coalesce wait ends here (interval: `queue_wait`).
    Dequeued = 2,
    /// Batch grouped by kind, driver about to run (interval: `batch_form`).
    ExecStart = 3,
    /// Memo peeked for this request's key (interval: `memo_probe`).
    MemoProbed = 4,
    /// Result computed and the completion slot filled (interval:
    /// `execute`).
    Completed = 5,
    /// Reply delivered — written to the socket buffer or handed to the
    /// in-process waiter (interval: `reply_write`).
    Delivered = 6,
}

/// Every stage, in stamping order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Parsed,
    Stage::Enqueued,
    Stage::Dequeued,
    Stage::ExecStart,
    Stage::MemoProbed,
    Stage::Completed,
    Stage::Delivered,
];

impl Stage {
    /// Name of the interval *ending* at this stage (used for the per-stage
    /// histograms and breakdown tables).
    pub fn interval_name(self) -> &'static str {
        match self {
            Stage::Parsed => "parse",
            Stage::Enqueued => "admit",
            Stage::Dequeued => "queue_wait",
            Stage::ExecStart => "batch_form",
            Stage::MemoProbed => "memo_probe",
            Stage::Completed => "execute",
            Stage::Delivered => "reply_write",
        }
    }

    fn from_index(i: usize) -> Option<Stage> {
        STAGES.get(i).copied()
    }
}

/// Card flag: the request's price memo held the key at probe time.
pub const FLAG_MEMO_HIT: u64 = 1 << 0;
/// Card flag: the request carried an explicit budget and missed it.
pub const FLAG_DEADLINE_MISS: u64 = 1 << 1;
/// Card flag: the request resolved to an error response.
pub const FLAG_ERROR: u64 = 1 << 2;
/// Card flag: the result was never taken — the requester vanished (its
/// connection died before the reply could be pumped) and the card was
/// journaled at abandonment instead of delivery.
pub const FLAG_ABANDONED: u64 = 1 << 3;
const FLAG_FINISHED: u64 = 1 << 63;

/// The live, shared trace of one in-flight request.  See the module docs.
#[derive(Debug)]
pub struct RequestTrace {
    origin: Instant,
    id: AtomicU64,
    /// Request-kind discriminant (0 price, 1 greeks, 2 implied-vol,
    /// 3 other), packed into the card.
    kind: AtomicU64,
    flags: AtomicU64,
    stamps: [AtomicU64; STAGE_COUNT],
}

impl RequestTrace {
    /// A fresh card whose origin is now.
    pub fn start() -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            origin: Instant::now(),
            id: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            flags: AtomicU64::new(0),
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// Tags the card with the request id (wire id or submit sequence).
    pub fn set_id(&self, id: u64) {
        self.id.store(id, Ordering::Relaxed);
    }

    /// Tags the card with the request-kind discriminant.
    pub fn set_kind(&self, kind: u64) {
        self.kind.store(kind, Ordering::Relaxed);
    }

    /// Sets a `FLAG_*` bit.
    pub fn set_flag(&self, flag: u64) {
        // amopt-lint: hot-path
        self.flags.fetch_or(flag, Ordering::Relaxed);
    }

    /// Stamps `stage` with the elapsed time since the card's origin.  The
    /// first stamp wins; re-stamping is a no-op, so racing delivery paths
    /// cannot move a stamp backwards.  A genuine zero-nanosecond offset is
    /// stored as 1 ns to keep 0 meaning "unstamped".
    pub fn stamp(&self, stage: Stage) {
        // amopt-lint: hot-path
        let nanos = self.elapsed_nanos().max(1);
        if let Some(slot) = self.stamps.get(stage as usize) {
            let _ = slot.compare_exchange(0, nanos, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Nanoseconds since the card's origin (saturating; u64 holds ~584
    /// years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Marks the card delivered: stamps [`Stage::Delivered`] and returns
    /// `true` for exactly one caller — whoever gets `true` owns recording
    /// the stage histograms and journaling the card.
    pub fn finish(&self) -> bool {
        // amopt-lint: hot-path
        self.stamp(Stage::Delivered);
        self.flags.fetch_or(FLAG_FINISHED, Ordering::AcqRel) & FLAG_FINISHED == 0
    }

    /// A plain-data copy of the card.
    pub fn card(&self) -> TraceCard {
        TraceCard {
            id: self.id.load(Ordering::Relaxed),
            kind: self.kind.load(Ordering::Relaxed),
            flags: self.flags.load(Ordering::Relaxed) & !FLAG_FINISHED,
            stamps: std::array::from_fn(|i| self.stamps[i].load(Ordering::Relaxed)),
        }
    }
}

/// A completed (or in-flight) trace card: plain data, journal-packable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCard {
    /// Request id (wire id, or the submit sequence for in-process calls).
    pub id: u64,
    /// Request-kind discriminant (0 price, 1 greeks, 2 implied-vol).
    pub kind: u64,
    /// `FLAG_*` bits.
    pub flags: u64,
    /// Per-stage offsets from the card origin, nanoseconds; 0 = unstamped.
    pub stamps: [u64; STAGE_COUNT],
}

impl TraceCard {
    /// Per-stage durations in nanoseconds: for each *stamped* stage, the
    /// difference from the previous stamped stage (origin for the first).
    /// Unstamped stages yield `None`.  The sum of all `Some` durations
    /// equals the largest stamp — i.e. the stage breakdown reconstructs
    /// the end-to-end latency exactly.
    pub fn stage_nanos(&self) -> [Option<u64>; STAGE_COUNT] {
        let mut out = [None; STAGE_COUNT];
        let mut prev = 0u64;
        for (i, &stamp) in self.stamps.iter().enumerate() {
            if stamp == 0 {
                continue;
            }
            out[i] = Some(stamp.saturating_sub(prev));
            prev = prev.max(stamp);
        }
        out
    }

    /// End-to-end nanoseconds: the largest stamp (delivery when the card
    /// finished normally).
    pub fn end_to_end_nanos(&self) -> u64 {
        self.stamps.iter().copied().max().unwrap_or(0)
    }

    /// Whether the stamped stages are non-decreasing in stamping order.
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for &stamp in &self.stamps {
            if stamp == 0 {
                continue;
            }
            if stamp < prev {
                return false;
            }
            prev = stamp;
        }
        true
    }

    /// Packs the card into a journal event.
    pub fn to_event(&self) -> Event {
        let mut payload = [0u64; EVENT_PAYLOAD_WORDS];
        payload[0] = self.id;
        payload[1] = (self.kind << 32) | (self.flags & 0xffff_ffff);
        payload[2..2 + STAGE_COUNT].copy_from_slice(&self.stamps);
        Event { kind: EventKind::Trace, payload }
    }

    /// Unpacks a card from a journal event (`None` for other kinds).
    pub fn from_event(event: &Event) -> Option<TraceCard> {
        if event.kind != EventKind::Trace {
            return None;
        }
        let mut stamps = [0u64; STAGE_COUNT];
        stamps.copy_from_slice(&event.payload[2..2 + STAGE_COUNT]);
        Some(TraceCard {
            id: event.payload[0],
            kind: event.payload[1] >> 32,
            flags: event.payload[1] & 0xffff_ffff,
            stamps,
        })
    }

    /// `(interval name, duration)` for every stamped stage, in order.
    pub fn breakdown(&self) -> Vec<(&'static str, u64)> {
        self.stage_nanos()
            .iter()
            .enumerate()
            .filter_map(|(i, d)| Some((Stage::from_index(i)?.interval_name(), (*d)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_durations_reconstruct_end_to_end() {
        let trace = RequestTrace::start();
        trace.set_id(42);
        trace.set_kind(1);
        for stage in STAGES {
            trace.stamp(stage);
        }
        let card = trace.card();
        assert!(card.is_monotone());
        let total: u64 = card.stage_nanos().iter().flatten().sum();
        assert_eq!(total, card.end_to_end_nanos());
        assert_eq!(card.id, 42);
        assert_eq!(card.kind, 1);
        assert_eq!(card.breakdown().len(), STAGE_COUNT);
    }

    #[test]
    fn first_stamp_wins() {
        let trace = RequestTrace::start();
        trace.stamp(Stage::Parsed);
        let first = trace.card().stamps[0];
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.stamp(Stage::Parsed);
        assert_eq!(trace.card().stamps[0], first);
    }

    #[test]
    fn finish_returns_true_exactly_once() {
        let trace = RequestTrace::start();
        assert!(trace.finish());
        assert!(!trace.finish());
        assert!(trace.card().stamps[Stage::Delivered as usize] > 0);
        // The finished bit is bookkeeping, not part of the card's flags.
        assert_eq!(trace.card().flags, 0);
    }

    #[test]
    fn cards_round_trip_through_journal_events() {
        let card = TraceCard {
            id: 7,
            kind: 2,
            flags: FLAG_MEMO_HIT | FLAG_DEADLINE_MISS,
            stamps: [1, 2, 3, 4, 5, 6, 7],
        };
        let back = TraceCard::from_event(&card.to_event()).expect("trace event");
        assert_eq!(back, card);
        let fault = Event::new(EventKind::Fault, &[1, 2]);
        assert_eq!(TraceCard::from_event(&fault), None);
    }

    #[test]
    fn unstamped_stages_are_skipped_in_the_breakdown() {
        let card = TraceCard { id: 0, kind: 0, flags: 0, stamps: [0, 10, 0, 30, 0, 90, 100] };
        let nanos = card.stage_nanos();
        assert_eq!(nanos[0], None);
        assert_eq!(nanos[1], Some(10));
        assert_eq!(nanos[3], Some(20));
        assert_eq!(nanos[5], Some(60));
        assert_eq!(nanos[6], Some(10));
        let total: u64 = nanos.iter().flatten().sum();
        assert_eq!(total, card.end_to_end_nanos());
        assert!(card.is_monotone());
        assert!(!TraceCard { stamps: [5, 4, 0, 0, 0, 0, 0], ..card }.is_monotone());
    }
}
