//! Static kernel phase timers for the trapezoid/cone engines.
//!
//! The engines spend their time in three places the cache-tuning work
//! (ROADMAP item 4) needs to see separately: the **FFT pass** advancing
//! certified-red regions, the **boundary window** recursion around the
//! red/green boundary, and the **base case** naive loops below the
//! cutoff.  A [`KernelScope`] guard wraps each, accumulating call counts
//! and wall nanoseconds into process-wide statics — statics, because the
//! engines are plumbing-free by design and a handle parameter through the
//! recursion would cost more than the timers.
//!
//! `amopt-core` compiles the scopes only under its `obs` cargo feature;
//! without it the guards do not exist and the engines pay nothing.  The
//! statics here are always present (they are three pairs of atomics), so
//! the service can render them into its metrics exposition unconditionally
//! — they simply stay zero when the engines were built without `obs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of instrumented kernel phases.
pub const KERNEL_PHASE_COUNT: usize = 3;

/// One instrumented phase of the stencil engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPhase {
    /// Linear FFT advance over a certified-red region.
    FftPass = 0,
    /// Boundary-centred window recursion (the half-height subproblem).
    BoundaryWindow = 1,
    /// Naive base-case loop at or below the cutoff height.
    BaseCase = 2,
}

/// Every phase, in discriminant order.
pub const KERNEL_PHASES: [KernelPhase; KERNEL_PHASE_COUNT] =
    [KernelPhase::FftPass, KernelPhase::BoundaryWindow, KernelPhase::BaseCase];

impl KernelPhase {
    /// Stable snake_case name (used in metric names).
    pub fn name(self) -> &'static str {
        match self {
            KernelPhase::FftPass => "fft_pass",
            KernelPhase::BoundaryWindow => "boundary_window",
            KernelPhase::BaseCase => "base_case",
        }
    }
}

struct PhaseCell {
    calls: AtomicU64,
    nanos: AtomicU64,
}

impl PhaseCell {
    const fn new() -> PhaseCell {
        PhaseCell { calls: AtomicU64::new(0), nanos: AtomicU64::new(0) }
    }
}

static TIMERS: [PhaseCell; KERNEL_PHASE_COUNT] =
    [PhaseCell::new(), PhaseCell::new(), PhaseCell::new()];

/// A scope guard timing one phase: accumulates on drop.
#[derive(Debug)]
pub struct KernelScope {
    phase: KernelPhase,
    start: Instant,
}

impl KernelScope {
    /// Starts timing `phase`.
    #[inline]
    pub fn start(phase: KernelPhase) -> KernelScope {
        KernelScope { phase, start: Instant::now() }
    }
}

impl Drop for KernelScope {
    #[inline]
    fn drop(&mut self) {
        // amopt-lint: hot-path
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(cell) = TIMERS.get(self.phase as usize) {
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

/// Point-in-time counters of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelPhaseStats {
    /// Scopes entered.
    pub calls: u64,
    /// Wall nanoseconds accumulated across scopes (nested scopes — a base
    /// case inside a window — count their full extent in each).
    pub nanos: u64,
}

/// Snapshot of every phase, indexed like [`KERNEL_PHASES`].
pub fn snapshot() -> [KernelPhaseStats; KERNEL_PHASE_COUNT] {
    std::array::from_fn(|i| KernelPhaseStats {
        calls: TIMERS[i].calls.load(Ordering::Relaxed),
        nanos: TIMERS[i].nanos.load(Ordering::Relaxed),
    })
}

/// Zeroes every phase counter (bench/test isolation).
pub fn reset() {
    for cell in &TIMERS {
        cell.calls.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
    }
}

/// Appends the kernel phase counters to a metrics exposition in the same
/// Prometheus-style text the registry renders.
pub fn render_into(out: &mut String) {
    use std::fmt::Write as _;
    for (phase, stats) in KERNEL_PHASES.iter().zip(snapshot()) {
        let name = phase.name();
        let _ = writeln!(
            out,
            "# HELP amopt_kernel_{name}_calls_total Kernel {name} scopes entered (0 unless built \
             with the obs feature)"
        );
        let _ = writeln!(out, "# TYPE amopt_kernel_{name}_calls_total counter");
        let _ = writeln!(out, "amopt_kernel_{name}_calls_total {}", stats.calls);
        let _ = writeln!(
            out,
            "# HELP amopt_kernel_{name}_nanos_total Wall nanoseconds inside kernel {name} scopes"
        );
        let _ = writeln!(out, "# TYPE amopt_kernel_{name}_nanos_total counter");
        let _ = writeln!(out, "amopt_kernel_{name}_nanos_total {}", stats.nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_and_reset_zeroes() {
        reset();
        {
            let _fft = KernelScope::start(KernelPhase::FftPass);
            let _base = KernelScope::start(KernelPhase::BaseCase);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = snapshot();
        assert_eq!(snap[KernelPhase::FftPass as usize].calls, 1);
        assert_eq!(snap[KernelPhase::BaseCase as usize].calls, 1);
        assert_eq!(snap[KernelPhase::BoundaryWindow as usize].calls, 0);
        assert!(snap[KernelPhase::FftPass as usize].nanos >= 1_000_000);
        let mut text = String::new();
        render_into(&mut text);
        assert!(text.contains("amopt_kernel_fft_pass_calls_total 1"), "{text}");
        assert!(text.contains("# TYPE amopt_kernel_base_case_nanos_total counter"));
        reset();
        assert_eq!(snapshot()[0], KernelPhaseStats::default());
    }
}
