//! The metrics registry: named counters, gauges, and log2 histograms on
//! plain atomics.
//!
//! Registration (naming an instrument, allocating its cell) happens once
//! at startup and takes the registry mutex; *recording* touches only the
//! pre-allocated atomic cell behind an `Arc` handle — no lock, no
//! allocation, no branch beyond the saturating bucket clamp.  The renderer
//! re-takes the mutex, which is fine: scrapes are cold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buckets per histogram: value `v` lands in bucket `bucket_index(v)`,
/// bucket `i ≥ 1` covering `[2^(i-1), 2^i − 1]` (bucket 0 holds exact
/// zeros), with everything at or above `2^30` saturating into the top
/// bucket.  At microsecond resolution the top bucket starts around 18
/// minutes — nothing the service measures gets close.
pub const HIST_BUCKETS: usize = 32;

/// The log2 bucket of `v`: 0 for 0, otherwise the bit length of `v`,
/// clamped to the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
}

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A monotonic counter handle.  Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// A detached counter not attached to any registry (for tests and
    /// default plumbing).
    pub fn detached() -> Counter {
        Counter(Arc::default())
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        // amopt-lint: hot-path
        self.0.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // amopt-lint: hot-path
        self.0.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle.  Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// A detached gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge(Arc::default())
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // amopt-lint: hot-path
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // amopt-lint: hot-path
        self.0.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races only in the sense
    /// that concurrent add/sub pairs always net out; a lone underflow
    /// wraps, which the service never does).
    #[inline]
    pub fn sub(&self, n: u64) {
        // amopt-lint: hot-path
        self.0.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// A log2-bucket histogram handle.  Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// A detached histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram(Arc::default())
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // amopt-lint: hot-path
        let cell = &self.0;
        if let Some(bucket) = cell.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistSnapshot {
        let cell = &self.0;
        HistSnapshot {
            buckets: std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed)),
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data histogram snapshot: per-bucket counts plus the running
/// count and sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Observations per log2 bucket (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistSnapshot {
    /// Bucket-wise merge: the histogram of the union of both observation
    /// streams.  Associative and commutative, with the empty snapshot as
    /// identity — the property tests pin this.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (slot, v) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(*v);
        }
        out.count = out.count.saturating_add(other.count);
        out.sum = out.sum.saturating_add(other.sum);
        out
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`0.0 ≤ q ≤ 1.0`), or 0 for an empty histogram.  Log2 buckets give
    /// at most 2× overestimation — good enough for breakdown tables.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }

    /// Mean observed value, or 0.0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

/// The instrument registry: name → cell, plus the Prometheus-style
/// renderer.  One per service; see the crate docs for the lock shape.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-fetches) the counter `name`.  Registering the same
    /// name twice returns a handle to the same cell, so restartable
    /// components can re-register idempotently.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Counter(c) = &e.instrument {
                    return c.clone();
                }
            }
        }
        let c = Counter::detached();
        entries.push(Entry { name, help, instrument: Instrument::Counter(c.clone()) });
        c
    }

    /// Registers (or re-fetches) the gauge `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Gauge(g) = &e.instrument {
                    return g.clone();
                }
            }
        }
        let g = Gauge::detached();
        entries.push(Entry { name, help, instrument: Instrument::Gauge(g.clone()) });
        g
    }

    /// Registers (or re-fetches) the histogram `name`.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Histogram(h) = &e.instrument {
                    return h.clone();
                }
            }
        }
        let h = Histogram::detached();
        entries.push(Entry { name, help, instrument: Instrument::Histogram(h.clone()) });
        h
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every instrument as Prometheus-style exposition text,
    /// sorted by name: `# HELP` / `# TYPE` comments, plain samples for
    /// counters and gauges, cumulative `_bucket{le="…"}` / `_sum` /
    /// `_count` samples for histograms.
    pub fn render(&self) -> String {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner()).clone();
        drop_duplicates(&mut entries);
        entries.sort_by_key(|e| e.name);
        let mut out = String::new();
        for e in &entries {
            render_entry(&mut out, e);
        }
        out
    }
}

/// Keeps the first registration of each name (duplicates can only arise
/// from a kind mismatch, which is a programming error; rendering the first
/// keeps the output well-formed).
fn drop_duplicates(entries: &mut Vec<Entry>) {
    let mut seen: Vec<&'static str> = Vec::with_capacity(entries.len());
    entries.retain(|e| {
        if seen.contains(&e.name) {
            false
        } else {
            seen.push(e.name);
            true
        }
    });
}

fn render_entry(out: &mut String, e: &Entry) {
    use std::fmt::Write as _;
    match &e.instrument {
        Instrument::Counter(c) => {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} counter", e.name);
            let _ = writeln!(out, "{} {}", e.name, c.get());
        }
        Instrument::Gauge(g) => {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} gauge", e.name);
            let _ = writeln!(out, "{} {}", e.name, g.get());
        }
        Instrument::Histogram(h) => {
            let snap = h.snapshot();
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} histogram", e.name);
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                // Skip interior empty buckets to keep scrapes compact; the
                // first, last and every non-empty bucket always render so
                // cumulative counts stay reconstructible.
                if n == 0 && i != 0 && i != HIST_BUCKETS - 1 {
                    continue;
                }
                let le = if i >= HIST_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_bound(i).to_string()
                };
                let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", e.name, le, cumulative);
            }
            let _ = writeln!(out, "{}_sum {}", e.name, snap.sum);
            let _ = writeln!(out, "{}_count {}", e.name, snap.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's bound is the largest value mapping into it.
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_bound(i)), i);
            assert_eq!(bucket_index(bucket_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn registration_is_idempotent_and_cells_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("amopt_test_total", "a test counter");
        let b = reg.counter("amopt_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = Registry::new();
        reg.counter("amopt_b_total", "b").add(7);
        reg.gauge("amopt_a_depth", "a").set(3);
        let h = reg.histogram("amopt_c_us", "c");
        h.record(0);
        h.record(5);
        h.record(1 << 40); // saturates into the top bucket
        let text = reg.render();
        // Sorted by name, typed, with cumulative histogram buckets.
        let a_at = text.find("amopt_a_depth 3").expect("gauge sample");
        let b_at = text.find("amopt_b_total 7").expect("counter sample");
        assert!(a_at < b_at, "not sorted:\n{text}");
        assert!(text.contains("# TYPE amopt_a_depth gauge"));
        assert!(text.contains("# TYPE amopt_b_total counter"));
        assert!(text.contains("# TYPE amopt_c_us histogram"));
        assert!(text.contains("amopt_c_us_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("amopt_c_us_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("amopt_c_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains(&format!("amopt_c_us_sum {}", 5u64 + (1 << 40))));
        assert!(text.contains("amopt_c_us_count 3"));
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let h = Histogram::detached();
        for v in [1u64, 2, 2, 3, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(0.5), 3); // median 2 lands in [2,3]
        assert_eq!(snap.quantile(1.0), 127); // 100 lands in [64,127]
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.record(1);
        a.record(9);
        b.record(9);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 19);
        assert_eq!(merged.buckets[bucket_index(9)], 2);
        assert_eq!(merged.buckets[bucket_index(1)], 1);
    }
}
