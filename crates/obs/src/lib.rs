//! Flightdeck — the workspace's zero-alloc observability layer.
//!
//! Four pieces, all dependency-free and allocation-free on their record
//! paths (machine-checked by `amopt-lint`'s `hot-path-alloc` pass):
//!
//! * [`Registry`]: a lock-light metrics registry of monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s.
//!   Instruments are registered once at startup (registration takes a
//!   mutex; recording is a single atomic RMW on a pre-allocated cell) and
//!   exposed as Prometheus-style text via [`Registry::render`].
//! * [`trace`]: per-request [`RequestTrace`] cards of monotonic stage
//!   timestamps (parse → admit → queue/EDF wait → batch form → memo probe
//!   → execute → reply write), stamped lock-free through the whole request
//!   lifecycle and aggregated into per-stage histograms.
//! * [`Journal`]: a lock-free ring buffer of fixed-size [`Event`]s — the
//!   flight recorder.  Completed trace cards, fault-injection firings,
//!   worker restarts, brownout sheds, retries, and deadline misses all
//!   land here; [`Journal::recent`] samples the newest N without stopping
//!   writers.
//! * [`kernel`]: static phase timers for the trapezoid/cone engines (FFT
//!   pass vs boundary window vs base case), enabled by the `obs` cargo
//!   feature of `amopt-core` and zero-cost when disabled.
//!
//! [`RequestTrace`]: trace::RequestTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod kernel;
pub mod registry;
pub mod trace;

pub use journal::{Event, EventKind, Journal, EVENT_PAYLOAD_WORDS};
pub use registry::{
    bucket_bound, bucket_index, Counter, Gauge, HistSnapshot, Histogram, Registry, HIST_BUCKETS,
};
pub use trace::{
    RequestTrace, Stage, TraceCard, FLAG_ABANDONED, FLAG_DEADLINE_MISS, FLAG_ERROR, FLAG_MEMO_HIT,
    STAGES, STAGE_COUNT,
};
