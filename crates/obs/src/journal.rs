//! The event journal: a lock-free ring buffer of fixed-size events — the
//! service's flight recorder.
//!
//! Writers claim a monotonically increasing ticket with one `fetch_add`,
//! then publish into the slot `ticket mod capacity` under a per-slot
//! version word (a seqlock): the version is odd while the write is in
//! flight and `2·ticket + 2` once published.  Readers copy a slot and keep
//! the copy only if the version was stable across the copy — a reader
//! never blocks a writer, and a torn read is discarded, not returned.
//! The ring overwrites oldest-first; a journal sized for its workload
//! (see `ServiceConfig::journal_capacity` in `amopt-service`) drops
//! nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload words per event (beyond the kind tag).  Sized for a full trace
/// card: id, kind/flags, and the seven stage stamps.
pub const EVENT_PAYLOAD_WORDS: usize = 9;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A delivered request's trace card (payload packs the card).
    Trace,
    /// A fault-injection firing: payload `[site, consultation index]`.
    Fault,
    /// A brownout shed decision: payload `[class]` (0 price, 1 greeks,
    /// 2 implied-vol).
    Shed,
    /// A retry performed by the in-process retry budget: payload
    /// `[client id, attempt]`.
    Retry,
    /// A worker thread respawned by the watchdog: payload `[worker index]`.
    WorkerRestart,
    /// An explicit latency budget missed: payload `[lateness in nanos]`.
    DeadlineMiss,
}

impl EventKind {
    fn tag(self) -> u64 {
        match self {
            EventKind::Trace => 1,
            EventKind::Fault => 2,
            EventKind::Shed => 3,
            EventKind::Retry => 4,
            EventKind::WorkerRestart => 5,
            EventKind::DeadlineMiss => 6,
        }
    }

    fn from_tag(tag: u64) -> Option<EventKind> {
        Some(match tag {
            1 => EventKind::Trace,
            2 => EventKind::Fault,
            3 => EventKind::Shed,
            4 => EventKind::Retry,
            5 => EventKind::WorkerRestart,
            6 => EventKind::DeadlineMiss,
            _ => return None,
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Trace => "trace",
            EventKind::Fault => "fault",
            EventKind::Shed => "shed",
            EventKind::Retry => "retry",
            EventKind::WorkerRestart => "worker-restart",
            EventKind::DeadlineMiss => "deadline-miss",
        }
    }
}

/// One journal record: a kind tag plus [`EVENT_PAYLOAD_WORDS`] words whose
/// meaning the kind defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What this event records.
    pub kind: EventKind,
    /// Kind-defined payload words.
    pub payload: [u64; EVENT_PAYLOAD_WORDS],
}

impl Event {
    /// An event of `kind` with the leading payload words set from `words`
    /// (the rest zero).
    pub fn new(kind: EventKind, words: &[u64]) -> Event {
        let mut payload = [0u64; EVENT_PAYLOAD_WORDS];
        for (slot, w) in payload.iter_mut().zip(words) {
            *slot = *w;
        }
        Event { kind, payload }
    }
}

struct Slot {
    version: AtomicU64,
    kind: AtomicU64,
    words: [AtomicU64; EVENT_PAYLOAD_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot").field("version", &self.version.load(Ordering::Relaxed)).finish()
    }
}

/// The ring-buffer event journal.  See the module docs for the publication
/// protocol.
#[derive(Debug)]
pub struct Journal {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicU64,
}

impl Journal {
    /// A journal holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 8).
    pub fn new(capacity: usize) -> Arc<Journal> {
        let capacity = capacity.max(8).next_power_of_two();
        Arc::new(Journal {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity - 1,
            head: AtomicU64::new(0),
        })
    }

    /// Ring capacity (events retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (not capped at capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Publishes one event.  Lock-free and allocation-free: one ticket
    /// `fetch_add`, then plain stores into the claimed slot.
    pub fn push(&self, event: &Event) {
        // amopt-lint: hot-path
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let Some(slot) = self.slots.get(ticket as usize & self.mask) else { return };
        slot.version.store(2 * ticket + 1, Ordering::Release);
        slot.kind.store(event.kind.tag(), Ordering::Relaxed);
        for (w, v) in slot.words.iter().zip(event.payload.iter()) {
            w.store(*v, Ordering::Relaxed);
        }
        slot.version.store(2 * ticket + 2, Ordering::Release);
    }

    /// The newest `n` events, oldest first.  Events a concurrent writer is
    /// overwriting mid-copy are skipped rather than returned torn; in a
    /// quiesced journal (no concurrent pushes) nothing is skipped.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let window = (n as u64).min(self.slots.len() as u64).min(head);
        let mut out = Vec::with_capacity(window as usize);
        for ticket in head - window..head {
            let Some(slot) = self.slots.get(ticket as usize & self.mask) else { continue };
            let published = 2 * ticket + 2;
            if slot.version.load(Ordering::Acquire) != published {
                continue; // overwritten (or still in flight) — skip, don't tear
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let payload: [u64; EVENT_PAYLOAD_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            if slot.version.load(Ordering::Acquire) != published {
                continue;
            }
            if let Some(kind) = EventKind::from_tag(kind) {
                out.push(Event { kind, payload });
            }
        }
        out
    }

    /// Every retained event, oldest first (the newest `capacity` pushes).
    pub fn snapshot(&self) -> Vec<Event> {
        self.recent(self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order_with_payloads_intact() {
        let journal = Journal::new(16);
        for i in 0..5u64 {
            journal.push(&Event::new(EventKind::Fault, &[i, 100 + i]));
        }
        let events = journal.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind, EventKind::Fault);
            assert_eq!(e.payload[0], i as u64);
            assert_eq!(e.payload[1], 100 + i as u64);
        }
    }

    #[test]
    fn the_ring_keeps_the_newest_capacity_events() {
        let journal = Journal::new(8);
        assert_eq!(journal.capacity(), 8);
        for i in 0..20u64 {
            journal.push(&Event::new(EventKind::Shed, &[i]));
        }
        let events = journal.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().map(|e| e.payload[0]), Some(12));
        assert_eq!(events.last().map(|e| e.payload[0]), Some(19));
        assert_eq!(journal.pushed(), 20);
        // recent(n) trims from the old end.
        let last3 = journal.recent(3);
        assert_eq!(last3.iter().map(|e| e.payload[0]).collect::<Vec<_>>(), vec![17, 18, 19]);
    }

    #[test]
    fn concurrent_writers_never_tear_a_reader() {
        let journal = Journal::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let journal = &journal;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        journal.push(&Event::new(EventKind::Retry, &[t, i, t ^ i]));
                    }
                });
            }
            let journal = &journal;
            scope.spawn(move || {
                for _ in 0..200 {
                    for e in journal.recent(64) {
                        // The payload invariant holds for every returned
                        // event: a torn copy would break it.
                        assert_eq!(e.payload[2], e.payload[0] ^ e.payload[1]);
                    }
                }
            });
        });
        assert_eq!(journal.pushed(), 2000);
    }
}
