//! Wire-codec fault properties: reader resumption under arbitrary stream
//! splits, and the no-torn-replies guarantee of the blocking client.
//!
//! These pin the transport-robustness half of the fault model without a
//! fault plan: however a byte stream is chopped by short reads — including
//! mid-line and mid-UTF-8-sequence — the parsed request sequence is
//! identical, and a reply line that dies mid-transfer is surfaced as a
//! torn-reply error, never as a truncated line the caller could mistake
//! for a complete response.

use amopt_service::wire::{LineAssembler, LineError, MAX_LINE_BYTES};
use amopt_service::TcpQuoteClient;
use std::io::{Read, Write};
use std::net::TcpListener;

/// Seeded xorshift64*, so failures replay.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Feeds `stream` to a fresh assembler in the given chunk sizes and
/// returns everything it produced, in order.
fn assemble(stream: &[u8], splits: &[usize]) -> Vec<Result<String, LineError>> {
    let mut asm = LineAssembler::new();
    let mut produced = Vec::new();
    let mut rest = stream;
    let mut splits = splits.iter().copied();
    while !rest.is_empty() {
        let take = splits.next().unwrap_or(rest.len()).clamp(1, rest.len());
        let (chunk, tail) = rest.split_at(take);
        asm.push(chunk);
        rest = tail;
        while let Some(item) = asm.next_line() {
            produced.push(item);
        }
    }
    while let Some(item) = asm.next_line() {
        produced.push(item);
    }
    produced
}

/// A request stream with short lines, long lines, empty lines, and
/// multi-byte UTF-8 — every split of it must parse identically.
fn valid_stream() -> Vec<u8> {
    let mut stream = Vec::new();
    stream.extend_from_slice(b"{\"id\":1,\"op\":\"stats\"}\n");
    stream
        .extend_from_slice("{\"id\":2,\"note\":\"smile \u{1F600} \u{00e9}\u{00e9}\"}\n".as_bytes());
    stream.extend_from_slice(b"\n"); // empty line: skipped by the servers, still a line here
    let long = format!("{{\"id\":3,\"pad\":\"{}\"}}\n", "x".repeat(4096));
    stream.extend_from_slice(long.as_bytes());
    stream.extend_from_slice(b"{\"id\":4,\"op\":\"price\",\"spot\":127.62,\"strike\":130}\n");
    stream
}

#[test]
fn every_split_of_a_valid_stream_parses_identically() {
    let stream = valid_stream();
    let whole = assemble(&stream, &[]);
    assert_eq!(whole.len(), 5);
    assert!(whole.iter().all(|r| r.is_ok()), "{whole:?}");

    // Byte-at-a-time: the worst possible peer.
    let trickle: Vec<usize> = vec![1; stream.len()];
    assert_eq!(assemble(&stream, &trickle), whole);

    // 200 seeded random splittings, chunk sizes 1..=17 — these routinely
    // land mid-line and mid-UTF-8-sequence.
    let mut rng = Rng(0x5eed_0001);
    for round in 0..200 {
        let splits: Vec<usize> =
            (0..stream.len()).map(|_| 1 + (rng.next() % 17) as usize).collect();
        assert_eq!(assemble(&stream, &splits), whole, "round {round}: splits {splits:?}");
    }
}

#[test]
fn hostile_streams_reject_identically_across_splits() {
    // (stream, expected tail error) pairs: an over-cap newline-free line
    // with a clean UTF-8 prefix, the same with a multi-byte char straddling
    // the cap, a complete line of raw non-UTF-8, and a valid line followed
    // by garbage — the valid line must still come through first.
    let over_cap_clean = vec![b'x'; MAX_LINE_BYTES + 100];
    let mut over_cap_split_char = vec![b'x'; MAX_LINE_BYTES - 2];
    over_cap_split_char.extend_from_slice("\u{1F600}".as_bytes()); // 4 bytes, straddles the cap
    over_cap_split_char.extend_from_slice(&[b'x'; 64]);
    let raw_garbage = [b'{', 0xFF, 0xFE, 0x80, b'}', b'\n'];
    let mut good_then_garbage = b"{\"id\":7}\n".to_vec();
    good_then_garbage.extend_from_slice(&[0xC3, 0x28, b'\n']); // invalid 2-byte sequence

    type Expected = Vec<Result<String, LineError>>;
    let cases: [(&[u8], Expected); 4] = [
        (&over_cap_clean, vec![Err(LineError::TooLong)]),
        (&over_cap_split_char, vec![Err(LineError::Malformed)]),
        (&raw_garbage, vec![Err(LineError::Malformed)]),
        (&good_then_garbage, vec![Ok(String::from("{\"id\":7}")), Err(LineError::Malformed)]),
    ];
    let mut rng = Rng(0x5eed_0002);
    for (case, (stream, want)) in cases.iter().enumerate() {
        let whole = assemble(stream, &[]);
        assert_eq!(&whole, want, "case {case} (single push)");
        for round in 0..40 {
            let splits: Vec<usize> =
                (0..stream.len()).map(|_| 1 + (rng.next() % 251) as usize).collect();
            assert_eq!(assemble(stream, &splits), whole, "case {case} round {round}");
        }
    }
}

#[test]
fn rejection_is_terminal_even_if_more_complete_lines_follow() {
    let mut stream = vec![0xFFu8, b'\n'];
    stream.extend_from_slice(b"{\"id\":8}\n");
    let got = assemble(&stream, &[1, 1, 3, 3, 2]);
    assert_eq!(got, vec![Err(LineError::Malformed)], "nothing may parse after a rejection");
    let mut asm = LineAssembler::new();
    asm.push(&stream);
    assert_eq!(asm.next_line(), Some(Err(LineError::Malformed)));
    assert!(asm.is_rejected());
    assert_eq!(asm.next_line(), None);
}

#[test]
fn a_reply_torn_mid_line_is_an_error_not_a_truncated_line() {
    // A raw server that sends one complete reply, then half of a second
    // reply, then closes.  The client must deliver the first line whole and
    // surface the second as a torn-reply error — never as a short line.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut sink = [0u8; 256];
        let _ = conn.read(&mut sink); // wait for the request
        conn.write_all(b"{\"id\":1,\"ok\":true,\"price\":8.32}\n").expect("whole reply");
        conn.write_all(b"{\"id\":2,\"ok\":tr").expect("torn reply"); // no newline, then close
    });
    let mut client = TcpQuoteClient::connect(addr).expect("connect");
    client.send("{\"id\":1,\"op\":\"price\"}").expect("send");
    let first = client.recv().expect("complete line delivered whole");
    assert_eq!(first, "{\"id\":1,\"ok\":true,\"price\":8.32}");
    let torn = client.recv().expect_err("mid-line close must not yield a line");
    assert_eq!(torn.kind(), std::io::ErrorKind::InvalidData, "{torn:?}");
    assert!(torn.to_string().contains("torn reply"), "{torn:?}");
    server.join().expect("server thread");
}
