//! Front-end integration tests: the epoll reactor must be byte-identical
//! on the wire to the threaded baseline, survive hostile client pacing
//! (slow-loris, partial lines, half-close), and hold four-digit connection
//! counts that would cost the threaded front end thousands of OS threads.

use amopt_core::batch::{ModelKind, PricingRequest};
use amopt_core::{OptionParams, OptionType};
use amopt_service::wire::{self, parse, JsonValue};
use amopt_service::{FrontEnd, QuoteServer, ServiceConfig, TcpQuoteClient};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn config(front_end: FrontEnd) -> ServiceConfig {
    ServiceConfig {
        max_batch: 16,
        max_wait: Duration::from_millis(1),
        front_end,
        ..ServiceConfig::default()
    }
}

fn contract(strike: f64, ty: OptionType, steps: usize) -> PricingRequest {
    PricingRequest::american(
        ModelKind::Bopm,
        ty,
        OptionParams { strike, ..OptionParams::paper_defaults() },
        steps,
    )
}

/// A request script covering every inline-answerable wire shape: prices on
/// both option types, an in-script duplicate (memo path), a deadline-tagged
/// quote, greeks, and a parse error answered without closing.
fn script() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..6u64 {
        let ty = if i % 2 == 0 { OptionType::Call } else { OptionType::Put };
        lines.push(wire::encode_pricing_request(i, "price", &contract(100.0 + i as f64, ty, 64)));
    }
    lines.push(wire::encode_pricing_request(6, "price", &contract(100.0, OptionType::Call, 64)));
    lines.push(wire::encode_pricing_request_with_deadline(
        7,
        "price",
        &contract(103.0, OptionType::Put, 64),
        2.5,
    ));
    lines.push(wire::encode_pricing_request(8, "greeks", &contract(104.0, OptionType::Call, 64)));
    lines.push("{\"id\":9,\"op\":\"price\"}".to_string());
    lines
}

fn replies(server: &QuoteServer, lines: &[String]) -> Vec<String> {
    let mut client = TcpQuoteClient::connect(server.local_addr()).expect("connect");
    for line in lines {
        client.send(line).expect("send");
    }
    lines.iter().map(|_| client.recv().expect("recv")).collect()
}

#[test]
fn reactor_and_threaded_reply_bitwise_identically() {
    let script = script();
    let reactor = QuoteServer::bind("127.0.0.1:0", config(FrontEnd::Reactor)).expect("bind");
    let threaded = QuoteServer::bind("127.0.0.1:0", config(FrontEnd::Threaded)).expect("bind");
    let from_reactor = replies(&reactor, &script);
    let from_threaded = replies(&threaded, &script);
    for (i, (r, t)) in from_reactor.iter().zip(&from_threaded).enumerate() {
        assert_eq!(r, t, "reply {i} diverges between front ends");
    }
    reactor.shutdown();
    threaded.shutdown();
}

#[test]
fn slow_loris_partial_lines_resume() {
    let server = QuoteServer::bind("127.0.0.1:0", config(FrontEnd::Reactor)).expect("bind");
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_nodelay(true).ok();

    // First request dribbled in three fragments with pauses: the reactor
    // must park the partial line and resume when the rest arrives.
    let first = wire::encode_pricing_request(1, "price", &contract(110.0, OptionType::Call, 32));
    let (a, rest) = first.as_bytes().split_at(7);
    let (b, c) = rest.split_at(rest.len() / 2);
    for chunk in [a, b, c] {
        raw.write_all(chunk).expect("write");
        raw.flush().ok();
        std::thread::sleep(Duration::from_millis(20));
    }
    // One write can also end mid-way through the *next* line.
    let second = wire::encode_pricing_request(2, "price", &contract(111.0, OptionType::Put, 32));
    let (tail, carried) = second.as_bytes().split_at(4);
    raw.write_all(b"\n").expect("write");
    raw.write_all(tail).expect("write");
    raw.flush().ok();
    std::thread::sleep(Duration::from_millis(20));
    raw.write_all(carried).expect("write");
    // And a third sent byte by byte.
    let third = wire::encode_pricing_request(3, "price", &contract(112.0, OptionType::Call, 32));
    raw.write_all(b"\n").expect("write");
    for byte in third.as_bytes() {
        raw.write_all(std::slice::from_ref(byte)).expect("write");
        raw.flush().ok();
    }
    raw.write_all(b"\n").expect("write");
    raw.flush().ok();

    let mut reader = BufReader::new(&raw);
    for want_id in 1..=3i64 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        let doc = parse(line.trim()).expect("reply parses");
        assert_eq!(doc.get("id").and_then(JsonValue::as_f64), Some(want_id as f64), "{line}");
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
    }
    server.shutdown();
}

#[test]
fn half_close_still_flushes_pending_replies() {
    let server = QuoteServer::bind("127.0.0.1:0", config(FrontEnd::Reactor)).expect("bind");
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let n = 5u64;
    for i in 0..n {
        let line = wire::encode_pricing_request(
            i,
            "price",
            &contract(95.0 + i as f64, OptionType::Put, 64),
        );
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write");
    }
    raw.flush().ok();
    // Half-close immediately: the peer is done sending, but every reply
    // already owed must still arrive before the server closes its side.
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(&raw);
    let mut got = 0u64;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read reply") == 0 {
            break; // server finished its side cleanly
        }
        let doc = parse(line.trim()).expect("reply parses");
        assert_eq!(doc.get("id").and_then(JsonValue::as_f64), Some(got as f64), "{line}");
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
        got += 1;
    }
    assert_eq!(got, n, "half-closed connection lost replies");
    server.shutdown();
}

#[test]
fn pipelining_past_the_inflight_cap_backpressures_and_answers_everything() {
    // One burst delivers far more requests than `per_conn_inflight`: the
    // reactor parses up to the cap and leaves the rest buffered in user
    // space, where no further EPOLLIN will ever announce them — answering
    // the tail requires re-parsing as replies drain.  The threaded front
    // end would reject these with `overloaded` errors; the reactor must
    // instead answer every line, in order.
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig { per_conn_inflight: 4, ..config(FrontEnd::Reactor) },
    )
    .expect("bind");
    let n = 32u64;
    let mut burst = String::new();
    for i in 0..n {
        burst.push_str(&wire::encode_pricing_request(
            i,
            "price",
            &contract(90.0 + i as f64, OptionType::Call, 32),
        ));
        burst.push('\n');
    }
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_nodelay(true).ok();
    raw.set_read_timeout(Some(Duration::from_secs(30))).ok();
    raw.write_all(burst.as_bytes()).expect("burst write");
    raw.flush().ok();
    let mut reader = BufReader::new(&raw);
    for i in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap_or_else(|e| panic!("reply {i} never arrived: {e}"));
        let doc = parse(line.trim()).expect("reply parses");
        assert_eq!(doc.get("id").and_then(JsonValue::as_f64), Some(i as f64), "{line}");
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
    }

    // Same burst with an immediate half-close: everything received before
    // the EOF must still be answered before the server closes its side —
    // the flushed-and-eof path must not drop requests still in the buffer.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_nodelay(true).ok();
    raw.set_read_timeout(Some(Duration::from_secs(30))).ok();
    raw.write_all(burst.as_bytes()).expect("burst write");
    raw.flush().ok();
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(&raw);
    let mut got = 0u64;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read reply") == 0 {
            break;
        }
        let doc = parse(line.trim()).expect("reply parses");
        assert_eq!(doc.get("id").and_then(JsonValue::as_f64), Some(got as f64), "{line}");
        got += 1;
    }
    assert_eq!(got, n, "half-closed over-cap burst lost replies");
    server.shutdown();
}

#[test]
fn reactor_holds_a_thousand_mostly_idle_connections() {
    let server = QuoteServer::bind("127.0.0.1:0", config(FrontEnd::Reactor)).expect("bind");
    let mut idle = Vec::with_capacity(1024);
    for i in 0..1024 {
        idle.push(
            TcpStream::connect(server.local_addr()).unwrap_or_else(|e| panic!("conn {i}: {e}")),
        );
    }
    // With a thousand sockets parked, fresh connections still get served…
    let mut active = TcpQuoteClient::connect(server.local_addr()).expect("late connect");
    let reply = active
        .roundtrip(&wire::encode_pricing_request(
            1,
            "price",
            &contract(120.0, OptionType::Call, 64),
        ))
        .expect("roundtrip");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    // …and so do the parked ones, first and last alike.
    for probe in [0usize, 511, 1023] {
        let stream = &mut idle[probe];
        stream
            .write_all(
                format!(
                    "{}\n",
                    wire::encode_pricing_request(2, "price", &contract(121.0, OptionType::Put, 64))
                )
                .as_bytes(),
            )
            .expect("write on parked conn");
        let mut line = String::new();
        BufReader::new(stream.try_clone().expect("clone")).read_line(&mut line).expect("read");
        assert!(line.contains("\"ok\":true"), "conn {probe}: {line}");
    }
    let stats = server.stats();
    assert!(stats.reactor.connections_accepted >= 1025, "{stats:?}");
    assert!(stats.reactor.connections_open >= 1025, "{stats:?}");
    server.shutdown();
}

#[test]
fn connection_cap_refuses_politely_and_frees_slots() {
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig { max_connections: 4, ..config(FrontEnd::Reactor) },
    )
    .expect("bind");
    let held: Vec<TcpStream> =
        (0..4).map(|_| TcpStream::connect(server.local_addr()).expect("connect")).collect();
    // The fifth connection is accepted then immediately closed: reads EOF.
    let over = TcpStream::connect(server.local_addr()).expect("connect");
    over.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let mut buf = [0u8; 1];
    let n = (&over).read(&mut buf).expect("read on refused conn");
    assert_eq!(n, 0, "over-cap connection must see EOF");
    // Dropping the held connections frees slots for a working client.  The
    // reactor dispatches close events before accept decisions within each
    // wakeup, and the FINs land before this reconnect's SYN, so one attempt
    // must succeed — no retry loop.
    drop(held);
    let mut client = TcpQuoteClient::connect(server.local_addr()).expect("reconnect after free");
    let reply = client
        .roundtrip(&wire::encode_pricing_request(1, "price", &contract(99.0, OptionType::Call, 32)))
        .expect("slots freed before re-accept");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(server.stats().reactor.connections_refused >= 1);
    server.shutdown();
}
