//! Flightdeck wiring: the service's single observability surface.
//!
//! [`ServiceObs`] owns the metrics [`Registry`], the ring-buffer event
//! [`Journal`], and every instrument handle the queue, reactor, executor,
//! and fault plan record into.  It is created once per [`QuoteService`]
//! and shared by `Arc`; the legacy `ServiceStats`/`ReactorStats` structs
//! are now *views* assembled from these instruments at snapshot time, so
//! there is exactly one stats surface.
//!
//! Recording stays strictly no-alloc: every handle is a pre-registered
//! atomic cell, trace stamps are lock-free CAS stores, and journal pushes
//! are seqlock stores into a pre-sized ring.  The only locks on this path
//! are never taken — registration happens in [`ServiceObs::new`].
//!
//! [`QuoteService`]: crate::QuoteService

use crate::fault::{FaultSite, FAULT_SITES, SITE_COUNT};
use crate::types::{BatchHistogram, ReactorStats, ServiceRequest, BATCH_HIST_BUCKETS};
use amopt_obs::{
    Counter, Event, EventKind, Gauge, HistSnapshot, Histogram, Journal, Registry, RequestTrace,
    Stage, TraceCard, FLAG_ABANDONED, FLAG_ERROR, STAGES, STAGE_COUNT,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Request-kind discriminants packed into trace cards and journal events.
pub(crate) const KIND_PRICE: u64 = 0;
/// See [`KIND_PRICE`].
pub(crate) const KIND_GREEKS: u64 = 1;
/// See [`KIND_PRICE`].
pub(crate) const KIND_IMPLIED_VOL: u64 = 2;

/// The service's observability spine: registry + journal + every handle.
#[derive(Debug)]
pub(crate) struct ServiceObs {
    registry: Registry,
    journal: Arc<Journal>,
    trace_enabled: bool,
    next_trace_id: AtomicU64,

    // Queue / scheduler.
    pub(crate) queue_depth: Gauge,
    pub(crate) submitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) rejected_queue_full: Counter,
    pub(crate) rejected_inflight: Counter,
    pub(crate) rejected_shutdown: Counter,
    pub(crate) batches: Counter,
    pub(crate) deadline_misses: Counter,
    pub(crate) heap_pops: Counter,
    pub(crate) batch_size: Histogram,

    // Worker pool.
    pub(crate) workers_alive: Gauge,
    pub(crate) worker_restarts: Counter,

    // Retry budget.
    pub(crate) retries: Counter,
    pub(crate) retry_budget_exhausted: Counter,
    pub(crate) retry_tokens: Gauge,

    // Brownout sheds, per request class.
    pub(crate) shed_price: Counter,
    pub(crate) shed_greeks: Counter,
    pub(crate) shed_implied_vol: Counter,

    // Reactor front end.
    pub(crate) reactor_accepted: Counter,
    pub(crate) reactor_open: Gauge,
    pub(crate) reactor_refused: Counter,
    pub(crate) reactor_loop_iterations: Counter,
    pub(crate) reactor_events_per_wake: Histogram,

    // Memo (set from `BatchPricer::memo_stats` at scrape time).
    memo_hits: Gauge,
    memo_misses: Gauge,
    memo_evictions: Gauge,
    memo_entries: Gauge,

    // Fault injection, per site.
    fault_counters: [Counter; SITE_COUNT],

    // Tracing.
    trace_cards: Counter,
    trace_memo_hits: Counter,
    stage_nanos: [Histogram; STAGE_COUNT],
    end_to_end_nanos: Histogram,

    // Journal health.
    journal_events: Gauge,
    journal_capacity: Gauge,
}

fn stage_histogram(registry: &Registry, stage: Stage) -> Histogram {
    let (name, help) = match stage {
        Stage::Parsed => {
            ("amopt_stage_parse_nanos", "Wire-line decode interval (accept to parsed), nanoseconds")
        }
        Stage::Enqueued => (
            "amopt_stage_admit_nanos",
            "Admission interval (caps, brownout, heap push), nanoseconds",
        ),
        Stage::Dequeued => (
            "amopt_stage_queue_wait_nanos",
            "EDF queue plus coalesce wait until a worker pops the request, nanoseconds",
        ),
        Stage::ExecStart => (
            "amopt_stage_batch_form_nanos",
            "Batch grouping interval before the drivers run, nanoseconds",
        ),
        Stage::MemoProbed => (
            "amopt_stage_memo_probe_nanos",
            "Memo probe interval for traced price requests, nanoseconds",
        ),
        Stage::Completed => (
            "amopt_stage_execute_nanos",
            "Batch execution until the completion slot fills, nanoseconds",
        ),
        Stage::Delivered => (
            "amopt_stage_reply_write_nanos",
            "Delivery interval (socket buffer write or in-process wait handoff), nanoseconds",
        ),
    };
    registry.histogram(name, help)
}

fn fault_counter(registry: &Registry, site: FaultSite) -> Counter {
    let name = match site {
        FaultSite::ShortRead => "amopt_fault_short_read_fired_total",
        FaultSite::ShortWrite => "amopt_fault_short_write_fired_total",
        FaultSite::EagainStorm => "amopt_fault_eagain_storm_fired_total",
        FaultSite::SpuriousWakeup => "amopt_fault_spurious_wakeup_fired_total",
        FaultSite::ConnReset => "amopt_fault_conn_reset_fired_total",
        FaultSite::ClockSkew => "amopt_fault_clock_skew_fired_total",
        FaultSite::WorkerPanic => "amopt_fault_worker_panic_fired_total",
        FaultSite::WorkerStall => "amopt_fault_worker_stall_fired_total",
        FaultSite::WorkerDeath => "amopt_fault_worker_death_fired_total",
        FaultSite::LostReply => "amopt_fault_lost_reply_fired_total",
    };
    registry.counter(name, "Injected faults fired at this site since start")
}

impl ServiceObs {
    /// Builds the registry, journal, and every instrument handle.  All
    /// registration happens here — the record paths never take the
    /// registry lock.
    pub(crate) fn new(trace_enabled: bool, journal_capacity: usize) -> Arc<ServiceObs> {
        let registry = Registry::new();
        let r = &registry;
        let obs = ServiceObs {
            journal: Journal::new(journal_capacity),
            trace_enabled,
            next_trace_id: AtomicU64::new(1),

            queue_depth: r.gauge("amopt_queue_depth", "Requests waiting in the EDF heap"),
            submitted: r.counter("amopt_queue_submitted_total", "Requests accepted into the queue"),
            completed: r.counter(
                "amopt_queue_completed_total",
                "Requests answered (successfully or with a pricing error)",
            ),
            rejected_queue_full: r.counter(
                "amopt_queue_rejected_queue_full_total",
                "Submissions rejected because the queue was full",
            ),
            rejected_inflight: r.counter(
                "amopt_queue_rejected_inflight_total",
                "Submissions rejected by a per-connection in-flight cap",
            ),
            rejected_shutdown: r.counter(
                "amopt_queue_rejected_shutdown_total",
                "Submissions rejected during shutdown",
            ),
            batches: r.counter("amopt_queue_batches_total", "Batches flushed to the executor"),
            deadline_misses: r.counter(
                "amopt_queue_deadline_misses_total",
                "Budgeted requests answered after their caller-supplied deadline",
            ),
            heap_pops: r.counter("amopt_queue_heap_pops_total", "EDF heap pops across all flushes"),
            batch_size: r
                .histogram("amopt_queue_batch_size", "Flushed batch sizes (requests per batch)"),

            workers_alive: r.gauge("amopt_workers_alive", "Worker threads currently alive"),
            worker_restarts: r.counter(
                "amopt_worker_restarts_total",
                "Worker threads respawned by the watchdog after a panic",
            ),

            retries: r.counter("amopt_retries_total", "Retries performed by call_with_retry"),
            retry_budget_exhausted: r.counter(
                "amopt_retry_budget_exhausted_total",
                "Retries refused because the retry budget was exhausted",
            ),
            retry_tokens: r.gauge("amopt_retry_tokens", "Retry-budget tokens currently available"),

            shed_price: r
                .counter("amopt_shed_price_total", "Price requests shed by brownout tiers"),
            shed_greeks: r
                .counter("amopt_shed_greeks_total", "Greeks requests shed by brownout tiers"),
            shed_implied_vol: r.counter(
                "amopt_shed_implied_vol_total",
                "Implied-vol requests shed by brownout tiers",
            ),

            reactor_accepted: r.counter(
                "amopt_reactor_connections_accepted_total",
                "Connections the reactor has accepted",
            ),
            reactor_open: r.gauge(
                "amopt_reactor_connections_open",
                "Connections currently registered with the event loop",
            ),
            reactor_refused: r.counter(
                "amopt_reactor_connections_refused_total",
                "Accepts refused because the connection cap was reached",
            ),
            reactor_loop_iterations: r.counter(
                "amopt_reactor_loop_iterations_total",
                "Event-loop iterations (one per epoll_wait return)",
            ),
            reactor_events_per_wake: r.histogram(
                "amopt_reactor_events_per_wake",
                "Ready events delivered per epoll_wait return",
            ),

            memo_hits: r.gauge("amopt_memo_hits", "Memo probes answered from the cache"),
            memo_misses: r.gauge("amopt_memo_misses", "Memo probes that required fresh pricing"),
            memo_evictions: r.gauge("amopt_memo_evictions", "Memo entries dropped to make room"),
            memo_entries: r.gauge("amopt_memo_entries", "Memo entries currently resident"),

            fault_counters: FAULT_SITES.map(|site| fault_counter(r, site)),

            trace_cards: r
                .counter("amopt_trace_cards_total", "Request trace cards completed and journaled"),
            trace_memo_hits: r.counter(
                "amopt_trace_memo_hits_total",
                "Traced price requests whose memo probe hit",
            ),
            stage_nanos: STAGES.map(|stage| stage_histogram(r, stage)),
            end_to_end_nanos: r.histogram(
                "amopt_request_end_to_end_nanos",
                "Traced request end-to-end latency (accept to delivery), nanoseconds",
            ),

            journal_events: r.gauge("amopt_journal_events", "Events ever pushed to the journal"),
            journal_capacity: r
                .gauge("amopt_journal_capacity", "Event-journal ring capacity (events retained)"),
            registry,
        };
        Arc::new(obs)
    }

    /// The event journal (shared with the fault plan's hook).
    pub(crate) fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Starts a trace card, or `None` when tracing is disabled.
    pub(crate) fn trace_start(&self) -> Option<Arc<RequestTrace>> {
        // amopt-lint: hot-path
        if self.trace_enabled {
            Some(RequestTrace::start())
        } else {
            None
        }
    }

    /// The next in-process trace id (wire requests use their wire id).
    pub(crate) fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The card kind discriminant of `request`.
    pub(crate) fn kind_of(request: &ServiceRequest) -> u64 {
        match request {
            ServiceRequest::Price(_) => KIND_PRICE,
            ServiceRequest::Greeks(_) => KIND_GREEKS,
            ServiceRequest::ImpliedVol(_) => KIND_IMPLIED_VOL,
        }
    }

    /// Delivery funnel: stamps [`Stage::Delivered`], and — for exactly one
    /// caller per card — records the per-stage histograms, the end-to-end
    /// histogram, and journals the completed card.
    pub(crate) fn deliver(&self, trace: &RequestTrace, is_err: bool) {
        // amopt-lint: hot-path
        if !trace.finish() {
            return;
        }
        if is_err {
            trace.set_flag(FLAG_ERROR);
        }
        self.record_card(trace);
    }

    /// Abandonment funnel: journals the card of a ticket dropped without
    /// its result ever being taken (the requester's connection died before
    /// the reply was pumped), flagged [`FLAG_ABANDONED`].  A no-op when the
    /// card was already delivered, so every accepted request leaves exactly
    /// one card no matter which funnel wins.
    pub(crate) fn abandon(&self, trace: &RequestTrace) {
        if !trace.finish() {
            return;
        }
        trace.set_flag(FLAG_ERROR | FLAG_ABANDONED);
        self.record_card(trace);
    }

    /// Records a finished card into the histograms and the journal.  Called
    /// exactly once per card, by whichever funnel won the `finish()` race.
    fn record_card(&self, trace: &RequestTrace) {
        // amopt-lint: hot-path
        let card = trace.card();
        for (hist, nanos) in self.stage_nanos.iter().zip(card.stage_nanos()) {
            if let Some(nanos) = nanos {
                hist.record(nanos);
            }
        }
        self.end_to_end_nanos.record(card.end_to_end_nanos());
        if card.flags & amopt_obs::FLAG_MEMO_HIT != 0 {
            self.trace_memo_hits.inc();
        }
        self.trace_cards.inc();
        self.journal.push(&card.to_event());
    }

    /// Fault-plan hook: counts the firing and journals
    /// `[site, consultation index]`.  Called from the plan's single
    /// decision funnel, so every firing lands here exactly once.
    pub(crate) fn fault_fired(&self, site: FaultSite, index: u64) {
        // amopt-lint: hot-path
        if let Some(counter) = self.fault_counters.get(site as usize) {
            counter.inc();
        }
        self.journal.push(&Event::new(EventKind::Fault, &[site as u64, index]));
    }

    /// Journals a brownout shed decision (`class` is a `KIND_*`
    /// discriminant); the per-class counter is bumped by the caller.
    pub(crate) fn shed_fired(&self, class: u64) {
        // amopt-lint: hot-path
        self.journal.push(&Event::new(EventKind::Shed, &[class]));
    }

    /// Journals one performed retry.
    pub(crate) fn retry_fired(&self, client_id: u64, attempt: u64) {
        self.retries.inc();
        self.journal.push(&Event::new(EventKind::Retry, &[client_id, attempt]));
    }

    /// Journals a watchdog worker respawn.
    pub(crate) fn worker_restarted(&self, worker_index: u64) {
        self.worker_restarts.inc();
        self.journal.push(&Event::new(EventKind::WorkerRestart, &[worker_index]));
    }

    /// Journals an explicit-budget deadline miss (the counter is bumped by
    /// the executor alongside the per-request flag).
    pub(crate) fn deadline_missed(&self, lateness_nanos: u64) {
        // amopt-lint: hot-path
        self.deadline_misses.inc();
        self.journal.push(&Event::new(EventKind::DeadlineMiss, &[lateness_nanos]));
    }

    /// Refreshes the scrape-time gauges and renders the full exposition
    /// (registry + kernel phase timers).
    pub(crate) fn render(&self, memo: &amopt_core::batch::MemoStats) -> String {
        self.memo_hits.set(memo.hits);
        self.memo_misses.set(memo.misses);
        self.memo_evictions.set(memo.evictions);
        self.memo_entries.set(memo.entries as u64);
        self.journal_events.set(self.journal.pushed());
        self.journal_capacity.set(self.journal.capacity() as u64);
        let mut text = self.registry.render();
        amopt_obs::kernel::render_into(&mut text);
        text
    }

    /// Number of registered instruments (acceptance: ≥ 25).
    pub(crate) fn instrument_count(&self) -> usize {
        self.registry.len()
    }

    /// The legacy [`ReactorStats`] view, assembled from the reactor's
    /// registry instruments (zero until a reactor front end runs).
    pub(crate) fn reactor_stats(&self) -> ReactorStats {
        ReactorStats {
            connections_accepted: self.reactor_accepted.get(),
            connections_open: self.reactor_open.get(),
            connections_refused: self.reactor_refused.get(),
            loop_iterations: self.reactor_loop_iterations.get(),
            events_per_wake: legacy_batch_hist(&self.reactor_events_per_wake.snapshot()),
        }
    }

    /// The most recent `n` completed trace cards, oldest first.
    pub(crate) fn recent_traces(&self, n: usize) -> Vec<TraceCard> {
        let mut cards: Vec<TraceCard> =
            self.journal.snapshot().iter().filter_map(TraceCard::from_event).collect();
        let keep = cards.len().saturating_sub(n);
        cards.drain(..keep);
        cards
    }
}

/// Rebuilds the legacy power-of-two [`BatchHistogram`] from a log2
/// [`HistSnapshot`]: obs bucket `b ≥ 1` holds values `[2^(b-1), 2^b)`,
/// which is exactly legacy bucket `b − 1`; zeros land in legacy bucket 0
/// and the overflow tail saturates into the last legacy bucket.  Keeps the
/// wire `stats` op byte-compatible with the pre-registry counters.
pub(crate) fn legacy_batch_hist(snap: &HistSnapshot) -> BatchHistogram {
    let mut legacy = BatchHistogram::default();
    for (b, &count) in snap.buckets.iter().enumerate() {
        let slot = b.saturating_sub(1).min(BATCH_HIST_BUCKETS - 1);
        if let Some(cell) = legacy.0.get_mut(slot) {
            *cell += count;
        }
    }
    legacy
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_obs::bucket_index;

    #[test]
    fn the_registry_meets_the_instrument_floor() {
        let obs = ServiceObs::new(true, 64);
        assert!(
            obs.instrument_count() >= 25,
            "only {} instruments registered",
            obs.instrument_count()
        );
        // Every subsystem the acceptance criteria name is represented.
        let text = obs.render(&amopt_core::batch::MemoStats::default());
        for needle in [
            "amopt_queue_submitted_total",
            "amopt_reactor_loop_iterations_total",
            "amopt_queue_batch_size_bucket",
            "amopt_memo_hits",
            "amopt_fault_worker_panic_fired_total",
            "amopt_retries_total",
            "amopt_shed_price_total",
            "amopt_stage_queue_wait_nanos_count",
            "amopt_kernel_fft_pass_calls_total",
        ] {
            assert!(text.contains(needle), "{needle} missing from exposition:\n{text}");
        }
    }

    #[test]
    fn delivery_is_exactly_once_and_fills_the_journal() {
        let obs = ServiceObs::new(true, 64);
        let trace = obs.trace_start().expect("tracing enabled");
        trace.set_id(9);
        trace.stamp(Stage::Parsed);
        trace.stamp(Stage::Completed);
        obs.deliver(&trace, false);
        obs.deliver(&trace, false); // second delivery must be a no-op
        assert_eq!(obs.trace_cards.get(), 1);
        let cards = obs.recent_traces(8);
        assert_eq!(cards.len(), 1);
        assert_eq!(cards.first().map(|c| c.id), Some(9));
        assert!(cards.first().is_some_and(|c| c.is_monotone()));
    }

    #[test]
    fn abandonment_journals_one_flagged_card_and_never_doubles_a_delivery() {
        let obs = ServiceObs::new(true, 64);
        // An abandoned trace journals exactly one card, flagged.
        let trace = obs.trace_start().expect("tracing enabled");
        trace.set_id(1);
        trace.stamp(Stage::Parsed);
        obs.abandon(&trace);
        obs.abandon(&trace);
        assert_eq!(obs.trace_cards.get(), 1);
        let card = obs.recent_traces(8).pop().expect("one card");
        assert_eq!(card.id, 1);
        assert!(card.flags & FLAG_ABANDONED != 0, "abandoned flag missing: {card:?}");
        assert!(card.flags & FLAG_ERROR != 0, "abandoned cards count as errors: {card:?}");
        // A delivered trace is never re-journaled (or re-flagged) by the
        // abandonment funnel racing behind it.
        let trace = obs.trace_start().expect("tracing enabled");
        trace.set_id(2);
        obs.deliver(&trace, false);
        obs.abandon(&trace);
        assert_eq!(obs.trace_cards.get(), 2);
        let card = obs.recent_traces(8).pop().expect("latest card");
        assert_eq!(card.id, 2);
        assert_eq!(card.flags & (FLAG_ABANDONED | FLAG_ERROR), 0, "{card:?}");
    }

    #[test]
    fn tracing_disabled_yields_no_cards() {
        let obs = ServiceObs::new(false, 64);
        assert!(obs.trace_start().is_none());
    }

    #[test]
    fn legacy_histogram_reconstruction_matches_bucket_of() {
        let hist = Histogram::detached();
        for size in [1u64, 1, 2, 3, 255, 256, 300, 1 << 20] {
            hist.record(size);
        }
        let legacy = legacy_batch_hist(&hist.snapshot());
        let mut want = BatchHistogram::default();
        for size in [1usize, 1, 2, 3, 255, 256, 300, 1 << 20] {
            want.0[BatchHistogram::bucket_of(size)] += 1;
        }
        assert_eq!(legacy, want);
        // The obs bucket of a size and the legacy bucket agree by the
        // shift-by-one law for every in-range power of two boundary.
        for size in 1..4096u64 {
            assert_eq!(
                bucket_index(size) - 1,
                BatchHistogram::bucket_of(size as usize),
                "size {size}"
            );
        }
    }

    #[test]
    fn fault_hook_counts_and_journals() {
        let obs = ServiceObs::new(true, 64);
        obs.fault_fired(FaultSite::WorkerPanic, 3);
        obs.fault_fired(FaultSite::ShortRead, 0);
        let events = obs.journal().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events.first().map(|e| e.kind), Some(EventKind::Fault));
        assert_eq!(
            events.first().map(|e| (e.payload[0], e.payload[1])),
            Some((FaultSite::WorkerPanic as u64, 3))
        );
    }
}
