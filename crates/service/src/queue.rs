//! The coalescing core: bounded submission queue, deadline/size batcher,
//! worker pool, and the in-process client handle.
//!
//! ## Queue lifecycle
//!
//! 1. **Submit.**  A [`Client`] wraps the request and a fresh completion
//!    slot into a queue entry.  Submission fails fast — with
//!    [`ServiceError::Overloaded`] — when the bounded queue is full or the
//!    client is at its in-flight cap; nothing is ever silently dropped or
//!    unboundedly buffered.
//! 2. **Coalesce.**  An idle worker adopts the queue head and waits until
//!    the queue holds [`max_batch`](crate::ServiceConfig::max_batch)
//!    requests *or* the head has aged
//!    [`max_wait`](crate::ServiceConfig::max_wait), whichever first, then
//!    drains up to `max_batch` entries in arrival order.
//! 3. **Execute.**  The drained batch is grouped by request kind and each
//!    group runs through its batch-native driver over the *shared*
//!    [`BatchPricer`] — one `price_batch` for prices, one fanned greeks
//!    ladder, one lockstep surface inversion — so co-batched requests share
//!    in-batch dedup and every request shares the cross-batch memo.
//! 4. **Complete.**  Each entry's slot receives its own `Result`; waiting
//!    clients wake.  Batch size, queue depth, and rejection counters feed
//!    [`ServiceStats`](crate::ServiceStats).
//!
//! Shutdown flips a flag (new submits fail with
//! [`ServiceError::ShuttingDown`]), wakes every worker, and joins them;
//! workers drain the remaining queue — answering every accepted request —
//! before exiting.

use crate::config::ServiceConfig;
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use crate::types::{BatchHistogram, ServiceError, ServiceRequest, ServiceResponse, ServiceStats};
use crate::ServiceResult;
use amopt_core::batch::surface::{implied_vol_surface, VolQuote};
use amopt_core::batch::{greeks as batch_greeks, BatchPricer, PricingRequest};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Completion slot of one submitted request.
#[derive(Debug)]
struct Slot {
    done: Mutex<Option<ServiceResult>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot { done: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, result: ServiceResult) {
        let mut done = lock_unpoisoned(&self.done);
        *done = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> ServiceResult {
        let mut done = lock_unpoisoned(&self.done);
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = wait_unpoisoned(&self.ready, done);
        }
    }
}

/// Releases one unit of a client's in-flight budget when the request
/// completes (dropped by the worker *before* filling the slot, or by the
/// submit path on rejection).
#[derive(Debug)]
struct InflightPermit(Arc<AtomicUsize>);

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Debug)]
struct Pending {
    request: ServiceRequest,
    slot: Arc<Slot>,
    enqueued: Instant,
    _permit: InflightPermit,
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_inflight: AtomicU64,
    rejected_shutdown: AtomicU64,
    batches: AtomicU64,
    batch_hist: [AtomicU64; crate::types::BATCH_HIST_BUCKETS],
}

#[derive(Debug)]
struct Shared {
    cfg: ServiceConfig,
    pricer: BatchPricer,
    state: Mutex<QueueState>,
    /// Signalled on every enqueue and on shutdown.
    work: Condvar,
    counters: Counters,
}

/// The batch-coalescing quote service.  Start one with
/// [`QuoteService::start`], hand out [`Client`]s, and shut it down with
/// [`QuoteService::shutdown`] (also invoked on drop).
#[derive(Debug)]
pub struct QuoteService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl QuoteService {
    /// Starts the worker pool and returns the running service.
    ///
    /// Fails with the spawn error if the OS refuses a worker thread; any
    /// workers already started are shut down and joined before returning.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let cfg = cfg.normalised();
        let pricer = BatchPricer::with_memo_config(cfg.engine, cfg.memo_capacity, cfg.memo_shards);
        let shared = Arc::new(Shared {
            cfg,
            pricer,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            counters: Counters::default(),
        });
        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("amopt-service-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    lock_unpoisoned(&shared.state).shutdown = true;
                    shared.work.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(QuoteService { shared, workers: Mutex::new(workers) })
    }

    /// A new client handle with its own in-flight budget
    /// ([`ServiceConfig::per_conn_inflight`]).  Handles are cheap; give
    /// each connection or logical caller its own.
    pub fn client(&self) -> Client {
        Client { shared: Arc::clone(&self.shared), inflight: Arc::new(AtomicUsize::new(0)) }
    }

    /// The configuration the service was started with (normalised).
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Point-in-time counters: queue depth, batch-size histogram, memo hit
    /// rate, rejection counts.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let queue_depth = self.shared.state.lock().map(|s| s.queue.len()).unwrap_or_default();
        let mut hist = BatchHistogram::default();
        for (slot, counter) in hist.0.iter_mut().zip(&c.batch_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ServiceStats {
            queue_depth,
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_inflight: c.rejected_inflight.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batch_sizes: hist,
            memo: self.shared.pricer.memo_stats(),
        }
    }

    /// Stops accepting new requests, drains and answers everything already
    /// accepted, and joins the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // Take the handles under the lock, join outside it: joining with
        // `workers` held would block every concurrent `shutdown` caller on
        // this mutex for the full drain instead of on the join itself.
        let drained: Vec<_> = std::mem::take(&mut *lock_unpoisoned(&self.workers));
        for handle in drained {
            let _ = handle.join();
        }
    }
}

impl Drop for QuoteService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-process handle for submitting quotes to a [`QuoteService`].
///
/// Cloning shares the in-flight budget; use
/// [`QuoteService::client`] for an independent one.
#[derive(Debug, Clone)]
pub struct Client {
    shared: Arc<Shared>,
    inflight: Arc<AtomicUsize>,
}

impl Client {
    /// Submits a request without waiting; the returned [`Ticket`] resolves
    /// when the coalesced batch containing the request executes.
    ///
    /// Fails fast with [`ServiceError::Overloaded`] when this client is at
    /// its in-flight cap or the submission queue is full, and with
    /// [`ServiceError::ShuttingDown`] once shutdown has begun.
    pub fn submit(&self, request: ServiceRequest) -> Result<Ticket, ServiceError> {
        let shared = &self.shared;
        // In-flight cap first: it is client-local, so a saturated client
        // cannot even contend on the queue lock.
        let cap = shared.cfg.per_conn_inflight;
        if self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| (v < cap).then_some(v + 1))
            .is_err()
        {
            shared.counters.rejected_inflight.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded { what: "per-connection in-flight cap" });
        }
        let permit = InflightPermit(Arc::clone(&self.inflight));
        let slot = Slot::new();
        {
            let mut state = lock_unpoisoned(&shared.state);
            if state.shutdown {
                drop(state);
                shared.counters.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::ShuttingDown);
            }
            if state.queue.len() >= shared.cfg.queue_depth {
                drop(state);
                shared.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded { what: "submission queue full" });
            }
            state.queue.push_back(Pending {
                request,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
                _permit: permit,
            });
        }
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a request and blocks for its response.
    pub fn call(&self, request: ServiceRequest) -> ServiceResult {
        self.submit(request)?.wait()
    }

    /// Prices one contract through the service.
    pub fn price(&self, request: PricingRequest) -> Result<f64, ServiceError> {
        match self.call(ServiceRequest::Price(request))? {
            ServiceResponse::Price(p) => Ok(p),
            _ => Err(ServiceError::Internal { what: "price request answered with another kind" }),
        }
    }

    /// Full greeks ladder for one contract through the service.
    pub fn greeks(
        &self,
        request: PricingRequest,
    ) -> Result<amopt_core::greeks::Greeks, ServiceError> {
        match self.call(ServiceRequest::Greeks(request))? {
            ServiceResponse::Greeks(g) => Ok(g),
            _ => Err(ServiceError::Internal { what: "greeks request answered with another kind" }),
        }
    }

    /// Inverts one implied-volatility quote through the service.
    pub fn implied_vol(&self, quote: VolQuote) -> Result<f64, ServiceError> {
        match self.call(ServiceRequest::ImpliedVol(quote))? {
            ServiceResponse::ImpliedVol(v) => Ok(v),
            _ => Err(ServiceError::Internal {
                what: "implied-vol request answered with another kind",
            }),
        }
    }

    /// Requests currently in flight on this handle.
    pub fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

/// A pending response; resolve it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the coalesced batch containing this request has
    /// executed and returns the request's own result.
    pub fn wait(self) -> ServiceResult {
        self.slot.wait()
    }
}

/// One worker: adopt the queue head, coalesce to deadline or size, drain,
/// execute, repeat — until shutdown *and* an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = lock_unpoisoned(&shared.state);
            // Phase 1: wait for work (or exit once shut down and drained).
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = wait_unpoisoned(&shared.work, state);
            }
            // Phase 2: coalesce until the batch is full or the head's
            // deadline passes.  Shutdown flushes immediately: latency no
            // longer matters, only draining does.
            let Some(head) = state.queue.front() else { continue };
            let deadline = head.enqueued + shared.cfg.max_wait;
            while state.queue.len() < shared.cfg.max_batch && !state.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (s, _timeout) = wait_timeout_unpoisoned(&shared.work, state, deadline - now);
                state = s;
                if state.queue.is_empty() {
                    // Another worker drained the queue while this one slept;
                    // nothing left to coalesce around.
                    break;
                }
            }
            if state.queue.is_empty() {
                continue;
            }
            // Phase 3: drain up to max_batch entries in arrival order.
            let take = state.queue.len().min(shared.cfg.max_batch);
            state.queue.drain(..take).collect::<Vec<_>>()
        };
        execute(shared, batch);
    }
}

/// Executes one drained batch: group by request kind, run each group
/// through its batch-native driver over the shared pricer, scatter results
/// into the slots.
fn execute(shared: &Shared, batch: Vec<Pending>) {
    // amopt-lint: hot-path
    // amopt-lint: allow-scope(hot-path-alloc) -- per-batch grouping/scatter buffers are O(batch); request payloads are cloned exactly once into the driver slices
    let c = &shared.counters;
    c.batches.fetch_add(1, Ordering::Relaxed);
    if let Some(bucket) = c.batch_hist.get(BatchHistogram::bucket_of(batch.len())) {
        bucket.fetch_add(1, Ordering::Relaxed);
    }

    // Group by request kind, tracking batch indices alongside the driver
    // input slices — the request payloads are cloned exactly once.
    let mut prices: Vec<usize> = Vec::new();
    let mut price_reqs: Vec<PricingRequest> = Vec::new();
    let mut greeks: Vec<usize> = Vec::new();
    let mut greek_reqs: Vec<PricingRequest> = Vec::new();
    let mut vols: Vec<usize> = Vec::new();
    let mut vol_quotes: Vec<VolQuote> = Vec::new();
    for (i, pending) in batch.iter().enumerate() {
        match &pending.request {
            ServiceRequest::Price(req) => {
                prices.push(i);
                price_reqs.push(req.clone());
            }
            ServiceRequest::Greeks(req) => {
                greeks.push(i);
                greek_reqs.push(req.clone());
            }
            ServiceRequest::ImpliedVol(quote) => {
                vols.push(i);
                vol_quotes.push(quote.clone());
            }
        }
    }

    // Each entry is consumed at completion so its in-flight permit drops
    // *before* the slot fill wakes the waiter: a client that has observed
    // its response always has that unit of budget back, and an `in_flight`
    // read after `Ticket::wait` is never stale.
    let mut batch: Vec<Option<Pending>> = batch.into_iter().map(Some).collect();
    let mut complete = |i: usize, result: ServiceResult| {
        // The index vectors partition the batch, so every `i` is in range
        // and completed exactly once; if that bookkeeping ever broke,
        // skipping the entry beats panicking the worker.
        let Some(Pending { slot, _permit, .. }) = batch.get_mut(i).and_then(Option::take) else {
            return;
        };
        drop(_permit);
        // Count *before* filling: the fill wakes the waiter, and a stats
        // read right after `Ticket::wait` must already see this completion.
        c.completed.fetch_add(1, Ordering::Relaxed);
        slot.fill(result);
    };

    if !price_reqs.is_empty() {
        let results = shared.pricer.price_batch(&price_reqs);
        for (&i, result) in prices.iter().zip(results) {
            complete(i, result.map(ServiceResponse::Price).map_err(ServiceError::from));
        }
    }
    if !greek_reqs.is_empty() {
        let results = batch_greeks::greeks(&shared.pricer, &greek_reqs);
        for (&i, result) in greeks.iter().zip(results) {
            complete(i, result.map(ServiceResponse::Greeks).map_err(ServiceError::from));
        }
    }
    if !vol_quotes.is_empty() {
        let results = implied_vol_surface(&shared.pricer, &vol_quotes);
        for (&i, result) in vols.iter().zip(results) {
            complete(i, result.map(ServiceResponse::ImpliedVol).map_err(ServiceError::from));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_core::batch::ModelKind;
    use amopt_core::{EngineConfig, OptionParams, OptionType};
    use std::time::Duration;

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    fn price_req(strike: f64, steps: usize) -> PricingRequest {
        PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { strike, ..p() },
            steps,
        )
    }

    #[test]
    fn coalesced_prices_are_bitwise_identical_to_direct_batch_pricing() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let book: Vec<PricingRequest> = (0..24).map(|i| price_req(90.0 + i as f64, 128)).collect();
        let tickets: Vec<Ticket> =
            book.iter().map(|r| client.submit(ServiceRequest::Price(r.clone())).unwrap()).collect();
        let got: Vec<f64> = tickets
            .into_iter()
            .map(|t| match t.wait().unwrap() {
                ServiceResponse::Price(p) => p,
                other => panic!("{other:?}"),
            })
            .collect();
        let direct = BatchPricer::new(EngineConfig::default());
        let want = direct.price_batch(&book);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.as_ref().unwrap().to_bits());
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
        assert!(stats.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn batches_flush_at_max_batch_before_the_deadline() {
        // A long max_wait with a tiny max_batch: the only way the calls
        // below return promptly is the size trigger.
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600),
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| client.submit(ServiceRequest::Price(price_req(100.0 + i as f64, 32))).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 1, "4 submits at max_batch 4 must flush as one batch");
        assert_eq!(stats.batch_sizes.non_empty(), vec![(4, 1)]);
        service.shutdown();
    }

    #[test]
    fn lone_request_flushes_at_the_deadline() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(5),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let t0 = Instant::now();
        let price = client.price(price_req(110.0, 32)).unwrap();
        assert!(price > 0.0);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline flush must not wait for max_batch"
        );
        service.shutdown();
    }

    #[test]
    fn queue_overflow_rejects_with_overloaded_and_loses_nothing_in_flight() {
        // One worker, long wait, tiny queue: fill it, then overflow.
        let service = QuoteService::start(ServiceConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(20),
            queue_depth: 4,
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for i in 0..64 {
            match client.submit(ServiceRequest::Price(price_req(80.0 + i as f64, 64))) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::Overloaded { what }) => {
                    assert_eq!(what, "submission queue full");
                    rejected += 1;
                }
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(rejected > 0, "64 fast submits into a depth-4 queue must shed load");
        let accepted = tickets.len();
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted requests must all be answered");
        }
        let stats = service.stats();
        assert_eq!(stats.completed as usize, accepted);
        assert_eq!(stats.rejected_queue_full as usize, rejected);
        service.shutdown();
    }

    #[test]
    fn inflight_cap_rejects_the_overcommitted_client_only() {
        let service = QuoteService::start(ServiceConfig {
            per_conn_inflight: 2,
            max_batch: 1024,
            max_wait: Duration::from_millis(50),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let greedy = service.client();
        let t1 = greedy.submit(ServiceRequest::Price(price_req(100.0, 64))).unwrap();
        let t2 = greedy.submit(ServiceRequest::Price(price_req(101.0, 64))).unwrap();
        let rejected = greedy.submit(ServiceRequest::Price(price_req(102.0, 64)));
        assert!(
            matches!(
                rejected,
                Err(ServiceError::Overloaded { what: "per-connection in-flight cap" })
            ),
            "{rejected:?}"
        );
        // A fresh client has its own budget.
        let other = service.client();
        let t3 = other.submit(ServiceRequest::Price(price_req(103.0, 64))).unwrap();
        for t in [t1, t2, t3] {
            assert!(t.wait().is_ok());
        }
        // Budgets are released on completion.
        assert_eq!(greedy.in_flight(), 0);
        assert!(greedy.submit(ServiceRequest::Price(price_req(104.0, 64))).is_ok());
        let stats = service.stats();
        assert_eq!(stats.rejected_inflight, 1);
        service.shutdown();
    }

    #[test]
    fn budget_is_back_the_moment_the_response_is_observable() {
        // The permit must drop before the slot fill wakes the waiter, so a
        // client at its cap can always resubmit right after `wait` returns.
        // Run at cap 1 in a tight loop: any release-after-wake ordering
        // turns into a spurious Overloaded rejection here.
        let service = QuoteService::start(ServiceConfig {
            per_conn_inflight: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        for i in 0..100 {
            let ticket = client
                .submit(ServiceRequest::Price(price_req(90.0 + (i % 8) as f64, 32)))
                .unwrap_or_else(|e| panic!("iteration {i} spuriously rejected: {e}"));
            assert!(ticket.wait().is_ok());
            assert_eq!(client.in_flight(), 0, "budget still held after wait (iteration {i})");
        }
        assert_eq!(service.stats().rejected_inflight, 0);
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests_and_rejects_new_ones() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600), // only shutdown can flush a partial batch
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| client.submit(ServiceRequest::Price(price_req(95.0 + i as f64, 32))).unwrap())
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "in-flight requests must be answered during drain");
        }
        assert!(matches!(
            client.submit(ServiceRequest::Price(price_req(99.0, 32))),
            Err(ServiceError::ShuttingDown)
        ));
        assert_eq!(service.stats().rejected_shutdown, 1);
    }

    #[test]
    fn mixed_request_kinds_resolve_to_their_own_variants() {
        let service = QuoteService::start(ServiceConfig::default()).expect("start service");
        let client = service.client();
        let price = client.price(price_req(120.0, 128)).unwrap();
        assert!(price > 0.0);
        let g = client.greeks(price_req(120.0, 128)).unwrap();
        assert!(g.delta > 0.0 && g.vega > 0.0);
        let market = price;
        let vol = client
            .implied_vol(VolQuote::new(OptionParams { strike: 120.0, ..p() }, 128, market))
            .unwrap();
        assert!((vol - p().volatility).abs() < 1e-6, "round-trip vol {vol}");
        // Pricing errors come back in their own slot, not as a panic.
        let bad = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { spot: -1.0, ..p() },
            64,
        );
        assert!(matches!(client.price(bad), Err(ServiceError::Pricing(_))));
        service.shutdown();
    }

    #[test]
    fn memo_is_shared_across_batches_and_reported_in_stats() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let req = price_req(115.0, 96);
        let a = client.price(req.clone()).unwrap();
        let b = client.price(req).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let stats = service.stats();
        assert!(stats.memo.hits >= 1, "second quote must be a memo hit: {stats:?}");
        assert!(stats.memo_hit_rate() > 0.0);
        service.shutdown();
    }
}
