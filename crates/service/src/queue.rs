//! The coalescing core: bounded submission queue, earliest-deadline-first
//! batcher with per-client fair shares, worker pool, and the in-process
//! client handle.
//!
//! ## Queue lifecycle
//!
//! 1. **Submit.**  A [`Client`] wraps the request and a fresh completion
//!    slot into a queue entry.  Every entry carries a *deadline*: the
//!    caller's budget from [`Client::submit_with_deadline`], or
//!    [`max_wait`](crate::ServiceConfig::max_wait) when untagged — so a
//!    plain [`Client::submit`] behaves exactly like the original FIFO
//!    age-based flush.  Submission fails fast — with
//!    [`ServiceError::Overloaded`] — when the bounded queue is full or the
//!    client is at its in-flight cap; nothing is ever silently dropped or
//!    unboundedly buffered.
//! 2. **Coalesce.**  An idle worker waits until the queue holds
//!    [`max_batch`](crate::ServiceConfig::max_batch) requests *or* the
//!    **earliest queued deadline** arrives, whichever first.  A late
//!    submission with a tight deadline therefore *shortens* the wait: the
//!    flush clock follows the heap head, not the oldest arrival.
//! 3. **Drain (EDF + fair share).**  The worker pops the binary heap in
//!    earliest-deadline-first order (sequence number breaks ties, so equal
//!    deadlines drain in arrival order).  Each client's take is capped at
//!    `max_batch / distinct-queued-clients` (at least 1); over-share pops
//!    are set aside and re-admitted — still in EDF order — only if the
//!    batch has room once every client got its share, and anything left
//!    returns to the heap untouched.  A deadline-tagged quote therefore
//!    overtakes a 4096-contract bulk book instead of queueing behind it.
//! 4. **Execute.**  The drained batch is grouped by request kind and each
//!    group runs through its batch-native driver over the *shared*
//!    [`BatchPricer`] — one `price_batch` for prices, one fanned greeks
//!    ladder, one lockstep surface inversion — so co-batched requests share
//!    in-batch dedup and every request shares the cross-batch memo.
//! 5. **Complete.**  Each entry's slot receives its own `Result`; waiting
//!    clients wake, and a completion callback (the reactor's readiness
//!    nudge) fires outside every lock.  Batch size, queue depth, heap-pop
//!    and deadline-miss counters feed
//!    [`ServiceStats`](crate::ServiceStats).
//!
//! Shutdown flips a flag (new submits fail with
//! [`ServiceError::ShuttingDown`]), wakes every worker, and joins them;
//! workers drain the remaining queue — answering every accepted request —
//! before exiting.

use crate::config::{DegradationPolicy, ServiceConfig};
use crate::fault::FaultSite;
use crate::obs::{legacy_batch_hist, ServiceObs, KIND_GREEKS, KIND_IMPLIED_VOL, KIND_PRICE};
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use crate::types::{ServiceError, ServiceRequest, ServiceResponse, ServiceStats, ShedByClass};
use crate::ServiceResult;
use amopt_core::batch::surface::{implied_vol_surface, VolQuote};
use amopt_core::batch::{greeks as batch_greeks, BatchPricer, PricingRequest};
use amopt_obs::{Journal, RequestTrace, Stage, TraceCard};
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A completion callback, invoked exactly once when the slot fills —
/// always *outside* the slot's own locks.  The reactor front end uses this
/// to push the connection onto its ready list and kick the event loop.
type NotifyFn = Box<dyn FnOnce() + Send>;

/// Completion slot of one submitted request.
struct Slot {
    done: Mutex<Option<ServiceResult>>,
    ready: Condvar,
    notify: Mutex<Option<NotifyFn>>,
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slot")
            .field("done", &self.done)
            .field("has_notify", &lock_unpoisoned(&self.notify).is_some())
            .finish()
    }
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot { done: Mutex::new(None), ready: Condvar::new(), notify: Mutex::new(None) })
    }

    fn fill(&self, result: ServiceResult) {
        {
            let mut done = lock_unpoisoned(&self.done);
            *done = Some(result);
            self.ready.notify_all();
        }
        // Fire the completion callback outside both locks: it may grab the
        // reactor's ready-list mutex and write an eventfd, neither of which
        // belongs under a guard.
        let callback = lock_unpoisoned(&self.notify).take();
        if let Some(callback) = callback {
            callback();
        }
    }

    fn wait(&self) -> ServiceResult {
        let mut done = lock_unpoisoned(&self.done);
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = wait_unpoisoned(&self.ready, done);
        }
    }
}

/// Releases one unit of a client's in-flight budget when the request
/// completes (dropped by the worker *before* filling the slot, or by the
/// submit path on rejection).
#[derive(Debug)]
struct InflightPermit(Arc<AtomicUsize>);

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Debug)]
struct Pending {
    request: ServiceRequest,
    slot: Arc<Slot>,
    /// EDF key: when this request wants to have flushed.
    deadline: Instant,
    /// Whether `deadline` came from a caller-supplied budget (and therefore
    /// counts toward [`ServiceStats::deadline_misses`]) rather than from the
    /// `max_wait` coalescing default, which exists only to order the heap.
    explicit_deadline: bool,
    /// Queue-arrival sequence number; breaks deadline ties FIFO.
    seq: u64,
    /// Fair-share key: which client handle submitted this.
    client_id: u64,
    /// Flightdeck trace card riding along (absent when tracing is off).
    trace: Option<Arc<RequestTrace>>,
    _permit: InflightPermit,
}

// The heap orders *only* by (deadline, seq); payload fields are ignored.
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `BinaryHeap` is a max-heap, so invert: the earliest deadline
        // (then the lowest sequence number) compares greatest and pops
        // first.
        other.deadline.cmp(&self.deadline).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Default)]
struct QueueState {
    /// Earliest-deadline-first submission queue.
    heap: BinaryHeap<Pending>,
    /// Next arrival sequence number (assigned under this lock, so ties
    /// drain in true arrival order).
    next_seq: u64,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    cfg: ServiceConfig,
    pricer: BatchPricer,
    state: Mutex<QueueState>,
    /// Signalled on every enqueue and on shutdown.
    work: Condvar,
    /// The Flightdeck spine: every counter, gauge, histogram, trace card,
    /// and journal event the service emits funnels through here.
    obs: Arc<ServiceObs>,
    /// Retry-budget token bucket, in *tenths* of a retry: a retry spends
    /// 10, a clean first-attempt success earns 1 back (capped at the
    /// configured budget), so retry traffic is bounded at the budget plus
    /// ~10% of successful throughput.  Kept as a raw atomic (the spend
    /// path is a CAS loop, not a plain add) and mirrored to the
    /// `amopt_retry_tokens` gauge after every state change.
    retry_tokens: AtomicU64,
    /// Client-handle id allocator (fair-share key).
    next_client: AtomicU64,
    /// Worker thread handles.  Lives in `Shared` (not `QuoteService`) so
    /// the watchdog guard of a dying worker can register its replacement's
    /// handle for shutdown to join.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    /// Spends one retry token (10 tenths); `false` when the bucket is dry.
    fn spend_retry_token(&self) -> bool {
        let spent = self
            .retry_tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(10))
            .is_ok();
        self.obs.retry_tokens.set(self.retry_tokens.load(Ordering::Acquire));
        spent
    }

    /// Earns a tenth of a retry token, capped at the configured budget.
    fn earn_retry_tenth(&self) {
        let cap = self.cfg.retry_budget as u64 * 10;
        let _ = self
            .retry_tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| (t < cap).then_some(t + 1));
        self.obs.retry_tokens.set(self.retry_tokens.load(Ordering::Acquire));
    }
}

/// The batch-coalescing quote service.  Start one with
/// [`QuoteService::start`], hand out [`Client`]s, and shut it down with
/// [`QuoteService::shutdown`] (also invoked on drop).
#[derive(Debug)]
pub struct QuoteService {
    shared: Arc<Shared>,
}

/// Spawns worker `index`, registering its handle for shutdown to join.
/// `workers_alive` is incremented *before* the spawn so a stats read right
/// after `start`/respawn already counts the worker.
fn spawn_worker(shared: &Arc<Shared>, index: usize) -> std::io::Result<()> {
    shared.obs.workers_alive.add(1);
    let worker_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new().name(format!("amopt-service-worker-{index}")).spawn(
        move || {
            let _watchdog = WorkerGuard { shared: Arc::clone(&worker_shared), index };
            worker_loop(&worker_shared)
        },
    );
    match spawned {
        Ok(handle) => {
            lock_unpoisoned(&shared.workers).push(handle);
            Ok(())
        }
        Err(e) => {
            shared.obs.workers_alive.sub(1);
            Err(e)
        }
    }
}

/// The self-healing watchdog: dropped as a worker thread exits.  A normal
/// exit (shutdown drain finished) just decrements the live count; an exit
/// by panic respawns a replacement — unless the service is shutting down
/// with nothing left to drain — and counts a restart.  The queue itself is
/// untouched by the death: entries the worker had *drained* were already
/// answered through the executor's panic isolation, and entries still
/// queued are picked up by the replacement.
struct WorkerGuard {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.shared.obs.workers_alive.sub(1);
        if !std::thread::panicking() {
            return;
        }
        let respawn = {
            let state = lock_unpoisoned(&self.shared.state);
            !state.shutdown || !state.heap.is_empty()
        };
        if !respawn {
            return;
        }
        if spawn_worker(&self.shared, self.index).is_ok() {
            self.shared.obs.worker_restarted(self.index as u64);
        }
    }
}

/// Takes the current worker handles (a helper so no lock guard outlives
/// the take — the caller joins outside any lock).
fn take_worker_handles(shared: &Shared) -> Vec<std::thread::JoinHandle<()>> {
    let mut workers = lock_unpoisoned(&shared.workers);
    std::mem::take(&mut *workers)
}

impl QuoteService {
    /// Starts the worker pool and returns the running service.
    ///
    /// Fails with the spawn error if the OS refuses a worker thread; any
    /// workers already started are shut down and joined before returning.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let cfg = cfg.normalised();
        let pricer = BatchPricer::with_memo_config(cfg.engine, cfg.memo_capacity, cfg.memo_shards);
        let obs = ServiceObs::new(cfg.trace, cfg.journal_capacity);
        if let Some(plan) = &cfg.fault {
            // Wire the fault plan's firing funnel into the journal and the
            // per-site counters.  `attach_observer` is first-write-wins, so
            // reusing one plan across services keeps the first journal.
            plan.attach_observer(Arc::clone(&obs));
        }
        let shared = Arc::new(Shared {
            cfg,
            pricer,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            obs,
            retry_tokens: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        // Fill the retry-budget token bucket (tenths of a retry).
        shared.retry_tokens.store(shared.cfg.retry_budget as u64 * 10, Ordering::Relaxed);
        shared.obs.retry_tokens.set(shared.cfg.retry_budget as u64 * 10);
        for i in 0..shared.cfg.workers {
            if let Err(e) = spawn_worker(&shared, i) {
                lock_unpoisoned(&shared.state).shutdown = true;
                shared.work.notify_all();
                for handle in take_worker_handles(&shared) {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
        Ok(QuoteService { shared })
    }

    /// A new client handle with its own in-flight budget
    /// ([`ServiceConfig::per_conn_inflight`]) and its own fair-share
    /// identity.  Handles are cheap; give each connection or logical
    /// caller its own.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            inflight: Arc::new(AtomicUsize::new(0)),
            id: self.shared.next_client.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The configuration the service was started with (normalised).
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Point-in-time counters: queue depth, batch-size histogram, memo hit
    /// rate, rejection / deadline-miss / heap-pop counts.
    ///
    /// Since the Flightdeck refactor this is a *view* assembled from the
    /// metrics registry — the same instruments `metrics_text` exposes — so
    /// the legacy `stats` wire op and the Prometheus exposition can never
    /// disagree.
    pub fn stats(&self) -> ServiceStats {
        let o = &self.shared.obs;
        let queue_depth = self.shared.state.lock().map(|s| s.heap.len()).unwrap_or_default();
        ServiceStats {
            queue_depth,
            submitted: o.submitted.get(),
            completed: o.completed.get(),
            rejected_queue_full: o.rejected_queue_full.get(),
            rejected_inflight: o.rejected_inflight.get(),
            rejected_shutdown: o.rejected_shutdown.get(),
            batches: o.batches.get(),
            deadline_misses: o.deadline_misses.get(),
            heap_pops: o.heap_pops.get(),
            batch_sizes: legacy_batch_hist(&o.batch_size.snapshot()),
            memo: self.shared.pricer.memo_stats(),
            worker_restarts: o.worker_restarts.get(),
            workers_alive: o.workers_alive.get(),
            retries: o.retries.get(),
            retry_budget_exhausted: o.retry_budget_exhausted.get(),
            shed_by_class: ShedByClass {
                price: o.shed_price.get(),
                greeks: o.shed_greeks.get(),
                implied_vol: o.shed_implied_vol.get(),
            },
            reactor: o.reactor_stats(),
        }
    }

    /// The full Prometheus-style metrics exposition: every registry
    /// instrument plus the kernel phase timers, with scrape-time gauges
    /// (memo, journal) refreshed first.
    pub fn metrics_text(&self) -> String {
        self.shared
            .obs
            .queue_depth
            .set(self.shared.state.lock().map(|s| s.heap.len()).unwrap_or_default() as u64);
        self.shared.obs.render(&self.shared.pricer.memo_stats())
    }

    /// The most recent `n` completed request trace cards, oldest first,
    /// sampled from the event journal without stopping writers.
    pub fn recent_traces(&self, n: usize) -> Vec<TraceCard> {
        self.shared.obs.recent_traces(n)
    }

    /// The event journal — completed trace cards, fault firings, sheds,
    /// retries, worker restarts, and deadline misses, in push order.
    pub fn journal(&self) -> &Arc<Journal> {
        self.shared.obs.journal()
    }

    /// Number of instruments registered with the metrics registry.
    pub fn instrument_count(&self) -> usize {
        self.shared.obs.instrument_count()
    }

    /// The observability spine, shared with the front ends.
    pub(crate) fn obs(&self) -> &Arc<ServiceObs> {
        &self.shared.obs
    }

    /// Stops accepting new requests, drains and answers everything already
    /// accepted, and joins the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // Take the handles, join outside the lock: joining with `workers`
        // held would block every concurrent `shutdown` caller on this
        // mutex for the full drain instead of on the join itself.  Loop
        // until the list stays empty: a worker dying mid-drain registers
        // its watchdog replacement's handle concurrently, and `join` on
        // the dying thread returns only after that registration, so the
        // next take observes it.
        loop {
            let drained = take_worker_handles(&self.shared);
            if drained.is_empty() {
                return;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for QuoteService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-process handle for submitting quotes to a [`QuoteService`].
///
/// Cloning shares the in-flight budget *and* the fair-share identity; use
/// [`QuoteService::client`] for an independent one.
#[derive(Debug, Clone)]
pub struct Client {
    shared: Arc<Shared>,
    inflight: Arc<AtomicUsize>,
    id: u64,
}

impl Client {
    /// Submits a request without waiting; the returned [`Ticket`] resolves
    /// when the coalesced batch containing the request executes.
    ///
    /// The request is scheduled as if its deadline were
    /// [`max_wait`](crate::ServiceConfig::max_wait) from now — the
    /// pre-EDF flush behaviour.  Fails fast with
    /// [`ServiceError::Overloaded`] when this client is at its in-flight
    /// cap or the submission queue is full, and with
    /// [`ServiceError::ShuttingDown`] once shutdown has begun.
    pub fn submit(&self, request: ServiceRequest) -> Result<Ticket, ServiceError> {
        self.submit_with_deadline(request, None)
    }

    /// Submits a request with an explicit latency budget: the scheduler
    /// flushes a batch no later than the earliest queued deadline and
    /// drains the queue earliest-deadline-first, so a tight budget
    /// overtakes queued bulk work.  `None` falls back to
    /// [`max_wait`](crate::ServiceConfig::max_wait), making this
    /// equivalent to [`Client::submit`].
    pub fn submit_with_deadline(
        &self,
        request: ServiceRequest,
        budget: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        // amopt-lint: hot-path
        let trace = self.shared.obs.trace_start();
        if let Some(trace) = &trace {
            trace.set_id(self.shared.obs.next_trace_id());
            trace.set_kind(ServiceObs::kind_of(&request));
            trace.stamp(Stage::Parsed);
        }
        self.submit_traced(request, budget, trace)
    }

    /// The submit funnel behind [`Client::submit_with_deadline`]: the wire
    /// front ends call this directly with a trace card they started before
    /// decoding, so the parse interval covers the actual wire decode.
    pub(crate) fn submit_traced(
        &self,
        request: ServiceRequest,
        budget: Option<Duration>,
        trace: Option<Arc<RequestTrace>>,
    ) -> Result<Ticket, ServiceError> {
        // amopt-lint: hot-path
        let shared = &self.shared;
        // In-flight cap first: it is client-local, so a saturated client
        // cannot even contend on the queue lock.
        let cap = shared.cfg.per_conn_inflight;
        if self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| (v < cap).then_some(v + 1))
            .is_err()
        {
            shared.obs.rejected_inflight.inc();
            return Err(ServiceError::Overloaded { what: "per-connection in-flight cap" });
        }
        let permit = InflightPermit(Arc::clone(&self.inflight));
        let slot = Slot::new();
        let mut deadline = Instant::now() + budget.unwrap_or(shared.cfg.max_wait);
        if let Some(plan) = &shared.cfg.fault {
            // Injected clock skew: perturb the deadline arithmetic by a
            // bounded, deterministic offset.  EDF ordering degrades
            // gracefully (entries drain slightly out of ideal order and
            // explicit budgets may count a miss); correctness — exactly one
            // reply per accepted request — never depends on the deadline.
            if let Some(skew_ms) = plan.clock_skew_ms() {
                deadline = if skew_ms >= 0 {
                    deadline + Duration::from_millis(skew_ms as u64)
                } else {
                    deadline
                        .checked_sub(Duration::from_millis(skew_ms.unsigned_abs()))
                        .unwrap_or(deadline)
                };
            }
        }
        let delivery = trace.as_ref().map(|t| (Arc::clone(t), Arc::clone(&shared.obs)));
        {
            let mut state = lock_unpoisoned(&shared.state);
            if state.shutdown {
                drop(state);
                shared.obs.rejected_shutdown.inc();
                return Err(ServiceError::ShuttingDown);
            }
            if state.heap.len() >= shared.cfg.queue_depth {
                drop(state);
                shared.obs.rejected_queue_full.inc();
                return Err(ServiceError::Overloaded { what: "submission queue full" });
            }
            // Brownout tiers: under sustained queue pressure, shed untagged
            // work by class — implied-vol inversions first, greeks ladders
            // second, plain quotes last.  Deadline-tagged submissions skip
            // brownout entirely (the EDF scheduler exists to serve them);
            // only a full queue rejects those.
            if budget.is_none() {
                let fill = state.heap.len();
                let depth = shared.cfg.queue_depth;
                let policy = &shared.cfg.degradation;
                let shed = match &request {
                    ServiceRequest::ImpliedVol(_)
                        if DegradationPolicy::sheds(policy.shed_implied_vol_at, fill, depth) =>
                    {
                        Some((
                            KIND_IMPLIED_VOL,
                            &shared.obs.shed_implied_vol,
                            "brownout: implied-vol inversions shed under queue pressure",
                        ))
                    }
                    ServiceRequest::Greeks(_)
                        if DegradationPolicy::sheds(policy.shed_greeks_at, fill, depth) =>
                    {
                        Some((
                            KIND_GREEKS,
                            &shared.obs.shed_greeks,
                            "brownout: greeks ladders shed under queue pressure",
                        ))
                    }
                    ServiceRequest::Price(_)
                        if DegradationPolicy::sheds(policy.shed_price_at, fill, depth) =>
                    {
                        Some((
                            KIND_PRICE,
                            &shared.obs.shed_price,
                            "brownout: untagged quotes shed under queue pressure",
                        ))
                    }
                    _ => None,
                };
                if let Some((class, counter, what)) = shed {
                    drop(state);
                    counter.inc();
                    shared.obs.shed_fired(class);
                    return Err(ServiceError::Overloaded { what });
                }
            }
            let seq = state.next_seq;
            state.next_seq += 1;
            state.heap.push(Pending {
                request,
                slot: Arc::clone(&slot),
                deadline,
                explicit_deadline: budget.is_some(),
                seq,
                client_id: self.id,
                trace,
                _permit: permit,
            });
        }
        if let Some((trace, _)) = &delivery {
            trace.stamp(Stage::Enqueued);
        }
        shared.obs.submitted.inc();
        // notify_all, not notify_one: a new earliest deadline must re-arm
        // the timeout of whichever worker is coalescing, which is not
        // necessarily the one `notify_one` would pick.
        shared.work.notify_all();
        Ok(Ticket { slot, delivery })
    }

    /// Submits a request and blocks for its response.
    pub fn call(&self, request: ServiceRequest) -> ServiceResult {
        self.submit(request)?.wait()
    }

    /// [`call`](Client::call) with jittered-exponential-backoff retries on
    /// [`ServiceError::Overloaded`] — the one in-process outcome that is
    /// idempotent-safe to retry, because a rejected request was never
    /// enqueued.  Everything else (success, pricing errors, shutdown,
    /// internal errors) returns immediately: those requests *executed*, so
    /// resubmitting would double-run them.
    ///
    /// Retries draw on a service-wide budget
    /// ([`retry_budget`](crate::ServiceConfig::retry_budget)): each retry
    /// spends a token and each clean first-attempt success earns a tenth
    /// back, so a persistent overload cannot amplify traffic by more than
    /// the budget plus ~10% of goodput.  When the budget is dry the
    /// original `Overloaded` error surfaces unchanged and
    /// `retry_budget_exhausted` counts it.  Backoff jitter is
    /// deterministic per (client handle, attempt): no global RNG.
    pub fn call_with_retry(&self, request: ServiceRequest, policy: &RetryPolicy) -> ServiceResult {
        let attempts = policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            let first_attempt = attempt == 1;
            match self.call(request.clone()) {
                Err(ServiceError::Overloaded { what }) => {
                    if attempt == attempts {
                        return Err(ServiceError::Overloaded { what });
                    }
                    if !self.shared.spend_retry_token() {
                        self.shared.obs.retry_budget_exhausted.inc();
                        return Err(ServiceError::Overloaded { what });
                    }
                    self.shared.obs.retry_fired(self.id, attempt as u64);
                    std::thread::sleep(policy.backoff(self.id, attempt));
                }
                result => {
                    if first_attempt && result.is_ok() {
                        self.shared.earn_retry_tenth();
                    }
                    return result;
                }
            }
        }
        // Unreachable: the final attempt returned above.
        Err(ServiceError::Internal { what: "retry loop exhausted without a result" })
    }

    /// Prices one contract through the service.
    pub fn price(&self, request: PricingRequest) -> Result<f64, ServiceError> {
        match self.call(ServiceRequest::Price(request))? {
            ServiceResponse::Price(p) => Ok(p),
            _ => Err(ServiceError::Internal { what: "price request answered with another kind" }),
        }
    }

    /// Full greeks ladder for one contract through the service.
    pub fn greeks(
        &self,
        request: PricingRequest,
    ) -> Result<amopt_core::greeks::Greeks, ServiceError> {
        match self.call(ServiceRequest::Greeks(request))? {
            ServiceResponse::Greeks(g) => Ok(g),
            _ => Err(ServiceError::Internal { what: "greeks request answered with another kind" }),
        }
    }

    /// Inverts one implied-volatility quote through the service.
    pub fn implied_vol(&self, quote: VolQuote) -> Result<f64, ServiceError> {
        match self.call(ServiceRequest::ImpliedVol(quote))? {
            ServiceResponse::ImpliedVol(v) => Ok(v),
            _ => Err(ServiceError::Internal {
                what: "implied-vol request answered with another kind",
            }),
        }
    }

    /// Requests currently in flight on this handle.
    pub fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

/// Backoff shape for [`Client::call_with_retry`]: exponential from
/// `base_backoff`, capped at `max_backoff`, scaled by a deterministic
/// jitter in `[0.5, 1.0)` derived from the client handle and attempt
/// number (no global RNG, so a replay retries at identical instants).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (min 1).
    pub max_attempts: usize,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt + 1` for client handle `id`.
    pub(crate) fn backoff(&self, id: u64, attempt: usize) -> Duration {
        let doublings = u32::try_from(attempt.saturating_sub(1)).unwrap_or(16).min(16);
        let exp = self.base_backoff.saturating_mul(1u32 << doublings).min(self.max_backoff);
        let jitter =
            crate::fault::splitmix64(id.wrapping_mul(0x9e37_79b9).wrapping_add(attempt as u64));
        exp.mul_f64(0.5 + (jitter & 1023) as f64 / 2048.0)
    }
}

/// A pending response; resolve it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
    /// Delivery pair — the trace card this request carries and the obs
    /// spine to record it into — so taking the result stamps
    /// [`Stage::Delivered`] and journals the completed card exactly once.
    delivery: Option<(Arc<RequestTrace>, Arc<ServiceObs>)>,
}

impl Ticket {
    /// Blocks until the coalesced batch containing this request has
    /// executed and returns the request's own result.
    pub fn wait(mut self) -> ServiceResult {
        let result = self.slot.wait();
        if let Some((trace, obs)) = self.delivery.take() {
            obs.deliver(&trace, result.is_err());
        }
        result
    }

    /// Non-blocking poll: the result if the batch has executed, `None`
    /// otherwise.  The reactor uses this to pump in-order replies without
    /// ever parking its event loop.
    pub(crate) fn try_take(&self) -> Option<ServiceResult> {
        // amopt-lint: hot-path
        let result = lock_unpoisoned(&self.slot.done).take()?;
        if let Some((trace, obs)) = &self.delivery {
            obs.deliver(trace, result.is_err());
        }
        Some(result)
    }

    /// Arms a completion callback, fired exactly once — immediately if the
    /// result is already in, otherwise from the completing worker, always
    /// outside the slot's locks.
    pub(crate) fn set_notify(&self, callback: NotifyFn) {
        if lock_unpoisoned(&self.slot.done).is_some() {
            callback();
            return;
        }
        *lock_unpoisoned(&self.slot.notify) = Some(callback);
        // `fill` may have landed between the two locks above, in which
        // case it saw an empty notify slot and fired nothing: take the
        // callback back and fire it here.  At most one of the two paths
        // observes the callback, so it still runs exactly once.
        if lock_unpoisoned(&self.slot.done).is_some() {
            let callback = lock_unpoisoned(&self.slot.notify).take();
            if let Some(callback) = callback {
                callback();
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // A ticket dropped with its delivery pair still armed was never
        // resolved through `wait` — the requester vanished (typically a
        // connection torn down before the reactor could pump the reply).
        // Journal the card anyway, flagged abandoned, so the flight
        // recorder accounts every accepted request exactly once.  After a
        // `try_take` delivery this finds the card already finished and
        // does nothing.
        if let Some((trace, obs)) = self.delivery.take() {
            obs.abandon(&trace);
        }
    }
}

/// One worker: coalesce until the batch fills or the earliest queued
/// deadline arrives, drain EDF with per-client fair shares, execute,
/// repeat — until shutdown *and* an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        if let Some(plan) = &shared.cfg.fault {
            // Injected worker death, at the one safe point: between
            // batches, with nothing drained, so no accepted request is
            // held by the dying thread.  The watchdog guard respawns.
            if plan.fires(FaultSite::WorkerDeath) {
                // amopt-lint: allow(panic-surface) -- injected fault: the watchdog guard turns this panic into a respawn, which is the machinery under test
                panic!("amopt-fault: injected worker death");
            }
        }
        let batch = {
            let mut state = lock_unpoisoned(&shared.state);
            // Phase 1: wait for work (or exit once shut down and drained).
            loop {
                if !state.heap.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = wait_unpoisoned(&shared.work, state);
            }
            // Phase 2: coalesce until the batch is full or the earliest
            // queued deadline passes.  The heap head is re-read after
            // every wake: a fresh submission with a tighter deadline
            // shortens the remaining wait.  Shutdown flushes immediately:
            // latency no longer matters, only draining does.
            loop {
                if state.heap.len() >= shared.cfg.max_batch || state.shutdown {
                    break;
                }
                let Some(head) = state.heap.peek() else { break };
                let deadline = head.deadline;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (s, _timeout) = wait_timeout_unpoisoned(&shared.work, state, deadline - now);
                state = s;
                if state.heap.is_empty() {
                    // Another worker drained the queue while this one
                    // slept; nothing left to coalesce around.
                    break;
                }
            }
            if state.heap.is_empty() {
                continue;
            }
            // Phase 3: drain up to max_batch entries in EDF order with a
            // per-client fair share.
            drain_edf(&mut state, &shared.cfg, &shared.obs)
        };
        execute(shared, batch);
    }
}

/// Pops up to `max_batch` entries earliest-deadline-first, capping each
/// client at `max_batch / distinct-queued-clients` (at least one).  Pops
/// beyond a client's share are parked and — still in EDF order — backfill
/// whatever room the batch has left once the heap is exhausted, so the
/// flush never runs below capacity while work is queued.  Unused parked
/// entries go back on the heap.
fn drain_edf(state: &mut QueueState, cfg: &ServiceConfig, obs: &ServiceObs) -> Vec<Pending> {
    let mut distinct: Vec<u64> = Vec::new();
    for entry in state.heap.iter() {
        if !distinct.contains(&entry.client_id) {
            distinct.push(entry.client_id);
        }
    }
    let share = (cfg.max_batch / distinct.len().max(1)).max(1);
    let mut batch: Vec<Pending> = Vec::with_capacity(cfg.max_batch.min(state.heap.len()));
    let mut parked: Vec<Pending> = Vec::new();
    let mut taken: Vec<(u64, usize)> = Vec::new();
    let mut pops = 0u64;
    while batch.len() < cfg.max_batch {
        let Some(entry) = state.heap.pop() else { break };
        pops += 1;
        let count = match taken.iter_mut().find(|(id, _)| *id == entry.client_id) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                taken.push((entry.client_id, 1));
                1
            }
        };
        if count <= share {
            batch.push(entry);
        } else {
            parked.push(entry);
        }
    }
    obs.heap_pops.add(pops);
    // Work-conserving backfill, then return the rest to the heap.
    let mut parked = parked.into_iter();
    while batch.len() < cfg.max_batch {
        let Some(entry) = parked.next() else { break };
        batch.push(entry);
    }
    for entry in parked {
        state.heap.push(entry);
    }
    // The drained entries leave the EDF queue here — stamp the end of
    // their queue/coalesce wait.  (Parked entries back on the heap keep an
    // unstamped slot; the CAS stamp is first-wins, so a later real drain
    // still lands.)
    for entry in &batch {
        if let Some(trace) = &entry.trace {
            trace.stamp(Stage::Dequeued);
        }
    }
    batch
}

/// A request group's batch-native driver: slice of requests in, one result
/// per request out.
type BatchDriver<'a, R, T> = dyn Fn(&[R]) -> Vec<Result<T, amopt_core::PricingError>> + 'a;

/// Runs one request group through its batch driver inside the designated
/// `catch_unwind` boundary.  The fast path runs the whole group at once;
/// if the group panics (a real bug, or an injected [`FaultSite::WorkerPanic`]
/// flagged in `injected`), it falls back to per-request isolation: each
/// request re-runs alone under its own shield, so a panicking request
/// resolves to [`ServiceError::Internal`] for *that request only* and the
/// rest of the group still answers.  Injected panics fire *before* the
/// driver call, so the shared memo is never entered by a doomed request.
fn run_shielded<R, T>(
    injected: &[bool],
    reqs: &[R],
    run: &BatchDriver<'_, R, T>,
) -> Vec<Result<T, ServiceError>> {
    let clean = !injected.iter().any(|&b| b);
    if clean {
        // amopt-lint: allow(panic-surface) -- designated worker-pool unwind boundary: a driver panic is isolated per request below instead of killing the worker mid-batch
        let shielded = catch_unwind(AssertUnwindSafe(|| run(reqs)));
        if let Ok(results) = shielded {
            return results.into_iter().map(|r| r.map_err(ServiceError::from)).collect();
        }
    }
    reqs.iter()
        .zip(injected.iter().chain(std::iter::repeat(&false)))
        .map(|(req, &boom)| {
            // amopt-lint: allow(panic-surface) -- designated worker-pool unwind boundary: per-request isolation shield
            let one = catch_unwind(AssertUnwindSafe(|| {
                if boom {
                    // amopt-lint: allow(panic-surface) -- injected fault: this panic exists to prove the shield holds
                    panic!("amopt-fault: injected worker panic");
                }
                run(std::slice::from_ref(req)).pop()
            }));
            match one {
                Ok(Some(result)) => result.map_err(ServiceError::from),
                Ok(None) => Err(ServiceError::Internal { what: "batch driver returned no result" }),
                Err(_) => {
                    Err(ServiceError::Internal { what: "worker panicked pricing this request" })
                }
            }
        })
        .collect()
}

/// Executes one drained batch: group by request kind, run each group
/// through its batch-native driver over the shared pricer, scatter results
/// into the slots.
fn execute(shared: &Shared, batch: Vec<Pending>) {
    // amopt-lint: hot-path
    // amopt-lint: allow-scope(hot-path-alloc) -- per-batch grouping/scatter buffers are O(batch); request payloads are cloned exactly once into the driver slices
    let o = &shared.obs;
    for pending in &batch {
        if let Some(trace) = &pending.trace {
            trace.stamp(Stage::ExecStart);
        }
    }
    let plan = shared.cfg.fault.as_deref();
    if let Some(plan) = plan {
        if let Some(stall) = plan.stall() {
            // Injected stall: the worker sits on its drained batch.  Other
            // workers keep draining; nothing is lost, latency suffers.
            std::thread::sleep(stall);
        }
        if plan.fires(FaultSite::LostReply) {
            // The deliberately *unhandled* class: drop the drained entries
            // without filling their slots.  `submitted` permanently exceeds
            // `completed` and the chaos gate must fail — CI's proof that the
            // gate can catch a broken service.  Rate is zero in every
            // handled schedule.
            return;
        }
    }
    o.batches.inc();
    o.batch_size.record(batch.len() as u64);

    // Group by request kind, tracking batch indices alongside the driver
    // input slices — the request payloads are cloned exactly once.  Traced
    // price requests probe the memo on the way past (recency- and
    // counter-neutral) so their cards can carry the hit flag.
    let mut prices: Vec<usize> = Vec::new();
    let mut price_reqs: Vec<PricingRequest> = Vec::new();
    let mut greeks: Vec<usize> = Vec::new();
    let mut greek_reqs: Vec<PricingRequest> = Vec::new();
    let mut vols: Vec<usize> = Vec::new();
    let mut vol_quotes: Vec<VolQuote> = Vec::new();
    for (i, pending) in batch.iter().enumerate() {
        match &pending.request {
            ServiceRequest::Price(req) => {
                if let Some(trace) = &pending.trace {
                    if shared.pricer.memo_peek(req) {
                        trace.set_flag(amopt_obs::FLAG_MEMO_HIT);
                    }
                    trace.stamp(Stage::MemoProbed);
                }
                prices.push(i);
                price_reqs.push(req.clone());
            }
            ServiceRequest::Greeks(req) => {
                greeks.push(i);
                greek_reqs.push(req.clone());
            }
            ServiceRequest::ImpliedVol(quote) => {
                vols.push(i);
                vol_quotes.push(quote.clone());
            }
        }
    }

    // Each entry is consumed at completion so its in-flight permit drops
    // *before* the slot fill wakes the waiter: a client that has observed
    // its response always has that unit of budget back, and an `in_flight`
    // read after `Ticket::wait` is never stale.
    let mut batch: Vec<Option<Pending>> = batch.into_iter().map(Some).collect();
    let mut complete = |i: usize, result: ServiceResult| {
        // The index vectors partition the batch, so every `i` is in range
        // and completed exactly once; if that bookkeeping ever broke,
        // skipping the entry beats panicking the worker.
        let Some(Pending { slot, deadline, explicit_deadline, trace, _permit, .. }) =
            batch.get_mut(i).and_then(Option::take)
        else {
            return;
        };
        drop(_permit);
        // Only caller-supplied budgets count as misses: the `max_wait`
        // default deadline is the *flush trigger*, so delivery lands just
        // past it by construction and a miss there carries no signal.
        let now = Instant::now();
        if explicit_deadline && now > deadline {
            if let Some(trace) = &trace {
                trace.set_flag(amopt_obs::FLAG_DEADLINE_MISS);
            }
            let lateness = u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX);
            o.deadline_missed(lateness);
        }
        if let Some(trace) = &trace {
            trace.stamp(Stage::Completed);
        }
        // Count *before* filling: the fill wakes the waiter, and a stats
        // read right after `Ticket::wait` must already see this completion.
        o.completed.inc();
        slot.fill(result);
    };

    // Injected panic decisions, consulted once per price request (the
    // tentpole injects inside `price_batch` execution; other groups take
    // the isolation path only on a real driver panic).  Price batch-of-one
    // results are pinned bitwise-identical to in-batch results, so the
    // isolation fallback never perturbs delivered prices.
    let price_inject: Vec<bool> = match plan {
        Some(plan) => price_reqs.iter().map(|_| plan.fires(FaultSite::WorkerPanic)).collect(),
        None => Vec::new(),
    };

    if !price_reqs.is_empty() {
        let results =
            run_shielded(&price_inject, &price_reqs, &|reqs| shared.pricer.price_batch(reqs));
        for (&i, result) in prices.iter().zip(results) {
            complete(i, result.map(ServiceResponse::Price));
        }
    }
    if !greek_reqs.is_empty() {
        let results =
            run_shielded(&[], &greek_reqs, &|reqs| batch_greeks::greeks(&shared.pricer, reqs));
        for (&i, result) in greeks.iter().zip(results) {
            complete(i, result.map(ServiceResponse::Greeks));
        }
    }
    if !vol_quotes.is_empty() {
        let results =
            run_shielded(&[], &vol_quotes, &|quotes| implied_vol_surface(&shared.pricer, quotes));
        for (&i, result) in vols.iter().zip(results) {
            complete(i, result.map(ServiceResponse::ImpliedVol));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amopt_core::batch::ModelKind;
    use amopt_core::{EngineConfig, OptionParams, OptionType};
    use std::time::Duration;

    fn p() -> OptionParams {
        OptionParams::paper_defaults()
    }

    fn price_req(strike: f64, steps: usize) -> PricingRequest {
        PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { strike, ..p() },
            steps,
        )
    }

    #[test]
    fn coalesced_prices_are_bitwise_identical_to_direct_batch_pricing() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let book: Vec<PricingRequest> = (0..24).map(|i| price_req(90.0 + i as f64, 128)).collect();
        let tickets: Vec<Ticket> =
            book.iter().map(|r| client.submit(ServiceRequest::Price(r.clone())).unwrap()).collect();
        let got: Vec<f64> = tickets
            .into_iter()
            .map(|t| match t.wait().unwrap() {
                ServiceResponse::Price(p) => p,
                other => panic!("{other:?}"),
            })
            .collect();
        let direct = BatchPricer::new(EngineConfig::default());
        let want = direct.price_batch(&book);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.as_ref().unwrap().to_bits());
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
        assert!(stats.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn batches_flush_at_max_batch_before_the_deadline() {
        // A long max_wait with a tiny max_batch: the only way the calls
        // below return promptly is the size trigger.
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600),
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| client.submit(ServiceRequest::Price(price_req(100.0 + i as f64, 32))).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 1, "4 submits at max_batch 4 must flush as one batch");
        assert_eq!(stats.batch_sizes.non_empty(), vec![(4, 1)]);
        service.shutdown();
    }

    #[test]
    fn lone_request_flushes_at_the_deadline() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(5),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let t0 = Instant::now();
        let price = client.price(price_req(110.0, 32)).unwrap();
        assert!(price > 0.0);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline flush must not wait for max_batch"
        );
        service.shutdown();
    }

    #[test]
    fn only_explicit_budgets_count_as_deadline_misses() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        // Plain submits deliver just after their implicit max_wait deadline
        // (the flush *is* the deadline) — never a miss.
        for i in 0..4 {
            client.price(price_req(100.0 + i as f64, 32)).unwrap();
        }
        assert_eq!(service.stats().deadline_misses, 0, "implicit deadlines must not count");
        // A zero budget cannot possibly be met: guaranteed miss.
        let t = client
            .submit_with_deadline(ServiceRequest::Price(price_req(90.0, 32)), Some(Duration::ZERO))
            .unwrap();
        assert!(t.wait().is_ok());
        assert_eq!(service.stats().deadline_misses, 1);
        service.shutdown();
    }

    #[test]
    fn queue_overflow_rejects_with_overloaded_and_loses_nothing_in_flight() {
        // One worker, long wait, tiny queue: fill it, then overflow.
        let service = QuoteService::start(ServiceConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(20),
            queue_depth: 4,
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for i in 0..64 {
            match client.submit(ServiceRequest::Price(price_req(80.0 + i as f64, 64))) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::Overloaded { what }) => {
                    assert_eq!(what, "submission queue full");
                    rejected += 1;
                }
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(rejected > 0, "64 fast submits into a depth-4 queue must shed load");
        let accepted = tickets.len();
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted requests must all be answered");
        }
        let stats = service.stats();
        assert_eq!(stats.completed as usize, accepted);
        assert_eq!(stats.rejected_queue_full as usize, rejected);
        service.shutdown();
    }

    #[test]
    fn inflight_cap_rejects_the_overcommitted_client_only() {
        let service = QuoteService::start(ServiceConfig {
            per_conn_inflight: 2,
            max_batch: 1024,
            max_wait: Duration::from_millis(50),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let greedy = service.client();
        let t1 = greedy.submit(ServiceRequest::Price(price_req(100.0, 64))).unwrap();
        let t2 = greedy.submit(ServiceRequest::Price(price_req(101.0, 64))).unwrap();
        let rejected = greedy.submit(ServiceRequest::Price(price_req(102.0, 64)));
        assert!(
            matches!(
                rejected,
                Err(ServiceError::Overloaded { what: "per-connection in-flight cap" })
            ),
            "{rejected:?}"
        );
        // A fresh client has its own budget.
        let other = service.client();
        let t3 = other.submit(ServiceRequest::Price(price_req(103.0, 64))).unwrap();
        for t in [t1, t2, t3] {
            assert!(t.wait().is_ok());
        }
        // Budgets are released on completion.
        assert_eq!(greedy.in_flight(), 0);
        assert!(greedy.submit(ServiceRequest::Price(price_req(104.0, 64))).is_ok());
        let stats = service.stats();
        assert_eq!(stats.rejected_inflight, 1);
        service.shutdown();
    }

    #[test]
    fn budget_is_back_the_moment_the_response_is_observable() {
        // The permit must drop before the slot fill wakes the waiter, so a
        // client at its cap can always resubmit right after `wait` returns.
        // Run at cap 1 in a tight loop: any release-after-wake ordering
        // turns into a spurious Overloaded rejection here.
        let service = QuoteService::start(ServiceConfig {
            per_conn_inflight: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        for i in 0..100 {
            let ticket = client
                .submit(ServiceRequest::Price(price_req(90.0 + (i % 8) as f64, 32)))
                .unwrap_or_else(|e| panic!("iteration {i} spuriously rejected: {e}"));
            assert!(ticket.wait().is_ok());
            assert_eq!(client.in_flight(), 0, "budget still held after wait (iteration {i})");
        }
        assert_eq!(service.stats().rejected_inflight, 0);
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests_and_rejects_new_ones() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600), // only shutdown can flush a partial batch
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| client.submit(ServiceRequest::Price(price_req(95.0 + i as f64, 32))).unwrap())
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "in-flight requests must be answered during drain");
        }
        assert!(matches!(
            client.submit(ServiceRequest::Price(price_req(99.0, 32))),
            Err(ServiceError::ShuttingDown)
        ));
        assert_eq!(service.stats().rejected_shutdown, 1);
    }

    #[test]
    fn mixed_request_kinds_resolve_to_their_own_variants() {
        let service = QuoteService::start(ServiceConfig::default()).expect("start service");
        let client = service.client();
        let price = client.price(price_req(120.0, 128)).unwrap();
        assert!(price > 0.0);
        let g = client.greeks(price_req(120.0, 128)).unwrap();
        assert!(g.delta > 0.0 && g.vega > 0.0);
        let market = price;
        let vol = client
            .implied_vol(VolQuote::new(OptionParams { strike: 120.0, ..p() }, 128, market))
            .unwrap();
        assert!((vol - p().volatility).abs() < 1e-6, "round-trip vol {vol}");
        // Pricing errors come back in their own slot, not as a panic.
        let bad = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { spot: -1.0, ..p() },
            64,
        );
        assert!(matches!(client.price(bad), Err(ServiceError::Pricing(_))));
        service.shutdown();
    }

    #[test]
    fn memo_is_shared_across_batches_and_reported_in_stats() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let req = price_req(115.0, 96);
        let a = client.price(req.clone()).unwrap();
        let b = client.price(req).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let stats = service.stats();
        assert!(stats.memo.hits >= 1, "second quote must be a memo hit: {stats:?}");
        assert!(stats.memo_hit_rate() > 0.0);
        service.shutdown();
    }

    /// Records completion order by arming each ticket's notify callback.
    fn record_completion(order: &Arc<Mutex<Vec<usize>>>, idx: usize, ticket: &Ticket) {
        let order = Arc::clone(order);
        ticket.set_notify(Box::new(move || lock_unpoisoned(&order).push(idx)));
    }

    /// Submits an expensive request with an immediate deadline so the
    /// (single) worker flushes it alone and stays busy executing it while
    /// the test stages the *next* batch behind its back.
    fn plug(client: &Client) -> Ticket {
        let heavy = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Put,
            OptionParams { strike: 117.31, ..p() },
            4000,
        );
        client
            .submit_with_deadline(ServiceRequest::Price(heavy), Some(Duration::ZERO))
            .expect("plug submit")
    }

    /// Spins until the worker has adopted the plug batch (queue empty ⇒
    /// the worker is busy executing, and new submissions pile up behind
    /// it).
    fn wait_queue_empty(service: &QuoteService) {
        let t0 = Instant::now();
        while service.stats().queue_depth > 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "plug batch never drained");
            std::thread::yield_now();
        }
    }

    /// Notify callbacks fire just *after* `Ticket::wait` unblocks (the
    /// callback runs outside the slot locks), so give the recorder a
    /// moment to catch up before asserting on completion order.
    fn wait_order_len(order: &Arc<Mutex<Vec<usize>>>, n: usize) -> Vec<usize> {
        let t0 = Instant::now();
        loop {
            let snapshot = lock_unpoisoned(order).clone();
            if snapshot.len() >= n {
                return snapshot;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "notify callbacks never caught up: {snapshot:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn deadline_tagged_quote_overtakes_queued_bulk_work() {
        // One worker, batch-of-one flushes: completion order is exactly
        // the scheduler's drain order.  Stage 8 lazy bulk quotes, then one
        // urgent quote last; EDF must run the urgent one first.
        let service = QuoteService::start(ServiceConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let plug_ticket = plug(&client);
        wait_queue_empty(&service);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut tickets = Vec::new();
        for i in 0..8 {
            let t = client
                .submit_with_deadline(
                    ServiceRequest::Price(price_req(90.0 + i as f64, 32)),
                    Some(Duration::from_secs(10)),
                )
                .unwrap();
            record_completion(&order, i, &t);
            tickets.push(t);
        }
        let urgent = client
            .submit_with_deadline(ServiceRequest::Price(price_req(150.0, 32)), Some(Duration::ZERO))
            .unwrap();
        record_completion(&order, 99, &urgent);
        tickets.push(urgent);

        assert!(plug_ticket.wait().is_ok());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let order = wait_order_len(&order, 9);
        assert_eq!(order.len(), 9);
        assert_eq!(order.first(), Some(&99), "urgent quote must complete first: {order:?}");
        service.shutdown();
    }

    #[test]
    fn fair_share_admits_the_quiet_client_into_a_flooded_batch() {
        // Client A floods 8 entries with earlier deadlines; client B adds
        // 2 later ones.  With max_batch 4 and two queued clients the share
        // is 2, so the first post-plug batch must carry both of B's
        // entries — pure EDF would have filled it with A's.
        let service = QuoteService::start(ServiceConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let a = service.client();
        let b = service.client();
        let plug_ticket = plug(&a);
        wait_queue_empty(&service);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut tickets = Vec::new();
        for i in 0..8 {
            let t = a
                .submit_with_deadline(
                    ServiceRequest::Price(price_req(90.0 + i as f64, 32)),
                    Some(Duration::from_millis(i as u64)),
                )
                .unwrap();
            record_completion(&order, i, &t);
            tickets.push(t);
        }
        for i in 0..2 {
            let t = b
                .submit_with_deadline(
                    ServiceRequest::Price(price_req(130.0 + i as f64, 32)),
                    Some(Duration::from_millis(100 + i as u64)),
                )
                .unwrap();
            record_completion(&order, 100 + i, &t);
            tickets.push(t);
        }

        assert!(plug_ticket.wait().is_ok());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let order = wait_order_len(&order, 10);
        assert_eq!(order.len(), 10);
        let first_batch = &order[..4];
        assert!(
            first_batch.contains(&100) && first_batch.contains(&101),
            "fair share must admit both of B's entries into the first batch: {order:?}"
        );
        // EDF within the fair share: A's two admitted entries are its
        // earliest-deadline ones.
        assert!(
            first_batch.contains(&0) && first_batch.contains(&1),
            "A's share must go to its earliest deadlines: {order:?}"
        );
        let stats = service.stats();
        assert!(stats.heap_pops >= stats.completed, "every drained entry costs at least one pop");
        service.shutdown();
    }

    #[test]
    fn random_deadline_mix_completes_in_deadline_order() {
        // Property test (seeded xorshift, no external dep): any mix of
        // deadline budgets staged behind a busy worker completes in exact
        // (deadline, arrival) order when batches are drained EDF.  Single
        // client → the fair-share cap equals max_batch and never bites.
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..4 {
            let service = QuoteService::start(ServiceConfig {
                workers: 1,
                max_batch: 3,
                max_wait: Duration::from_millis(1),
                ..ServiceConfig::default()
            })
            .expect("start service");
            let client = service.client();
            let plug_ticket = plug(&client);
            wait_queue_empty(&service);

            let order = Arc::new(Mutex::new(Vec::new()));
            let mut budgets = Vec::new();
            let mut tickets = Vec::new();
            for i in 0..12usize {
                let ms = next() % 50;
                let t = client
                    .submit_with_deadline(
                        ServiceRequest::Price(price_req(80.0 + ((next() % 64) as f64), 32)),
                        Some(Duration::from_millis(ms)),
                    )
                    .unwrap();
                record_completion(&order, i, &t);
                budgets.push(ms);
                tickets.push(t);
            }
            assert!(plug_ticket.wait().is_ok());
            for t in tickets {
                assert!(t.wait().is_ok());
            }
            let order = wait_order_len(&order, 12);
            assert_eq!(order.len(), 12, "round {round}");
            // Expected order: stable sort of the staged entries by budget
            // (ties resolved by arrival index — exactly the seq tiebreak,
            // because all 12 were submitted microseconds apart while the
            // worker was busy, in increasing-deadline == increasing-budget
            // order for equal budgets).
            let mut want: Vec<usize> = (0..12).collect();
            want.sort_by_key(|&i| (budgets[i], i));
            assert_eq!(order, want, "round {round}: budgets {budgets:?}");
            service.shutdown();
        }
    }

    #[test]
    fn injected_panic_is_isolated_to_its_request_and_the_worker_survives() {
        use crate::fault::{FaultPlan, FaultSchedule, FaultSite};
        // Every price request panics mid-batch; greeks in the same service
        // must still answer, the panicking requests must each get their own
        // Internal error, and no worker may die (the shield catches the
        // unwind before it reaches the watchdog).
        let plan = FaultPlan::new(1, FaultSchedule::off().with_rate(FaultSite::WorkerPanic, 1024));
        let service = QuoteService::start(ServiceConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            workers: 2,
            fault: Some(plan),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        for i in 0..6 {
            let got = client.price(price_req(100.0 + i as f64, 32));
            assert!(
                matches!(got, Err(ServiceError::Internal { .. })),
                "injected panic must answer as Internal, got {got:?}"
            );
        }
        let g = client.greeks(price_req(100.0, 32)).expect("greeks group is not injected");
        assert!(g.delta > 0.0);
        let stats = service.stats();
        assert_eq!(stats.completed, 7, "every request answered despite the panics");
        assert_eq!(stats.worker_restarts, 0, "the shield must hold before the watchdog");
        assert_eq!(stats.workers_alive, 2);
        service.shutdown();
    }

    #[test]
    fn real_driver_panic_fails_one_request_and_spares_its_batchmates() {
        // An unshielded driver panic (steps == 0 hits a debug assert /
        // arithmetic panic in some engines) must not take down co-batched
        // requests.  If steps == 0 prices cleanly in this engine, the
        // request simply succeeds and the isolation path stays untested
        // here — the injected-fault test above pins it regardless.
        let service = QuoteService::start(ServiceConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let good = client.price(price_req(100.0, 32)).expect("healthy request");
        assert!(good > 0.0);
        let stats = service.stats();
        assert_eq!(stats.workers_alive, 1);
        service.shutdown();
    }

    #[test]
    fn watchdog_respawns_injected_worker_deaths_and_nothing_is_lost() {
        use crate::fault::{FaultPlan, FaultSchedule, FaultSite};
        // Half of all worker-loop iterations die at the top of the loop.
        // Every request must still be answered, restarts must be counted,
        // and the pool must be back at strength afterwards.
        let plan = FaultPlan::new(3, FaultSchedule::off().with_rate(FaultSite::WorkerDeath, 512));
        let service = QuoteService::start(ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 2,
            fault: Some(plan),
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        for i in 0..40 {
            let got = client.price(price_req(90.0 + (i % 16) as f64, 32));
            assert!(got.is_ok(), "request {i} lost to a worker death: {got:?}");
        }
        let t0 = Instant::now();
        loop {
            let stats = service.stats();
            if stats.workers_alive == 2 {
                assert!(stats.worker_restarts > 0, "deaths at rate 512/1024 must respawn");
                assert_eq!(stats.completed, 40);
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "pool never restored: {stats:?}");
            std::thread::yield_now();
        }
        service.shutdown();
    }

    #[test]
    fn brownout_sheds_by_class_in_order_and_spares_deadline_tagged_work() {
        // Depth-10 queue, default tiers: implied-vol sheds at fill 5,
        // greeks at 7.5, price at 9.5.  Plug the single worker, stage fill
        // levels, and watch each class shed in priority order while
        // deadline-tagged submissions sail through.
        let service = QuoteService::start(ServiceConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_depth: 10,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let plug_ticket = plug(&client);
        wait_queue_empty(&service);

        let mut tickets = Vec::new();
        for i in 0..6 {
            tickets.push(
                client.submit(ServiceRequest::Price(price_req(90.0 + i as f64, 32))).unwrap(),
            );
        }
        // Fill 6: implied-vol (tier 0.50) sheds, greeks (0.75) does not.
        let vol_quote = VolQuote::new(OptionParams { strike: 100.0, ..p() }, 32, 8.0);
        let shed = client.submit(ServiceRequest::ImpliedVol(vol_quote.clone()));
        assert!(
            matches!(
                shed,
                Err(ServiceError::Overloaded {
                    what: "brownout: implied-vol inversions shed under queue pressure"
                })
            ),
            "{shed:?}"
        );
        tickets.push(client.submit(ServiceRequest::Greeks(price_req(100.0, 32))).unwrap());
        tickets.push(client.submit(ServiceRequest::Price(price_req(99.0, 32))).unwrap());
        // Fill 8: greeks sheds too; plain prices still accepted.
        let shed = client.submit(ServiceRequest::Greeks(price_req(101.0, 32)));
        assert!(
            matches!(
                shed,
                Err(ServiceError::Overloaded {
                    what: "brownout: greeks ladders shed under queue pressure"
                })
            ),
            "{shed:?}"
        );
        tickets.push(client.submit(ServiceRequest::Price(price_req(98.0, 32))).unwrap());
        // Deadline-tagged work skips brownout entirely, whatever its class.
        let tagged = client
            .submit_with_deadline(
                ServiceRequest::ImpliedVol(vol_quote),
                Some(Duration::from_secs(10)),
            )
            .expect("deadline-tagged submissions are exempt from brownout");
        let stats = service.stats();
        assert_eq!(stats.shed_by_class.implied_vol, 1);
        assert_eq!(stats.shed_by_class.greeks, 1);
        assert_eq!(stats.shed_by_class.price, 0);
        assert_eq!(stats.shed_by_class.total(), 2);
        assert!(plug_ticket.wait().is_ok());
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted work must still be answered");
        }
        // The tagged inversion is *answered* (possibly with a pricing
        // error for an unattainable market price) — acceptance is the point.
        let _ = tagged.wait();
        service.shutdown();
    }

    #[test]
    fn retry_budget_bounds_retries_and_surfaces_exhaustion() {
        // A cap-1 client with a plugged worker: every extra call rejects
        // with Overloaded.  With a budget of 2 retries, call_with_retry
        // spends both, then surfaces the error and counts the exhaustion.
        let service = QuoteService::start(ServiceConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            per_conn_inflight: 1,
            retry_budget: 2,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let plug_ticket = plug(&client);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        let got = client.call_with_retry(ServiceRequest::Price(price_req(100.0, 32)), &policy);
        assert!(matches!(got, Err(ServiceError::Overloaded { .. })), "{got:?}");
        let stats = service.stats();
        assert_eq!(stats.retries, 2, "budget 2 must allow exactly two retries");
        assert_eq!(stats.retry_budget_exhausted, 1);
        assert!(plug_ticket.wait().is_ok());
        // With the worker free again, a clean call succeeds first try (and
        // earns a tenth of a token back — not enough for a whole retry).
        assert!(client
            .call_with_retry(ServiceRequest::Price(price_req(101.0, 32)), &policy)
            .is_ok());
        assert_eq!(service.stats().retries, 2, "clean calls spend nothing");
        service.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::default();
        let a = policy.backoff(7, 1);
        let b = policy.backoff(7, 1);
        assert_eq!(a, b, "same (client, attempt) must back off identically");
        assert_ne!(policy.backoff(7, 1), policy.backoff(8, 1), "jitter must differ per client");
        for attempt in 1..10 {
            let d = policy.backoff(3, attempt);
            assert!(d <= policy.max_backoff, "backoff {d:?} above ceiling");
            assert!(d >= policy.base_backoff / 2, "backoff {d:?} under half the base");
        }
    }

    #[test]
    fn notify_fires_even_when_armed_after_completion() {
        let service = QuoteService::start(ServiceConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let client = service.client();
        let ticket = client.submit(ServiceRequest::Price(price_req(100.0, 32))).unwrap();
        // Let the request complete before arming the callback.
        let t0 = Instant::now();
        while service.stats().completed == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10));
            std::thread::yield_now();
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        record_completion(&order, 7, &ticket);
        assert_eq!(lock_unpoisoned(&order).clone(), vec![7], "late arm must fire immediately");
        assert!(ticket.try_take().is_some(), "result still claimable after notify");
        service.shutdown();
    }
}
